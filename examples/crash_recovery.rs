//! Crash recovery walkthrough — Section 5 of the paper.
//!
//! The crash coordinator site (CCS) host crashes; surviving LPMs walk the
//! user's `.recovery` list and elect the next home machine; when the
//! original host returns, low-frequency probing hands the role back.
//!
//! Run with: `cargo run --example crash_recovery`

use ppm::core::config::PpmConfig;
use ppm::harness::harness::PpmHarness;
use ppm::proto::msg::Reply;
use ppm::simnet::time::SimDuration;
use ppm::simnet::topology::CpuClass;
use ppm::simnet::trace::TraceCategory;
use ppm::simos::ids::Uid;

fn ccs_view(ppm: &mut PpmHarness, host: &str, user: Uid) -> (String, u64) {
    match ppm.status(host, user, host).unwrap() {
        Reply::Status { ccs, epoch, .. } => (ccs, epoch),
        other => panic!("unexpected {other:?}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let user = Uid(100);
    // .recovery: home first, then work — "users tend to use only a few
    // hosts as home machines. These home machines serve as recovery
    // orchestrators."
    let mut ppm = PpmHarness::builder()
        .host("home", CpuClass::Vax780)
        .host("work", CpuClass::Vax750)
        .host("far", CpuClass::Sun2)
        .link("home", "work")
        .link("work", "far")
        .link("home", "far")
        .user(user, 0xD00D, &["home", "work"], PpmConfig::fast_recovery())
        .build();

    ppm.spawn_remote("home", user, "work", "editor", None, None)?;
    ppm.spawn_remote("home", user, "far", "simulation", None, None)?;
    let (ccs, epoch) = ccs_view(&mut ppm, "work", user);
    println!("initial view from work: CCS={ccs} epoch={epoch}");

    // The home machine crashes.
    let home = ppm.host("home")?;
    println!("\n*** crashing home ***");
    ppm.world_mut()
        .schedule_crash(home, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(20));

    let (ccs, epoch) = ccs_view(&mut ppm, "work", user);
    println!("after crash, view from work: CCS={ccs} epoch={epoch}");
    let (ccs_far, _) = ccs_view(&mut ppm, "far", user);
    println!("after crash, view from far:  CCS={ccs_far}");

    // The user's computation survives on the remaining hosts.
    let procs = ppm.snapshot("work", user, "*")?;
    println!(
        "\nsurviving processes: {}",
        procs
            .iter()
            .map(|p| p.gpid.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // home returns; probing hands the coordinator role back.
    println!("\n*** restarting home ***");
    ppm.world_mut()
        .schedule_restart(home, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(40));
    let (ccs, epoch) = ccs_view(&mut ppm, "work", user);
    println!("after restart, view from work: CCS={ccs} epoch={epoch}");

    // Show the recovery-related trace entries.
    println!("\n--- recovery timeline ---");
    for e in ppm.world().core().trace().entries() {
        if matches!(e.category, TraceCategory::Lpm | TraceCategory::Recovery)
            && (e.text.contains("CCS") || e.text.contains("seeking") || e.text.contains("acting"))
        {
            println!("{e}");
        }
    }
    Ok(())
}
