//! The snapshot tool session of Figure 1: adopt an untracked login-shell
//! computation, render the genealogy, and drive it with the four control
//! verbs; then inspect descriptors and IPC activity with the Section 7
//! tools.
//!
//! Run with: `cargo run --example snapshot_tool`

use ppm::core::client::ToolStep;
use ppm::core::config::PpmConfig;
use ppm::harness::harness::PpmHarness;
use ppm::proto::msg::{Op, Reply};
use ppm::proto::types::Gpid;
use ppm::simnet::time::SimDuration;
use ppm::simnet::topology::CpuClass;
use ppm::simos::events::TraceFlags;
use ppm::simos::ids::{Port, Uid};
use ppm::simos::program::SpawnSpec;
use ppm::simos::workload::{Chatter, EchoServer, TreeSpawner};
use ppm::tools::{files_tool, ipc_tool, SnapshotTool};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let user = Uid(100);
    let mut ppm = PpmHarness::builder()
        .host("calder", CpuClass::Vax780)
        .host("ucbarpa", CpuClass::Vax750)
        .link("calder", "ucbarpa")
        .user(user, 0x50FA, &["calder"], PpmConfig::default())
        .build();

    // A login session started work *before* invoking the PPM: a process
    // tree and a chattering client/server pair.
    let root = ppm.spawn_login_process(
        "calder",
        user,
        SpawnSpec::new(
            "make",
            Box::new(TreeSpawner::new(2, 2, SimDuration::from_secs(600))),
        ),
    )?;
    let echo_host = ppm.host("ucbarpa")?;
    ppm.spawn_login_process(
        "ucbarpa",
        user,
        SpawnSpec::new("echod", Box::new(EchoServer { port: Port(50) })),
    )?;
    ppm.run_for(SimDuration::from_secs(1));
    ppm.spawn_login_process(
        "calder",
        user,
        SpawnSpec::new(
            "chatter",
            Box::new(Chatter::new(echo_host, Port(50), 256, 20)),
        ),
    )?;
    ppm.run_for(SimDuration::from_secs(2));

    // Adopt the tree ("Adoption may be necessary if the user did not
    // invoke the process management services at login time").
    ppm.adopt("calder", user, "calder", root.0, TraceFlags::ALL.bits())?;

    let mut tool = SnapshotTool::new(&mut ppm, "calder", user);
    println!("{}", tool.show("*")?);

    // Control verbs on one of the workers.
    let target = Gpid::new("calder", root.0 + 1);
    tool.stop(&target)?;
    println!("{}", tool.show("calder")?);
    tool.foreground(&target)?;
    tool.kill(&target)?;
    let mut view = tool.show("calder")?;
    view.truncate(view.len().min(2000));
    println!("{view}");

    // Descriptor listing of the LPM itself (Figure 4's endpoint kinds).
    let calder = ppm.host("calder")?;
    let lpm_pid = ppm
        .world()
        .core()
        .kernel(calder)
        .processes()
        .find(|p| p.command.starts_with("lpm") && p.is_alive())
        .map(|p| p.pid)
        .expect("lpm alive");
    let outcome = ppm.run_tool(
        "calder",
        user,
        vec![ToolStep::new("calder", Op::OpenFiles { pid: lpm_pid.0 })],
        SimDuration::from_secs(30),
    )?;
    if let Some(Reply::Files { entries }) = outcome.reply(0) {
        println!(
            "{}",
            files_tool::render_fds(entries, "descriptors of the calder LPM")
        );
    }

    // IPC activity analysis from the substrate's connection statistics.
    let report = ipc_tool::connection_report(ppm.world());
    let interesting: Vec<_> = report
        .into_iter()
        .filter(|r| r.msgs.0 + r.msgs.1 > 4)
        .collect();
    println!(
        "{}",
        ipc_tool::render_connections(&interesting, "busiest connections")
    );
    Ok(())
}
