//! Administration of a distributed computation, end to end: the display
//! dashboard, locating a computation's execution sites, broadcasting a
//! software interrupt to all of it (the paper's motivating facility), and
//! the name-server CCS policy of Section 5.
//!
//! Run with: `cargo run --example administration`

use ppm::core::config::{PpmConfig, RecoveryPolicy};
use ppm::harness::harness::PpmHarness;
use ppm::proto::msg::ControlAction;
use ppm::simnet::time::SimDuration;
use ppm::simnet::topology::CpuClass;
use ppm::simos::ids::Uid;
use ppm::tools::{computation, display};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let user = Uid(100);
    // Administrator-coordinated recovery: pmd on "ns" is the name server.
    let cfg = PpmConfig {
        recovery_policy: RecoveryPolicy::NameServer {
            host: "ns".to_string(),
        },
        ..PpmConfig::fast_recovery()
    };
    let mut ppm = PpmHarness::builder()
        .host("ns", CpuClass::Vax780)
        .host("east", CpuClass::Vax750)
        .host("west", CpuClass::Vax750)
        .host("edge", CpuClass::Sun2)
        .link("ns", "east")
        .link("ns", "west")
        .link("east", "west")
        .link("west", "edge")
        .user(user, 0xAD317, &[], cfg) // no .recovery file in this mode
        .build();

    // A computation spanning three hosts.
    let root = ppm.spawn_remote("east", user, "east", "coordinator", None, None)?;
    let w1 = ppm.spawn_remote("east", user, "west", "solver-1", Some(root.clone()), None)?;
    let _w2 = ppm.spawn_remote("east", user, "edge", "solver-2", Some(w1.clone()), None)?;
    // And an unrelated background job.
    ppm.spawn_remote("east", user, "west", "nightly-backup", None, None)?;
    ppm.run_for(SimDuration::from_secs(2));

    // The display tool: one call, the whole PPM.
    println!("{}", display::dashboard(&mut ppm, "east", user)?);

    // Locate the computation's execution sites...
    let sites = computation::locate(&mut ppm, "east", user, &root)?;
    println!(
        "computation rooted at {root}: {} member(s) on [{}]",
        sites.members.len(),
        sites.hosts.join(", ")
    );

    // ...and broadcast a stop interrupt to every member — without
    // touching the unrelated backup job.
    let n = computation::signal_computation(&mut ppm, "east", user, &root, ControlAction::Stop)?;
    println!("stopped {n} member(s)\n");
    println!("{}", display::dashboard(&mut ppm, "east", user)?);

    // Resume and shut the computation down for good.
    computation::signal_computation(&mut ppm, "east", user, &root, ControlAction::Background)?;
    let n = computation::signal_computation(&mut ppm, "east", user, &root, ControlAction::Kill)?;
    println!("killed {n} member(s); backup survives:\n");
    ppm.run_for(SimDuration::from_secs(1));
    println!("{}", display::dashboard(&mut ppm, "east", user)?);
    Ok(())
}
