//! A distributed build pipeline under PPM administration.
//!
//! The paper's motivation: "users to program and run multiple-process
//! applications that execute concurrently on several machines". This
//! example plays a make-style coordinator that fans compile jobs out to
//! every machine on the network, watches them through the PPM's history
//! stream, and collects resource statistics when they finish.
//!
//! Run with: `cargo run --example distributed_pipeline`

use ppm::core::config::PpmConfig;
use ppm::harness::harness::PpmHarness;
use ppm::simnet::time::{SimDuration, SimTime};
use ppm::simnet::topology::CpuClass;
use ppm::simos::ids::Uid;
use ppm::tools::{history_tool, rusage_tool, snapshot};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let user = Uid(100);
    let hosts = ["calder", "ucbarpa", "kim", "dali", "matisse"];
    let mut builder = PpmHarness::builder()
        .host("calder", CpuClass::Vax780)
        .host("ucbarpa", CpuClass::Vax750)
        .host("kim", CpuClass::Sun2)
        .host("dali", CpuClass::Vax750)
        .host("matisse", CpuClass::Sun2)
        .user(user, 0xC0FFEE, &["calder", "ucbarpa"], PpmConfig::default());
    // A star LAN around calder plus one backbone link.
    for h in &hosts[1..] {
        builder = builder.link("calder", *h);
    }
    builder = builder.link("ucbarpa", "kim");
    let mut ppm = builder.build();

    // The coordinator process.
    let coordinator = ppm.spawn_remote("calder", user, "calder", "dmake", None, None)?;
    println!("coordinator {coordinator} started");

    // Fan out one compile job per host, all logical children of the
    // coordinator; each runs for a few simulated seconds.
    let mut jobs = Vec::new();
    for (i, host) in hosts.iter().enumerate() {
        let lifetime = SimDuration::from_secs(3 + i as u64);
        let job = ppm.spawn_remote(
            "calder",
            user,
            host,
            &format!("cc-unit{i}"),
            Some(coordinator.clone()),
            Some(lifetime),
        )?;
        println!("  dispatched {job} to {host} (lifetime {lifetime})");
        jobs.push(job);
    }

    // Mid-build snapshot: the whole pipeline as one genealogical tree.
    let procs = ppm.snapshot("calder", user, "*")?;
    println!("\n{}", snapshot::render(procs, "pipeline in flight"));

    // Let the build finish.
    ppm.run_for(SimDuration::from_secs(12));

    // Post-mortem: merged history of the whole computation...
    let events = ppm.history("calder", user, "*", SimTime::ZERO, 500)?;
    println!(
        "{}",
        history_tool::render_profile(&events, "event profile across all hosts")
    );

    // ...and per-host exit statistics gathered through the PPM.
    let mut all = Vec::new();
    for host in &hosts {
        all.extend(ppm.rusage("calder", user, host, None)?);
    }
    println!("{}", rusage_tool::render(&all, "compile job statistics"));

    let done = all.len();
    assert_eq!(done, jobs.len(), "every compile job reported its exit");
    println!(
        "pipeline complete: {done}/{} jobs accounted for",
        jobs.len()
    );
    Ok(())
}
