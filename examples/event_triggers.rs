//! History-dependent triggers — "history dependent events can be set by
//! users to trigger process state changes" and the conclusions'
//! "event driven user defined actions".
//!
//! Three triggers are installed:
//! 1. notify when the batch job finishes;
//! 2. when the producer exits, kill the consumer on another host;
//! 3. kill any `runaway`-named process once it has burned 500 ms of CPU.
//!
//! Run with: `cargo run --example event_triggers`

use ppm::core::client::ToolStep;
use ppm::core::config::PpmConfig;
use ppm::harness::harness::PpmHarness;
use ppm::proto::msg::{ControlAction, Op};
use ppm::proto::triggers::{EventPattern, TriggerAction, TriggerSpec};
use ppm::simnet::time::{SimDuration, SimTime};
use ppm::simnet::topology::CpuClass;
use ppm::simos::ids::Uid;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let user = Uid(100);
    let mut ppm = PpmHarness::builder()
        .host("alpha", CpuClass::Vax780)
        .host("beta", CpuClass::Vax750)
        .link("alpha", "beta")
        .user(user, 0xFEED, &["alpha"], PpmConfig::default())
        .build();

    let batch = ppm.spawn_remote("alpha", user, "alpha", "batch-job", None, None)?;
    let producer = ppm.spawn_remote("alpha", user, "alpha", "producer", None, None)?;
    let consumer = ppm.spawn_remote("alpha", user, "beta", "consumer", None, None)?;
    println!("batch={batch} producer={producer} consumer={consumer}");

    let add = |id, pattern, action, once| {
        ToolStep::new(
            "alpha",
            Op::AddTrigger {
                spec: TriggerSpec {
                    id,
                    pattern,
                    action,
                    once,
                },
            },
        )
    };
    let outcome = ppm.run_tool(
        "alpha",
        user,
        vec![
            add(
                1,
                EventPattern::kind("exit").with_pid(batch.pid),
                TriggerAction::Notify {
                    note: "batch job finished".into(),
                },
                true,
            ),
            add(
                2,
                EventPattern::kind("exit").with_pid(producer.pid),
                TriggerAction::Signal {
                    target: consumer.clone(),
                    signal: 15,
                },
                true,
            ),
            add(
                3,
                EventPattern::default()
                    .with_command_prefix("runaway")
                    .with_min_cpu_us(500_000),
                TriggerAction::Signal {
                    target: ppm::proto::types::Gpid::new("alpha", 0),
                    signal: 9,
                },
                false,
            ),
            ToolStep::new("alpha", Op::ListTriggers),
        ],
        SimDuration::from_secs(30),
    )?;
    println!("installed triggers: {:?}", outcome.reply(3));

    // Fire trigger 1 and 2 by killing batch and producer.
    ppm.control("alpha", user, &batch, ControlAction::Kill)?;
    ppm.control("alpha", user, &producer, ControlAction::Kill)?;
    ppm.run_for(SimDuration::from_secs(3));

    let beta = ppm.host("beta")?;
    let consumer_alive = ppm
        .world()
        .core()
        .kernel(beta)
        .get(ppm::simos::ids::Pid(consumer.pid))
        .unwrap()
        .is_alive();
    println!("consumer alive after producer exit: {consumer_alive} (expected false)");
    assert!(!consumer_alive, "trigger 2 delivered SIGTERM across hosts");

    let events = ppm.history("alpha", user, "alpha", SimTime::ZERO, 500)?;
    for e in &events {
        if e.kind.starts_with("trigger") {
            println!(
                "trigger event: [{:>9.3}ms] {} {}",
                e.at_us as f64 / 1000.0,
                e.kind,
                e.detail
            );
        }
    }
    assert!(events
        .iter()
        .any(|e| e.detail.contains("batch job finished")));
    println!("done at {}", ppm.now());
    Ok(())
}
