//! Quickstart: bring up a three-host network, run a distributed
//! computation under the PPM, and exercise tracking and control across
//! machine boundaries.
//!
//! Run with: `cargo run --example quickstart`

use ppm::core::config::PpmConfig;
use ppm::harness::harness::PpmHarness;
use ppm::proto::msg::ControlAction;
use ppm::proto::types::Gpid;
use ppm::simnet::time::SimDuration;
use ppm::simnet::topology::CpuClass;
use ppm::simos::ids::Uid;
use ppm::tools::snapshot::render;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let user = Uid(100);

    // The paper's testbed flavour: two VAXen and a SUN on a LAN.
    let mut ppm = PpmHarness::builder()
        .host("calder", CpuClass::Vax780)
        .host("ucbarpa", CpuClass::Vax750)
        .host("kim", CpuClass::Sun2)
        .link("calder", "ucbarpa")
        .link("ucbarpa", "kim")
        .user(user, 0xBEEF, &["calder", "ucbarpa"], PpmConfig::default())
        .build();

    // A logical root on calder with one remote child per other host.
    // The first contact creates the whole management fabric on demand:
    // inetd -> pmd -> LPM on every involved host (Figure 2).
    let root = ppm.spawn_remote("calder", user, "calder", "simulate", None, None)?;
    println!("created logical root {root}");
    let child_a = ppm.spawn_remote(
        "calder",
        user,
        "ucbarpa",
        "worker-a",
        Some(root.clone()),
        None,
    )?;
    let child_b = ppm.spawn_remote("calder", user, "kim", "worker-b", Some(root.clone()), None)?;
    println!("created remote children {child_a} and {child_b}");

    // A distributed snapshot: one broadcast over the sibling graph.
    let procs = ppm.snapshot("calder", user, "*")?;
    println!("\n{}", render(procs, "snapshot after creation"));

    // Control across machine boundaries: stop the kim worker (two
    // physical hops away), check, continue it, then kill it.
    ppm.control("calder", user, &child_b, ControlAction::Stop)?;
    let procs = ppm.snapshot("calder", user, "*")?;
    println!("{}", render(procs, "after stopping worker-b"));

    ppm.control("calder", user, &child_b, ControlAction::Background)?;
    ppm.control("calder", user, &child_b, ControlAction::Kill)?;
    ppm.run_for(SimDuration::from_secs(1));
    let procs = ppm.snapshot("calder", user, "*")?;
    println!(
        "{}",
        render(procs, "after killing worker-b (exit info retained)")
    );

    // Exited-process statistics, the paper's second tool.
    let records = ppm.rusage("calder", user, "kim", None)?;
    println!(
        "{}",
        ppm::tools::rusage_tool::render(&records, "exited processes on kim")
    );

    let _ = Gpid::new("calder", 1); // (typed identities used throughout)
    println!("simulated time elapsed: {}", ppm.now());
    Ok(())
}
