//! `ppm-real` — the PPM stack on the real backend: loopback TCP,
//! monotonic clocks, thread-per-host nodes.
//!
//! ```console
//! $ cargo run --bin ppm-real
//! $ cargo run --bin ppm-real -- --hosts 5 --trace
//! $ cargo run --bin ppm-real -- --no-kill --metrics /tmp/real.metrics
//! ```
//!
//! Boots `--hosts N` (default 3) node threads sharing one loopback
//! cluster, then drives the same `ppm-core` protocol stack the simulation
//! runs — inetd brokers the pmd, pmds spawn per-user LPMs on demand, and
//! scripted tools authenticate over real sockets:
//!
//! 1. **remote execution** — a computation rooted on `h0` with one job
//!    spawned onto every other host;
//! 2. **display** — a whole-network snapshot sweep gathered across LPMs;
//! 3. **locate** — the computation's execution sites from that sweep;
//! 4. **crash recovery** (skipped with `--no-kill`) — SIGKILL `h1`'s LPM
//!    out from under its live jobs, then wait for the pmd respawn and
//!    forest re-adoption path to restore the exact pre-crash node set.
//!
//! `--trace` mirrors the simulation's trace switch (to stderr), and
//! `--metrics <path>` writes every registry published in the cluster.
//! Everything is wall-clock real time; the CI `real-smoke` job runs this
//! under a watchdog and checks the exit code.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppm_core::auth::UserCred;
use ppm_core::client::{Tool, ToolOutcome, ToolStep};
use ppm_core::config::{PpmConfig, PMD_PORT, PMD_SERVICE};
use ppm_core::pmd::{Pmd, PmdOptions};
use ppm_core::users::{UserDirectory, UserEntry};
use ppm_proto::msg::{Op, Reply};
use ppm_proto::types::{Gpid, ProcRecord, WireProcState};
use ppm_realos::RealRuntime;
use ppm_runtime::ids::{CpuClass, HostId, Uid};
use ppm_runtime::program::SpawnSpec;
use ppm_runtime::rt::Runtime;
use ppm_runtime::signal::Signal;

const USER: Uid = Uid(100);
const SECRET: u64 = 0x1986;
const TOOL_BUDGET: Duration = Duration::from_secs(30);

struct Cluster {
    rt: RealRuntime,
    users: Arc<UserDirectory>,
    hosts: Vec<(String, HostId)>,
}

fn boot(n: usize, trace: bool) -> Cluster {
    let names: Vec<String> = (0..n).map(|i| format!("h{i}")).collect();
    let mut users = UserDirectory::new();
    users.insert(UserEntry {
        cred: UserCred::new(USER, SECRET),
        recovery: names.iter().take(2).cloned().collect(),
        config: PpmConfig::fast_recovery(),
    });
    let users = users.into_shared();
    let pmd_users = Arc::clone(&users);
    let mut rt = RealRuntime::with_trace(trace);
    rt.register_service(
        PMD_SERVICE,
        PMD_PORT,
        Box::new(move |_host| {
            Box::new(Pmd::new(
                Arc::clone(&pmd_users),
                PMD_PORT,
                PmdOptions {
                    stable_storage: true,
                    respawn_lpms: true,
                },
            ))
        }),
    );
    let mut hosts = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let cpu = if i % 2 == 0 {
            CpuClass::Vax780
        } else {
            CpuClass::Sun2
        };
        let id = rt.add_host(name, cpu);
        hosts.push((name.clone(), id));
    }
    Cluster { rt, users, hosts }
}

fn run_tool(c: &mut Cluster, from: HostId, script: Vec<ToolStep>) -> Result<ToolOutcome, String> {
    let entry = c.users.get(USER).expect("registered user");
    let (tool, handle) = Tool::new(entry.cred, entry.config.clone(), script);
    c.rt.spawn_user(from, USER, SpawnSpec::new("ppm-tool", Box::new(tool)))
        .map_err(|e| format!("spawn tool: {e:?}"))?;
    let deadline = Instant::now() + TOOL_BUDGET;
    while Instant::now() < deadline {
        if handle.lock().unwrap().done {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let outcome = handle.lock().unwrap().clone();
    if !outcome.done {
        return Err("tool timed out".to_string());
    }
    if let Some(err) = &outcome.error {
        return Err(format!("tool failed: {err}"));
    }
    Ok(outcome)
}

fn spawn_remote(
    c: &mut Cluster,
    dest: &str,
    command: &str,
    logical_parent: Option<Gpid>,
) -> Result<Gpid, String> {
    let from = c.hosts[0].1;
    let out = run_tool(
        c,
        from,
        vec![ToolStep::new(
            dest,
            Op::Spawn {
                command: command.to_string(),
                logical_parent,
                lifetime_us: None,
                work_us: 0,
                cpu_bound: false,
            },
        )],
    )?;
    match out.reply(0) {
        Some(Reply::Spawned { gpid }) => Ok(gpid.clone()),
        other => Err(format!("expected Spawned, got {other:?}")),
    }
}

fn snapshot_all(c: &mut Cluster) -> Result<Vec<ProcRecord>, String> {
    let from = c.hosts[0].1;
    let out = run_tool(c, from, vec![ToolStep::new("*", Op::Snapshot)])?;
    let reply = out.replies.into_iter().next().map(|(r, _)| r);
    let reply = match reply {
        Some(Reply::Partial { inner, .. }) => *inner,
        Some(other) => other,
        None => return Err("snapshot produced no reply".to_string()),
    };
    match reply {
        Reply::Snapshot { procs, .. } => Ok(procs),
        other => Err(format!("expected Snapshot, got {other:?}")),
    }
}

/// Adopted, live pids of `USER` on `host` in a snapshot: the forest's
/// node set for that host.
fn forest_nodes(procs: &[ProcRecord], host: &str) -> Vec<u32> {
    let mut pids: Vec<u32> = procs
        .iter()
        .filter(|p| p.gpid.host == host && p.adopted && p.state != WireProcState::Dead)
        .map(|p| p.gpid.pid)
        .collect();
    pids.sort_unstable();
    pids
}

fn demo(c: &mut Cluster, kill: bool) -> Result<(), String> {
    let names: Vec<String> = c.hosts.iter().map(|(n, _)| n.clone()).collect();

    // Remote execution: a computation rooted on h0, one job per peer.
    let started = Instant::now();
    let root = spawn_remote(c, &names[0], "root", None)?;
    println!(
        "exec    root {}:{} (first spawn walked inetd -> pmd -> LPM, {:.0?})",
        root.host,
        root.pid,
        started.elapsed()
    );
    for name in &names[1..] {
        let g = spawn_remote(c, name, &format!("job-{name}"), Some(root.clone()))?;
        println!(
            "exec    job {}:{} (logical parent {})",
            g.host, g.pid, root.pid
        );
    }

    // Display: the distributed snapshot sweep.
    let procs = snapshot_all(c)?;
    println!("display {} managed processes:", procs.len());
    for name in &names {
        let pids = forest_nodes(&procs, name);
        println!("display   {name}: {pids:?}");
    }

    // Locate: hosts executing the computation rooted at `root`.
    let mut sites: Vec<&str> = procs
        .iter()
        .filter(|p| p.state != WireProcState::Dead)
        .filter(|p| p.gpid == root || p.logical_parent.as_ref() == Some(&root))
        .map(|p| p.gpid.host.as_str())
        .collect();
    sites.sort_unstable();
    sites.dedup();
    println!("locate  computation {} runs on {sites:?}", root.pid);
    if sites.len() != names.len() {
        return Err(format!(
            "locate expected all {} hosts, got {sites:?}",
            names.len()
        ));
    }

    if !kill {
        return Ok(());
    }

    // Crash recovery: SIGKILL h1's LPM out from under its live jobs.
    let (victim_host, victim_id) = (names[1].clone(), c.hosts[1].1);
    let before = forest_nodes(&procs, &victim_host);
    let victim =
        c.rt.find_proc(victim_id, USER, "lpm-")
            .ok_or_else(|| format!("{victim_host} has no LPM"))?;
    c.rt.kill(victim_id, Uid::ROOT, victim, Signal::Kill)
        .map_err(|e| format!("kill LPM: {e:?}"))?;
    println!("kill    SIGKILL {victim_host} LPM (pid {})", victim.0);

    let crashed = Instant::now();
    let deadline = crashed + Duration::from_secs(20);
    let respawned = loop {
        match c.rt.find_proc(victim_id, USER, "lpm-") {
            Some(pid) if pid != victim => break pid,
            _ if Instant::now() >= deadline => {
                return Err("LPM was not respawned within 20s".to_string())
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    println!(
        "respawn pmd restarted the LPM as pid {} after {:.0?}",
        respawned.0,
        crashed.elapsed()
    );

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let procs = snapshot_all(c)?;
        let after = forest_nodes(&procs, &victim_host);
        if after == before {
            println!(
                "readopt forest node set restored {after:?} after {:.0?}",
                crashed.elapsed()
            );
            break;
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "re-adoption did not restore the forest: before={before:?} after={after:?}"
            ));
        }
        std::thread::sleep(Duration::from_millis(250));
    }

    // The respawned LPM serves new work.
    let g = spawn_remote(c, &victim_host, "after", None)?;
    println!("exec    job {}:{} on the respawned LPM", g.host, g.pid);
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!("usage: ppm-real [--hosts <N>] [--trace] [--no-kill] [--metrics <path>]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut hosts = 3usize;
    let mut trace = false;
    let mut kill = true;
    let mut metrics_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace = true,
            "--no-kill" => kill = false,
            "--hosts" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()).filter(|n| *n >= 2) else {
                    eprintln!("ppm-real: --hosts needs a host count of at least 2");
                    return ExitCode::FAILURE;
                };
                hosts = n;
            }
            "--metrics" => {
                let Some(p) = args.next() else {
                    eprintln!("ppm-real: --metrics needs an output path");
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(p);
            }
            _ => return usage(),
        }
    }

    let started = Instant::now();
    let mut cluster = boot(hosts, trace);
    println!(
        "boot    {hosts} hosts on loopback TCP, one node thread each (user {})",
        USER.0
    );
    let result = demo(&mut cluster, kill);

    if let Some(p) = metrics_path {
        let sections: Vec<(String, Vec<ppm_proto::types::MetricRow>)> = cluster
            .rt
            .shared()
            .obs
            .lock()
            .unwrap()
            .iter()
            .map(|(label, reg)| (label.clone(), ppm_core::obs::rows(&reg.snapshot())))
            .collect();
        let text = ppm_core::obs::render_metrics(&sections);
        if let Err(e) = std::fs::write(&p, text) {
            eprintln!("ppm-real: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
    }

    match result {
        Ok(()) => {
            println!(
                "ok      real cluster demo complete in {:.0?}",
                started.elapsed()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ppm-real: {e}");
            ExitCode::FAILURE
        }
    }
}
