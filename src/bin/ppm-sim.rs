//! `ppm-sim` — run a PPM scenario file against the simulated network.
//!
//! ```console
//! $ cargo run --bin ppm-sim -- scenarios/demo.ppm
//! $ cargo run --bin ppm-sim -- --trace scenarios/demo.ppm
//! $ cargo run --bin ppm-sim -- --trace --hosts 24
//! ```
//!
//! `--trace` appends the full simulation trace after the scenario output.
//! `--hosts N` generates and runs a chain-topology scale scenario instead
//! of reading a file: `N` hosts in a line, one process spawned onto each
//! host from its chain predecessor, closed by a whole-network snapshot
//! sweep the origin gathers across `N - 1` relay hops.
//!
//! `--users U --hosts N` runs the multi-tenant scale scenario instead: a
//! seeded fork/exec/exit storm (`--seed S`, default 1986) of `--procs P`
//! processes (default `U × 2000`) across `U` per-user shards on `N`
//! hosts, driven by one discrete-event engine (see `ppm_harness::tenant`).
//! The report on stdout and the `--metrics` file are deterministic;
//! wall-clock throughput goes to stderr.
//!
//! `--metrics <path>` writes every metrics registry in the world (the
//! kernel event path plus each LPM's counters) as stable text at end of
//! run. `--spans <path>` enables structured trace spans, writes them as
//! JSONL, and writes a Chrome `trace_event` rendering alongside at
//! `<path>.chrome.json` (loadable in `chrome://tracing` / Perfetto).
//!
//! `--faults <plan>` arms a scripted fault plan (see `ppm_simnet::fault`
//! for the grammar): hosts crash and restart, LPMs are killed, links cut
//! and heal, and the wire drops/duplicates/reorders with seeded
//! probabilities. Fault runs enable pmd stable storage and LPM respawn
//! so the system heals itself.
//!
//! The world is seeded, so two runs of the same scenario produce
//! identical traces, metrics and span files — CI diffs them as a
//! determinism gate.

use std::fmt::Write as _;
use std::process::ExitCode;

/// The generated `--hosts N` scale scenario: a chain where each host's
/// worker is created from the previous host, so the sibling graph — and
/// thus the broadcast cover tree — is the chain itself.
fn chain_scenario(n: usize) -> String {
    let mut s = String::from("seed 1986\n");
    for i in 0..n {
        let cpu = if i % 2 == 0 { "vax780" } else { "sun2" };
        writeln!(s, "host h{i} {cpu}").expect("write to string");
    }
    for i in 1..n {
        writeln!(s, "link h{} h{i}", i - 1).expect("write to string");
    }
    s.push_str("user 100 secret=0xBEEF recovery=h0,h1 fast\n\n");
    s.push_str("at 0s spawn h0 100 h0 job-0 as w0\n");
    for i in 1..n {
        writeln!(
            s,
            "at {}ms spawn h{} 100 h{i} job-{i} as w{i}",
            i * 200,
            i - 1,
        )
        .expect("write to string");
    }
    writeln!(s, "at {}ms snapshot h0 100 *", n * 200 + 2_000).expect("write to string");
    s.push_str("run 10s\n");
    s
}

/// The `--users U --hosts N` multi-tenant storm: build a
/// [`ppm_harness::tenant::TenantWorld`], run it to the fork target, print
/// the deterministic report, and (optionally) write the shard metrics.
/// Wall-clock throughput is observational, so it goes to stderr where
/// the determinism diff never sees it.
fn run_scale(
    users: u32,
    hosts: u16,
    seed: u64,
    procs: Option<u64>,
    metrics_path: Option<String>,
) -> ExitCode {
    use ppm_harness::tenant::TenantWorld;
    use ppm_simos::workload::StormSpec;

    let mut spec = StormSpec::new(users, hosts, seed);
    // Hold per-lane fork rates constant while the concurrent population
    // scales with the user count (capped so lifetimes stay bounded):
    // with U users the storm keeps roughly 40 × min(U, 256) processes
    // live at once, which is what makes the peak-RSS exhibit meaningful.
    spec.mean_lifetime_us = 40_000 * u64::from(users.min(256));
    let procs = procs.unwrap_or_else(|| u64::from(users).saturating_mul(2_000));
    let started = std::time::Instant::now();
    let mut world = TenantWorld::new(spec, procs);
    let report = world.run();
    let elapsed = started.elapsed();
    print!("{}", report.render());
    let rate = report.procs as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "ppm-sim: {} processes across {} users on {} hosts in {:.2?} ({:.0} procs/sec)",
        report.procs, report.users, report.hosts, elapsed, rate
    );
    // Peak RSS (VmHWM) covers the whole run including the world build;
    // Linux-only, observational, stderr like the throughput line.
    if let Some(kb) = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1)?.parse::<u64>().ok())
        })
    {
        eprintln!("ppm-sim: peak rss {kb} kB");
    }
    if let Some(p) = metrics_path {
        let rows = ppm_core::obs::rows(&world.metrics().snapshot());
        let text = ppm_core::obs::render_metrics(&[("tenant".to_string(), rows)]);
        if let Err(e) = std::fs::write(&p, text) {
            eprintln!("ppm-sim: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ppm-sim [--trace] [--metrics <path>] [--spans <path>] [--faults <plan>] \
         <scenario-file>"
    );
    eprintln!(
        "       ppm-sim [--trace] [--metrics <path>] [--spans <path>] [--faults <plan>] \
         --hosts <N>"
    );
    eprintln!(
        "       ppm-sim [--metrics <path>] --users <U> --hosts <N> [--seed <S>] [--procs <P>]"
    );
    eprintln!("see scenarios/ for examples and src/scenario.rs for the grammar");
    eprintln!("fault plans: see scenarios/*.fault and ppm_simnet::fault for the grammar");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut trace = false;
    let mut hosts: Option<usize> = None;
    let mut users: Option<u32> = None;
    let mut seed: u64 = 1986;
    let mut procs: Option<u64> = None;
    let mut path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut spans_path: Option<String> = None;
    let mut faults_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace = true,
            "--faults" => {
                let Some(p) = args.next() else {
                    eprintln!("ppm-sim: --faults needs a fault-plan path");
                    return ExitCode::FAILURE;
                };
                faults_path = Some(p);
            }
            "--hosts" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()).filter(|n| *n >= 2) else {
                    eprintln!("ppm-sim: --hosts needs a host count of at least 2");
                    return ExitCode::FAILURE;
                };
                hosts = Some(n);
            }
            "--users" => {
                let Some(u) = args.next().and_then(|v| v.parse().ok()).filter(|u| *u >= 1) else {
                    eprintln!("ppm-sim: --users needs a user count of at least 1");
                    return ExitCode::FAILURE;
                };
                users = Some(u);
            }
            "--seed" => {
                let Some(s) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("ppm-sim: --seed needs an integer");
                    return ExitCode::FAILURE;
                };
                seed = s;
            }
            "--procs" => {
                let Some(p) = args.next().and_then(|v| v.parse().ok()).filter(|p| *p >= 1) else {
                    eprintln!("ppm-sim: --procs needs a process count of at least 1");
                    return ExitCode::FAILURE;
                };
                procs = Some(p);
            }
            "--metrics" => {
                let Some(p) = args.next() else {
                    eprintln!("ppm-sim: --metrics needs an output path");
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(p);
            }
            "--spans" => {
                let Some(p) = args.next() else {
                    eprintln!("ppm-sim: --spans needs an output path");
                    return ExitCode::FAILURE;
                };
                spans_path = Some(p);
            }
            _ => path = Some(arg),
        }
    }
    if let Some(users) = users {
        let Some(hosts) = hosts.filter(|&n| n >= 2 && n <= u16::MAX as usize) else {
            eprintln!("ppm-sim: --users needs --hosts (2 ..= 65535)");
            return ExitCode::FAILURE;
        };
        return run_scale(users, hosts as u16, seed, procs, metrics_path);
    }
    let (name, text) = match (hosts, path) {
        (Some(n), None) => (format!("--hosts {n}"), chain_scenario(n)),
        (None, Some(path)) => match std::fs::read_to_string(&path) {
            Ok(t) => (path, t),
            Err(e) => {
                eprintln!("ppm-sim: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => return usage(),
    };
    let scenario = match ppm::scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ppm-sim: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = match faults_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(t) => match ppm_simnet::fault::FaultPlan::parse(&t) {
                Ok(plan) => Some(plan),
                Err(e) => {
                    eprintln!("ppm-sim: {p}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("ppm-sim: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let mut out = String::new();
    let opts = ppm::scenario::ExecOptions {
        spans: spans_path.is_some(),
        faults: plan.as_ref(),
    };
    match ppm::scenario::execute_with(&scenario, &mut out, opts) {
        Ok(ppm) => {
            print!("{out}");
            if trace {
                print!("{}", ppm.world().core().trace().render(None));
            }
            if let Some(p) = metrics_path {
                if let Err(e) = std::fs::write(&p, ppm.metrics_report()) {
                    eprintln!("ppm-sim: cannot write {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(p) = spans_path {
                if let Err(e) = std::fs::write(&p, ppm.spans_jsonl()) {
                    eprintln!("ppm-sim: cannot write {p}: {e}");
                    return ExitCode::FAILURE;
                }
                let chrome = format!("{p}.chrome.json");
                if let Err(e) = std::fs::write(&chrome, ppm.spans_chrome()) {
                    eprintln!("ppm-sim: cannot write {chrome}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            print!("{out}");
            eprintln!("ppm-sim: {name}: {e}");
            ExitCode::FAILURE
        }
    }
}
