//! `ppm-sim` — run a PPM scenario file against the simulated network.
//!
//! ```console
//! $ cargo run --bin ppm-sim -- scenarios/demo.ppm
//! $ cargo run --bin ppm-sim -- --trace scenarios/demo.ppm
//! ```
//!
//! `--trace` appends the full simulation trace after the scenario output.
//! The world is seeded, so two runs of the same scenario produce
//! identical traces — CI diffs them as a determinism gate.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut trace = false;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--trace" => trace = true,
            _ => path = Some(arg),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: ppm-sim [--trace] <scenario-file>");
        eprintln!("see scenarios/ for examples and src/scenario.rs for the grammar");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ppm-sim: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match ppm::scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ppm-sim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = String::new();
    match ppm::scenario::execute(&scenario, &mut out) {
        Ok(ppm) => {
            print!("{out}");
            if trace {
                print!("{}", ppm.world().core().trace().render(None));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            print!("{out}");
            eprintln!("ppm-sim: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
