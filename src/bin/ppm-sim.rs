//! `ppm-sim` — run a PPM scenario file against the simulated network.
//!
//! ```console
//! $ cargo run --bin ppm-sim -- scenarios/demo.ppm
//! $ cargo run --bin ppm-sim -- --trace scenarios/demo.ppm
//! $ cargo run --bin ppm-sim -- --trace --hosts 24
//! ```
//!
//! `--trace` appends the full simulation trace after the scenario output.
//! `--hosts N` generates and runs a chain-topology scale scenario instead
//! of reading a file: `N` hosts in a line, one process spawned onto each
//! host from its chain predecessor, closed by a whole-network snapshot
//! sweep the origin gathers across `N - 1` relay hops.
//!
//! `--users U --hosts N` runs the multi-tenant scale scenario instead: a
//! seeded fork/exec/exit storm (`--seed S`, default 1986) of `--procs P`
//! processes (default `U × 2000`) across `U` per-user shards on `N`
//! hosts, driven by one discrete-event engine (see `ppm_harness::tenant`).
//! The report on stdout and the `--metrics` file are deterministic;
//! wall-clock throughput goes to stderr.
//!
//! `--seed S` also overrides a scenario file's (or the generated chain
//! scenario's) `seed` statement — the knob the `ppm-sweep` harness turns
//! to fan one scenario across a seed grid.
//!
//! `--digest` appends one `digest <16-hex>` line to stdout: the FNV-1a
//! fold of the run's observable surface (scenario output + trace +
//! metrics text, or the scale report + its metrics). The sweep harness
//! computes cell digests over exactly the same strings, so a cell's
//! digest can be re-checked by running its repro command line here.
//!
//! `--metrics <path>` writes every metrics registry in the world (the
//! kernel event path plus each LPM's counters) as stable text at end of
//! run. `--spans <path>` enables structured trace spans, writes them as
//! JSONL, and writes a Chrome `trace_event` rendering alongside at
//! `<path>.chrome.json` (loadable in `chrome://tracing` / Perfetto).
//!
//! `--topology <preset|file>` installs the bandwidth- and topology-aware
//! network model before the run: `full-mesh`, `fat-tree`, `wan-hub` or
//! `last-mile` build a preset over the scenario's hosts, anything else is
//! read as a topology spec file (grammar in `ppm_simnet::topology`).
//! Deliveries are then priced over the installed routes — per-link
//! latency plus fair-share serialization under contention — and the
//! `net.*` metrics appear in `--metrics` output. Without the flag the
//! flat wire law is in force and output is byte-identical to pre-netmodel
//! builds.
//!
//! `--faults <plan>` arms a scripted fault plan (see `ppm_simnet::fault`
//! for the grammar): hosts crash and restart, LPMs are killed, links cut
//! and heal, and the wire drops/duplicates/reorders with seeded
//! probabilities. Fault runs enable pmd stable storage and LPM respawn
//! so the system heals itself.
//!
//! The world is seeded, so two runs of the same scenario produce
//! identical traces, metrics and span files — CI diffs them as a
//! determinism gate.

use std::process::ExitCode;

/// The `--users U --hosts N` multi-tenant storm: build a
/// [`ppm_harness::tenant::TenantWorld`] from the canonical
/// [`ppm_harness::tenant::scale_spec`], run it to the fork target, print
/// the deterministic report, and (optionally) write the shard metrics.
/// Wall-clock throughput is observational, so it goes to stderr where
/// the determinism diff never sees it.
fn run_scale(
    users: u32,
    hosts: u16,
    seed: u64,
    procs: Option<u64>,
    metrics_path: Option<String>,
    digest: bool,
) -> ExitCode {
    use ppm_harness::tenant::{scale_spec, TenantWorld};

    let spec = scale_spec(users, hosts, seed);
    let procs = procs.unwrap_or_else(|| u64::from(users).saturating_mul(2_000));
    let started = std::time::Instant::now();
    let mut world = TenantWorld::new(spec, procs);
    let report = world.run();
    let elapsed = started.elapsed();
    let rendered = report.render();
    print!("{rendered}");
    let rows = ppm_core::obs::rows(&world.metrics().snapshot());
    let text = ppm_core::obs::render_metrics(&[("tenant".to_string(), rows)]);
    if digest {
        println!(
            "digest {}",
            ppm::digest::hex(ppm::digest::fnv1a(&[&rendered, &text]))
        );
    }
    let rate = report.procs as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "ppm-sim: {} processes across {} users on {} hosts in {:.2?} ({:.0} procs/sec)",
        report.procs, report.users, report.hosts, elapsed, rate
    );
    // Peak RSS (VmHWM) covers the whole run including the world build;
    // Linux-only, observational, stderr like the throughput line.
    if let Some(kb) = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1)?.parse::<u64>().ok())
        })
    {
        eprintln!("ppm-sim: peak rss {kb} kB");
    }
    if let Some(p) = metrics_path {
        if let Err(e) = std::fs::write(&p, text) {
            eprintln!("ppm-sim: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ppm-sim [--trace] [--digest] [--seed <S>] [--metrics <path>] [--spans <path>] \
         [--faults <plan>] [--topology <preset|file>] <scenario-file>"
    );
    eprintln!(
        "       ppm-sim [--trace] [--digest] [--seed <S>] [--metrics <path>] [--spans <path>] \
         [--faults <plan>] [--topology <preset|file>] --hosts <N>"
    );
    eprintln!(
        "       ppm-sim [--digest] [--metrics <path>] --users <U> --hosts <N> [--seed <S>] \
         [--procs <P>]"
    );
    eprintln!("see scenarios/ for examples and src/scenario.rs for the grammar");
    eprintln!("fault plans: see scenarios/*.fault and ppm_simnet::fault for the grammar");
    eprintln!("sweep grids: see scenarios/*.sweep and the ppm-sweep binary (ppm-bench)");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut trace = false;
    let mut digest = false;
    let mut hosts: Option<usize> = None;
    let mut users: Option<u32> = None;
    let mut seed: Option<u64> = None;
    let mut procs: Option<u64> = None;
    let mut path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut spans_path: Option<String> = None;
    let mut faults_path: Option<String> = None;
    let mut topology_arg: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace = true,
            "--digest" => digest = true,
            "--faults" => {
                let Some(p) = args.next() else {
                    eprintln!("ppm-sim: --faults needs a fault-plan path");
                    return ExitCode::FAILURE;
                };
                faults_path = Some(p);
            }
            "--topology" => {
                let Some(t) = args.next() else {
                    eprintln!(
                        "ppm-sim: --topology needs a preset ({}) or a spec file",
                        ppm_simnet::topology::NetSpec::PRESETS.join(", ")
                    );
                    return ExitCode::FAILURE;
                };
                topology_arg = Some(t);
            }
            "--hosts" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()).filter(|n| *n >= 2) else {
                    eprintln!("ppm-sim: --hosts needs a host count of at least 2");
                    return ExitCode::FAILURE;
                };
                hosts = Some(n);
            }
            "--users" => {
                let Some(u) = args.next().and_then(|v| v.parse().ok()).filter(|u| *u >= 1) else {
                    eprintln!("ppm-sim: --users needs a user count of at least 1");
                    return ExitCode::FAILURE;
                };
                users = Some(u);
            }
            "--seed" => {
                let Some(s) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("ppm-sim: --seed needs an integer");
                    return ExitCode::FAILURE;
                };
                seed = Some(s);
            }
            "--procs" => {
                let Some(p) = args.next().and_then(|v| v.parse().ok()).filter(|p| *p >= 1) else {
                    eprintln!("ppm-sim: --procs needs a process count of at least 1");
                    return ExitCode::FAILURE;
                };
                procs = Some(p);
            }
            "--metrics" => {
                let Some(p) = args.next() else {
                    eprintln!("ppm-sim: --metrics needs an output path");
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(p);
            }
            "--spans" => {
                let Some(p) = args.next() else {
                    eprintln!("ppm-sim: --spans needs an output path");
                    return ExitCode::FAILURE;
                };
                spans_path = Some(p);
            }
            _ => path = Some(arg),
        }
    }
    if let Some(users) = users {
        let Some(hosts) = hosts.filter(|&n| n >= 2 && n <= u16::MAX as usize) else {
            eprintln!("ppm-sim: --users needs --hosts (2 ..= 65535)");
            return ExitCode::FAILURE;
        };
        if topology_arg.is_some() {
            eprintln!("ppm-sim: --topology is not supported with --users (storm mode)");
            return ExitCode::FAILURE;
        }
        return run_scale(
            users,
            hosts as u16,
            seed.unwrap_or(1986),
            procs,
            metrics_path,
            digest,
        );
    }
    let (name, text) = match (hosts, path) {
        (Some(n), None) => (format!("--hosts {n}"), ppm::scenario::chain_scenario(n)),
        (None, Some(path)) => match std::fs::read_to_string(&path) {
            Ok(t) => (path, t),
            Err(e) => {
                eprintln!("ppm-sim: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => return usage(),
    };
    let mut scenario = match ppm::scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ppm-sim: {name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(s) = seed {
        scenario.seed = s;
    }
    let plan = match faults_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(t) => match ppm_simnet::fault::FaultPlan::parse(&t) {
                Ok(plan) => Some(plan),
                Err(e) => {
                    eprintln!("ppm-sim: {p}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("ppm-sim: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let topology = match topology_arg {
        Some(arg) => {
            let host_names: Vec<String> = scenario.hosts.iter().map(|(n, _)| n.clone()).collect();
            match ppm::scenario::resolve_topology(&arg, &host_names) {
                Ok(spec) => Some(spec),
                Err(e) => {
                    eprintln!("ppm-sim: --topology {arg}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let mut out = String::new();
    let opts = ppm::scenario::ExecOptions {
        spans: spans_path.is_some(),
        faults: plan.as_ref(),
        topology: topology.as_ref(),
    };
    match ppm::scenario::execute_with(&scenario, &mut out, opts) {
        Ok(ppm) => {
            print!("{out}");
            if trace {
                print!("{}", ppm.world().core().trace().render(None));
            }
            if digest {
                let trace_text = ppm.world().core().trace().render(None);
                let metrics_text = ppm.metrics_report();
                println!(
                    "digest {}",
                    ppm::digest::hex(ppm::digest::fnv1a(&[&out, &trace_text, &metrics_text]))
                );
            }
            if let Some(p) = metrics_path {
                if let Err(e) = std::fs::write(&p, ppm.metrics_report()) {
                    eprintln!("ppm-sim: cannot write {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Some(p) = spans_path {
                if let Err(e) = std::fs::write(&p, ppm.spans_jsonl()) {
                    eprintln!("ppm-sim: cannot write {p}: {e}");
                    return ExitCode::FAILURE;
                }
                let chrome = format!("{p}.chrome.json");
                if let Err(e) = std::fs::write(&chrome, ppm.spans_chrome()) {
                    eprintln!("ppm-sim: cannot write {chrome}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            print!("{out}");
            eprintln!("ppm-sim: {name}: {e}");
            ExitCode::FAILURE
        }
    }
}
