//! `ppm-sim` — run a PPM scenario file against the simulated network.
//!
//! ```console
//! $ cargo run --bin ppm-sim -- scenarios/demo.ppm
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: ppm-sim <scenario-file>");
        eprintln!("see scenarios/ for examples and src/scenario.rs for the grammar");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ppm-sim: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match ppm::scenario::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ppm-sim: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut out = String::new();
    match ppm::scenario::execute(&scenario, &mut out) {
        Ok(_) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            print!("{out}");
            eprintln!("ppm-sim: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
