//! `ppm-mc` — bounded model checking of the PPM protocols.
//!
//! Explores every message/crash interleaving of small staged worlds
//! within depth and state budgets, checking the four protocol
//! predicates. Exits nonzero on a violation, printing the minimized
//! counterexample schedule.
//!
//! ```text
//! ppm-mc [--suite NAME|all] [--depth N] [--states N] [--repro] [--digest]
//! ```
//!
//! * `--suite` — one of `exactly-once`, `bcast-dedup`, `election`,
//!   `no-orphans`, or `all` (default).
//! * `--depth` — branch-point budget per schedule (overrides the
//!   suite's default).
//! * `--states` — total state budget per suite (overrides the suite's
//!   default).
//! * `--repro` — run each suite's exploration twice and verify the
//!   visited-state digests agree (the determinism gate); on a
//!   violation, additionally replay the minimized schedule twice.
//! * `--digest` — print one digest line per suite (16-digit hex, the
//!   same rendering `ppm-sim --digest` uses) and nothing else.

use std::process::ExitCode;

use ppm::digest::hex;
use ppm_mc::scenarios;
use ppm_mc::{explore, replay, replay_trace, Budget};

struct Args {
    suite: String,
    depth: Option<usize>,
    states: Option<u64>,
    repro: bool,
    digest_only: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        suite: "all".to_string(),
        depth: None,
        states: None,
        repro: false,
        digest_only: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suite" => {
                args.suite = it.next().ok_or("--suite needs a value")?;
            }
            "--depth" => {
                let v = it.next().ok_or("--depth needs a value")?;
                args.depth = Some(v.parse().map_err(|_| format!("bad depth {v}"))?);
            }
            "--states" => {
                let v = it.next().ok_or("--states needs a value")?;
                args.states = Some(v.parse().map_err(|_| format!("bad states {v}"))?);
            }
            "--repro" => args.repro = true,
            "--digest" => args.digest_only = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ppm-mc: {e}");
            return ExitCode::from(2);
        }
    };
    let names: Vec<&str> = if args.suite == "all" {
        scenarios::SUITES.to_vec()
    } else {
        match scenarios::by_name(&args.suite) {
            Some(_) => vec![scenarios::SUITES
                .iter()
                .copied()
                .find(|n| *n == args.suite)
                .expect("by_name implies membership")],
            None => {
                eprintln!(
                    "ppm-mc: unknown suite {:?}; known: {}",
                    args.suite,
                    scenarios::SUITES.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    };
    let mut failed = false;
    for name in names {
        let s = scenarios::by_name(name).expect("listed suite exists");
        let budget = Budget {
            max_depth: args.depth.unwrap_or(s.default_budget.max_depth),
            max_states: args.states.unwrap_or(s.default_budget.max_states),
        };
        let (stats, violation) = explore(&s, budget);
        if args.digest_only {
            println!("{name} {}", hex(stats.digest));
        } else {
            println!(
                "suite {name}: states={} branch_points={} dedup={} quiescent={} truncated={} digest={}",
                stats.states,
                stats.branch_points,
                stats.dedup_hits,
                stats.quiescent,
                stats.truncated,
                hex(stats.digest),
            );
        }
        if args.repro {
            let (again, _) = explore(&s, budget);
            if again.digest != stats.digest {
                eprintln!(
                    "suite {name}: NONDETERMINISTIC exploration ({} vs {})",
                    hex(stats.digest),
                    hex(again.digest)
                );
                failed = true;
            } else if !args.digest_only {
                println!("suite {name}: exploration digest stable across 2 runs");
            }
        }
        if let Some(v) = violation {
            failed = true;
            eprintln!("VIOLATION in {name}: {}", v.predicate);
            eprintln!("minimized schedule ({} moves):", v.picks.len());
            for (i, step) in v.trace.iter().enumerate() {
                eprintln!("  {:>2}. {step}", i + 1);
            }
            eprintln!("picks: {:?}", v.picks);
            if args.repro {
                let d1 = replay(&s, &v.picks).digest();
                let d2 = replay(&s, &v.picks).digest();
                let trace2 = replay_trace(&s, &v.picks);
                if d1 == d2 && trace2 == v.trace {
                    eprintln!(
                        "repro: schedule replays deterministically (state {})",
                        hex(d1)
                    );
                } else {
                    eprintln!("repro: REPLAY DIVERGED ({} vs {})", hex(d1), hex(d2));
                }
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
