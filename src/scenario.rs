//! A small scenario language for driving the simulated PPM from files.
//!
//! `ppm-sim` (see `src/bin/ppm-sim.rs`) reads a line-oriented scenario,
//! builds the network, plays timed actions, and prints tool output —
//! making the reproduction usable as a standalone experimentation
//! vehicle, the way the paper positions the PPM prototype ("a tool for
//! experimentation in networked environments").
//!
//! # Grammar (one statement per line, `#` comments)
//!
//! ```text
//! seed 1986
//! host calder vax780                      # cpu: vax780 | vax750 | sun2
//! link calder ucbarpa
//! user 100 secret=0xBEEF recovery=calder,ucbarpa [fast] [nameserver=ns]
//!
//! at 0s    spawn calder 100 ucbarpa worker as w1 [lifetime=10s] [parent=$w0]
//! at 500ms adopt calder 100 calder 4
//! at 1s    control calder 100 $w1 stop       # stop | fg | bg | kill
//! at 2s    snapshot calder 100 *
//! at 3s    dashboard calder 100
//! at 4s    rusage calder 100 ucbarpa
//! at 5s    history calder 100 *
//! at 6s    killtree calder 100 $w1
//! at 7s    crash ucbarpa
//! at 8s    restart ucbarpa
//! at 9s    link-down calder ucbarpa
//! at 10s   link-up calder ucbarpa
//!
//! run 30s
//! ```
//!
//! `as NAME` binds the created process's `<host, pid>`; `$NAME` refers to
//! it in later `control`/`killtree`/`parent=` arguments.

use std::collections::HashMap;
use std::fmt;

use ppm_core::config::{PpmConfig, RecoveryPolicy};
use ppm_core::pmd::PmdOptions;
use ppm_harness::harness::{HarnessError, PpmHarness};
use ppm_proto::msg::ControlAction;
use ppm_proto::types::Gpid;
use ppm_simnet::fault::FaultPlan;
use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::{CpuClass, NetGraph, NetSpec};
use ppm_simos::events::TraceFlags;
use ppm_simos::ids::Uid;

/// The generated `--hosts N` scale scenario: a chain where each host's
/// worker is created from the previous host, so the sibling graph — and
/// thus the broadcast cover tree — is the chain itself. Shared by
/// `ppm-sim --hosts N` and the `ppm-sweep` chain axis, which must agree
/// byte for byte for cell digests to be reproducible.
#[must_use]
pub fn chain_scenario(n: usize) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("seed 1986\n");
    for i in 0..n {
        let cpu = if i % 2 == 0 { "vax780" } else { "sun2" };
        writeln!(s, "host h{i} {cpu}").expect("write to string");
    }
    for i in 1..n {
        writeln!(s, "link h{} h{i}", i - 1).expect("write to string");
    }
    s.push_str("user 100 secret=0xBEEF recovery=h0,h1 fast\n\n");
    s.push_str("at 0s spawn h0 100 h0 job-0 as w0\n");
    for i in 1..n {
        writeln!(
            s,
            "at {}ms spawn h{} 100 h{i} job-{i} as w{i}",
            i * 200,
            i - 1,
        )
        .expect("write to string");
    }
    writeln!(s, "at {}ms snapshot h0 100 *", n * 200 + 2_000).expect("write to string");
    s.push_str("run 10s\n");
    s
}

/// A parse or execution failure, with the line it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError {
    /// 1-based line number (0 for execution-phase errors without one).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        message: message.into(),
    }
}

/// A process reference: literal `host pid` pair or a `$name` binding.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcRef {
    /// Literal `<host, pid>`.
    Literal(Gpid),
    /// A name bound by `as NAME`.
    Named(String),
}

/// One timed action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Create a process through the PPM.
    Spawn {
        from: String,
        uid: u32,
        dest: String,
        command: String,
        bind: Option<String>,
        lifetime: Option<SimDuration>,
        parent: Option<ProcRef>,
    },
    /// Adopt an existing process.
    Adopt {
        from: String,
        uid: u32,
        host: String,
        pid: u32,
    },
    /// Control one process.
    Control {
        from: String,
        uid: u32,
        target: ProcRef,
        action: ControlAction,
    },
    /// Snapshot (`dest` may be `*`) and print the forest.
    Snapshot {
        from: String,
        uid: u32,
        dest: String,
    },
    /// Print the display-tool dashboard.
    Dashboard { from: String, uid: u32 },
    /// Print exited-process statistics.
    Rusage {
        from: String,
        uid: u32,
        dest: String,
    },
    /// Print the history log.
    History {
        from: String,
        uid: u32,
        dest: String,
    },
    /// Broadcast SIGKILL to a whole computation.
    KillTree {
        from: String,
        uid: u32,
        root: ProcRef,
    },
    /// Crash a host.
    Crash { host: String },
    /// Restart a host.
    Restart { host: String },
    /// Take a link down / bring it up.
    Link { a: String, b: String, up: bool },
}

/// A parsed scenario.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// World seed.
    pub seed: u64,
    /// Hosts in declaration order.
    pub hosts: Vec<(String, CpuClass)>,
    /// Links.
    pub links: Vec<(String, String)>,
    /// Users: uid → (secret, recovery list, config).
    pub users: Vec<(u32, u64, Vec<String>, PpmConfig)>,
    /// Timed actions, in file order.
    pub actions: Vec<(usize, SimTime, Action)>,
    /// Extra time to run after the last action.
    pub tail: SimDuration,
}

fn parse_duration(s: &str, line: usize) -> Result<SimDuration, ScenarioError> {
    let (num, unit) = s
        .find(|c: char| c.is_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| err(line, format!("duration {s:?} needs a unit (ms or s)")))?;
    let n: u64 = num
        .parse()
        .map_err(|_| err(line, format!("bad duration number {num:?}")))?;
    match unit {
        "ms" => Ok(SimDuration::from_millis(n)),
        "s" => Ok(SimDuration::from_secs(n)),
        other => Err(err(line, format!("unknown duration unit {other:?}"))),
    }
}

fn parse_u64(s: &str, line: usize) -> Result<u64, ScenarioError> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| err(line, format!("bad number {s:?}")))
}

fn parse_proc_ref(tokens: &[&str], line: usize) -> Result<(ProcRef, usize), ScenarioError> {
    match tokens.first() {
        Some(t) if t.starts_with('$') => Ok((ProcRef::Named(t[1..].to_string()), 1)),
        Some(host) => {
            let pid = tokens
                .get(1)
                .ok_or_else(|| err(line, "expected HOST PID or $name"))?;
            let pid = parse_u64(pid, line)? as u32;
            Ok((ProcRef::Literal(Gpid::new(*host, pid)), 2))
        }
        None => Err(err(line, "expected a process reference")),
    }
}

/// Parses a scenario from text.
///
/// # Examples
///
/// ```
/// let scenario = ppm::scenario::parse(
///     "host a vax780\nhost b sun2\nlink a b\n\
///      user 100 secret=0xBEEF recovery=a\n\
///      at 1s spawn a 100 b job as j\nrun 5s",
/// )?;
/// assert_eq!(scenario.hosts.len(), 2);
/// assert_eq!(scenario.actions.len(), 1);
/// # Ok::<(), ppm::scenario::ScenarioError>(())
/// ```
///
/// # Errors
///
/// [`ScenarioError`] with the offending line number.
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    let mut sc = Scenario {
        seed: 1986,
        tail: SimDuration::ZERO,
        ..Default::default()
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = stripped.split_whitespace().collect();
        match tokens[0] {
            "seed" => {
                sc.seed = parse_u64(
                    tokens
                        .get(1)
                        .ok_or_else(|| err(line, "seed needs a value"))?,
                    line,
                )?;
            }
            "host" => {
                let name = tokens
                    .get(1)
                    .ok_or_else(|| err(line, "host needs a name"))?;
                let cpu = match tokens.get(2).copied() {
                    Some("vax780") | None => CpuClass::Vax780,
                    Some("vax750") => CpuClass::Vax750,
                    Some("sun2") => CpuClass::Sun2,
                    Some(other) => return Err(err(line, format!("unknown cpu {other:?}"))),
                };
                sc.hosts.push((name.to_string(), cpu));
            }
            "link" => {
                let a = tokens
                    .get(1)
                    .ok_or_else(|| err(line, "link needs two hosts"))?;
                let b = tokens
                    .get(2)
                    .ok_or_else(|| err(line, "link needs two hosts"))?;
                sc.links.push((a.to_string(), b.to_string()));
            }
            "user" => {
                let uid = parse_u64(
                    tokens.get(1).ok_or_else(|| err(line, "user needs a uid"))?,
                    line,
                )? as u32;
                let mut secret = 0u64;
                let mut recovery = Vec::new();
                let mut cfg = PpmConfig::default();
                for t in &tokens[2..] {
                    if let Some(v) = t.strip_prefix("secret=") {
                        secret = parse_u64(v, line)?;
                    } else if let Some(v) = t.strip_prefix("recovery=") {
                        recovery = v.split(',').map(str::to_string).collect();
                    } else if let Some(v) = t.strip_prefix("nameserver=") {
                        cfg.recovery_policy = RecoveryPolicy::NameServer {
                            host: v.to_string(),
                        };
                    } else if *t == "fast" {
                        let policy = cfg.recovery_policy.clone();
                        let splicing = cfg.reply_splicing;
                        cfg = PpmConfig::fast_recovery();
                        cfg.recovery_policy = policy;
                        cfg.reply_splicing = splicing;
                    } else if *t == "noagg" {
                        cfg.reply_splicing = false;
                    } else {
                        return Err(err(line, format!("unknown user option {t:?}")));
                    }
                }
                sc.users.push((uid, secret, recovery, cfg));
            }
            "at" => {
                let when = tokens.get(1).ok_or_else(|| err(line, "at needs a time"))?;
                let at = SimTime::ZERO + parse_duration(when, line)?;
                let action = parse_action(&tokens[2..], line)?;
                sc.actions.push((line, at, action));
            }
            "run" => {
                let d = tokens
                    .get(1)
                    .ok_or_else(|| err(line, "run needs a duration"))?;
                sc.tail += parse_duration(d, line)?;
            }
            other => return Err(err(line, format!("unknown statement {other:?}"))),
        }
    }
    if sc.hosts.is_empty() {
        return Err(err(0, "scenario declares no hosts"));
    }
    if sc.users.is_empty() {
        return Err(err(0, "scenario declares no users"));
    }
    Ok(sc)
}

fn parse_action(tokens: &[&str], line: usize) -> Result<Action, ScenarioError> {
    let verb = tokens
        .first()
        .ok_or_else(|| err(line, "at needs an action"))?;
    let need = |i: usize, what: &str| -> Result<&str, ScenarioError> {
        tokens
            .get(i)
            .copied()
            .ok_or_else(|| err(line, format!("{verb} needs {what}")))
    };
    match *verb {
        "spawn" => {
            let from = need(1, "FROM")?.to_string();
            let uid = parse_u64(need(2, "UID")?, line)? as u32;
            let dest = need(3, "DEST")?.to_string();
            let command = need(4, "COMMAND")?.to_string();
            let mut bind = None;
            let mut lifetime = None;
            let mut parent = None;
            let mut i = 5;
            while i < tokens.len() {
                match tokens[i] {
                    "as" => {
                        bind = Some(need(i + 1, "a name after `as`")?.to_string());
                        i += 2;
                    }
                    t if t.starts_with("lifetime=") => {
                        lifetime = Some(parse_duration(&t["lifetime=".len()..], line)?);
                        i += 1;
                    }
                    t if t.starts_with("parent=") => {
                        let rest = &t["parent=".len()..];
                        let toks: Vec<&str> = rest.split(':').collect();
                        let (r, _) = parse_proc_ref(&toks, line)?;
                        parent = Some(r);
                        i += 1;
                    }
                    other => return Err(err(line, format!("unknown spawn option {other:?}"))),
                }
            }
            Ok(Action::Spawn {
                from,
                uid,
                dest,
                command,
                bind,
                lifetime,
                parent,
            })
        }
        "adopt" => Ok(Action::Adopt {
            from: need(1, "FROM")?.to_string(),
            uid: parse_u64(need(2, "UID")?, line)? as u32,
            host: need(3, "HOST")?.to_string(),
            pid: parse_u64(need(4, "PID")?, line)? as u32,
        }),
        "control" => {
            let from = need(1, "FROM")?.to_string();
            let uid = parse_u64(need(2, "UID")?, line)? as u32;
            let (target, used) = parse_proc_ref(&tokens[3..], line)?;
            let verb = need(3 + used, "stop|fg|bg|kill")?;
            let action = match verb {
                "stop" => ControlAction::Stop,
                "fg" => ControlAction::Foreground,
                "bg" => ControlAction::Background,
                "kill" => ControlAction::Kill,
                other => return Err(err(line, format!("unknown control verb {other:?}"))),
            };
            Ok(Action::Control {
                from,
                uid,
                target,
                action,
            })
        }
        "snapshot" => Ok(Action::Snapshot {
            from: need(1, "FROM")?.to_string(),
            uid: parse_u64(need(2, "UID")?, line)? as u32,
            dest: need(3, "DEST")?.to_string(),
        }),
        "dashboard" => Ok(Action::Dashboard {
            from: need(1, "FROM")?.to_string(),
            uid: parse_u64(need(2, "UID")?, line)? as u32,
        }),
        "rusage" => Ok(Action::Rusage {
            from: need(1, "FROM")?.to_string(),
            uid: parse_u64(need(2, "UID")?, line)? as u32,
            dest: need(3, "DEST")?.to_string(),
        }),
        "history" => Ok(Action::History {
            from: need(1, "FROM")?.to_string(),
            uid: parse_u64(need(2, "UID")?, line)? as u32,
            dest: need(3, "DEST")?.to_string(),
        }),
        "killtree" => {
            let from = need(1, "FROM")?.to_string();
            let uid = parse_u64(need(2, "UID")?, line)? as u32;
            let (root, _) = parse_proc_ref(&tokens[3..], line)?;
            Ok(Action::KillTree { from, uid, root })
        }
        "crash" => Ok(Action::Crash {
            host: need(1, "HOST")?.to_string(),
        }),
        "restart" => Ok(Action::Restart {
            host: need(1, "HOST")?.to_string(),
        }),
        "link-down" => Ok(Action::Link {
            a: need(1, "A")?.to_string(),
            b: need(2, "B")?.to_string(),
            up: false,
        }),
        "link-up" => Ok(Action::Link {
            a: need(1, "A")?.to_string(),
            b: need(2, "B")?.to_string(),
            up: true,
        }),
        other => Err(err(line, format!("unknown action {other:?}"))),
    }
}

/// Resolves a `--topology` argument against a scenario's host list: a
/// preset name (`full-mesh`, `fat-tree`, `wan-hub`, `last-mile`) builds
/// the corresponding [`NetSpec`] over the hosts; anything else is read as
/// a topology spec file (see `ppm_simnet::topology::NetSpec::parse` for
/// the grammar).
///
/// # Errors
///
/// A message naming the unreadable file or the spec parse error.
pub fn resolve_topology(arg: &str, hosts: &[String]) -> Result<NetSpec, String> {
    if NetSpec::PRESETS.contains(&arg) {
        return NetSpec::preset(arg, hosts)
            .ok_or_else(|| format!("preset {arg:?} needs at least one host"));
    }
    let text =
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read topology {arg}: {e}"))?;
    NetSpec::parse(&text)
}

/// Executes a parsed scenario, writing tool output through `out`.
///
/// Returns the harness for post-run inspection.
///
/// # Errors
///
/// [`ScenarioError`] naming the failing action's line.
pub fn execute(sc: &Scenario, out: &mut dyn fmt::Write) -> Result<PpmHarness, ScenarioError> {
    execute_observed(sc, out, false)
}

/// Like [`execute`], but optionally with structured span recording
/// enabled from the first event (for `ppm-sim --spans`). Spans are off
/// by default because each record costs an allocation.
pub fn execute_observed(
    sc: &Scenario,
    out: &mut dyn fmt::Write,
    spans: bool,
) -> Result<PpmHarness, ScenarioError> {
    execute_with(
        sc,
        out,
        ExecOptions {
            spans,
            faults: None,
            topology: None,
        },
    )
}

/// Execution knobs for [`execute_with`].
#[derive(Debug, Default)]
pub struct ExecOptions<'a> {
    /// Record structured spans from the first event.
    pub spans: bool,
    /// A fault plan applied before the first action (`ppm-sim --faults`).
    /// Enables pmd stable storage and LPM respawn, so the world can heal
    /// from the faults the plan injects.
    pub faults: Option<&'a FaultPlan>,
    /// A physical network model installed before the first action
    /// (`ppm-sim --topology`): deliveries are priced over its routes with
    /// per-link capacity and contention instead of the flat wire law.
    pub topology: Option<&'a NetSpec>,
}

/// Like [`execute`], with all execution knobs explicit.
///
/// # Errors
///
/// [`ScenarioError`] naming the failing action's line, or (line 0) a
/// fault plan referencing an unknown host.
pub fn execute_with(
    sc: &Scenario,
    out: &mut dyn fmt::Write,
    opts: ExecOptions<'_>,
) -> Result<PpmHarness, ScenarioError> {
    let ExecOptions {
        spans,
        faults,
        topology,
    } = opts;
    let mut builder = PpmHarness::builder().seed(sc.seed);
    if let Some(spec) = topology {
        // Dry-run the graph build so a bad spec (unknown endpoint, name
        // collision with a host) surfaces as a scenario error instead of
        // a harness panic.
        let host_names: Vec<String> = sc.hosts.iter().map(|(n, _)| n.clone()).collect();
        NetGraph::build(spec, &host_names).map_err(|e| err(0, e))?;
        builder = builder.topology(spec.clone());
    }
    if faults.is_some() {
        // A faulted run only makes sense if the system is allowed to
        // recover: persist pmd registries and respawn dead LPMs.
        builder = builder.pmd_options(PmdOptions {
            stable_storage: true,
            respawn_lpms: true,
        });
    }
    for (name, cpu) in &sc.hosts {
        builder = builder.host(name.clone(), *cpu);
    }
    for (a, b) in &sc.links {
        builder = builder.link(a.clone(), b.clone());
    }
    for (uid, secret, recovery, cfg) in &sc.users {
        let rec: Vec<&str> = recovery.iter().map(String::as_str).collect();
        builder = builder.user(Uid(*uid), *secret, &rec, cfg.clone());
    }
    let mut ppm = builder.build();
    if spans {
        ppm.enable_spans();
    }
    if let Some(plan) = faults {
        ppm.world_mut()
            .apply_fault_plan(plan)
            .map_err(|e| err(0, e))?;
        let _ = writeln!(
            out,
            "--- fault plan armed: {} scheduled fault(s), {} wire rule(s), seed {}",
            plan.events.len(),
            plan.wire.len(),
            plan.seed
        );
    }
    let mut bindings: HashMap<String, Gpid> = HashMap::new();

    let mut actions = sc.actions.clone();
    actions.sort_by_key(|(_, at, _)| *at);

    let resolve = |r: &ProcRef,
                   bindings: &HashMap<String, Gpid>,
                   line: usize|
     -> Result<Gpid, ScenarioError> {
        match r {
            ProcRef::Literal(g) => Ok(g.clone()),
            ProcRef::Named(n) => bindings
                .get(n)
                .cloned()
                .ok_or_else(|| err(line, format!("unbound process name ${n}"))),
        }
    };
    let lift = |e: HarnessError, line: usize| err(line, e.to_string());

    for (line, at, action) in actions {
        if at > ppm.now() {
            let wait = at.saturating_since(ppm.now());
            ppm.run_for(wait);
        }
        let _ = writeln!(out, "--- [{at}] {action:?}");
        match action {
            Action::Spawn {
                from,
                uid,
                dest,
                command,
                bind,
                lifetime,
                parent,
            } => {
                let parent = match parent {
                    Some(r) => Some(resolve(&r, &bindings, line)?),
                    None => None,
                };
                let g = ppm
                    .spawn_remote(&from, Uid(uid), &dest, &command, parent, lifetime)
                    .map_err(|e| lift(e, line))?;
                let _ = writeln!(out, "created {g}");
                if let Some(name) = bind {
                    bindings.insert(name, g);
                }
            }
            Action::Adopt {
                from,
                uid,
                host,
                pid,
            } => {
                ppm.adopt(&from, Uid(uid), &host, pid, TraceFlags::ALL.bits())
                    .map_err(|e| lift(e, line))?;
            }
            Action::Control {
                from,
                uid,
                target,
                action,
            } => {
                let g = resolve(&target, &bindings, line)?;
                ppm.control(&from, Uid(uid), &g, action)
                    .map_err(|e| lift(e, line))?;
            }
            Action::Snapshot { from, uid, dest } => {
                let procs = ppm
                    .snapshot(&from, Uid(uid), &dest)
                    .map_err(|e| lift(e, line))?;
                let title = format!("snapshot of {dest}");
                let _ = writeln!(out, "{}", ppm_tools::snapshot::render(procs, &title));
            }
            Action::Dashboard { from, uid } => {
                let text = ppm_tools::display::dashboard(&mut ppm, &from, Uid(uid))
                    .map_err(|e| lift(e, line))?;
                let _ = writeln!(out, "{text}");
            }
            Action::Rusage { from, uid, dest } => {
                let records = ppm
                    .rusage(&from, Uid(uid), &dest, None)
                    .map_err(|e| lift(e, line))?;
                let _ = writeln!(
                    out,
                    "{}",
                    ppm_tools::rusage_tool::render(&records, &format!("exited on {dest}"))
                );
            }
            Action::History { from, uid, dest } => {
                let events = ppm
                    .history(&from, Uid(uid), &dest, SimTime::ZERO, 200)
                    .map_err(|e| lift(e, line))?;
                let _ = writeln!(
                    out,
                    "{}",
                    ppm_tools::history_tool::render(&events, &format!("history of {dest}"))
                );
            }
            Action::KillTree { from, uid, root } => {
                let g = resolve(&root, &bindings, line)?;
                let n = ppm_tools::computation::signal_computation(
                    &mut ppm,
                    &from,
                    Uid(uid),
                    &g,
                    ControlAction::Kill,
                )
                .map_err(|e| lift(e, line))?;
                let _ = writeln!(out, "killed {n} member(s) of {g}");
            }
            Action::Crash { host } => {
                let h = ppm.host(&host).map_err(|e| lift(e, line))?;
                ppm.world_mut().schedule_crash(h, SimDuration::ZERO);
            }
            Action::Restart { host } => {
                let h = ppm.host(&host).map_err(|e| lift(e, line))?;
                ppm.world_mut().schedule_restart(h, SimDuration::ZERO);
            }
            Action::Link { a, b, up } => {
                let ha = ppm.host(&a).map_err(|e| lift(e, line))?;
                let hb = ppm.host(&b).map_err(|e| lift(e, line))?;
                ppm.world_mut().schedule_link(ha, hb, up, SimDuration::ZERO);
            }
        }
    }
    if !sc.tail.is_zero() {
        ppm.run_for(sc.tail);
    }
    let _ = writeln!(out, "--- scenario complete at {}", ppm.now());
    Ok(ppm)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
# demo scenario
seed 7
host a vax780
host b vax750
link a b
user 100 secret=0xBEEF recovery=a,b fast

at 0s    spawn a 100 a master as m
at 100ms spawn a 100 b worker as w parent=$m lifetime=5s
at 1s    control a 100 $w stop
at 2s    control a 100 $w bg
at 3s    snapshot a 100 *
at 4s    crash b
at 6s    restart b
at 8s    dashboard a 100
run 2s
"#;

    #[test]
    fn parses_the_demo() {
        let sc = parse(DEMO).unwrap();
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.hosts.len(), 2);
        assert_eq!(sc.links.len(), 1);
        assert_eq!(sc.users.len(), 1);
        assert_eq!(sc.actions.len(), 8);
        assert_eq!(sc.tail, SimDuration::from_secs(2));
        assert_eq!(sc.users[0].1, 0xBEEF);
        assert_eq!(sc.users[0].2, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn executes_the_demo() {
        let sc = parse(DEMO).unwrap();
        let mut out = String::new();
        let ppm = execute(&sc, &mut out).unwrap();
        assert!(out.contains("created <a,"), "{out}");
        assert!(out.contains("snapshot of *"));
        assert!(out.contains("worker"));
        assert!(out.contains("PPM display"));
        assert!(out.contains("scenario complete"));
        assert!(ppm.now() >= SimTime::from_secs(10));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse("host a vax780\nuser 1 secret=1\nat 1s bogus x").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));

        let e = parse("host a cray1\nuser 1 secret=1").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse("user 1 secret=1").unwrap_err();
        assert!(e.message.contains("no hosts"));
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(
            parse_duration("250ms", 1).unwrap(),
            SimDuration::from_millis(250)
        );
        assert_eq!(parse_duration("3s", 1).unwrap(), SimDuration::from_secs(3));
        assert!(parse_duration("10", 1).is_err());
        assert!(parse_duration("5h", 1).is_err());
    }

    #[test]
    fn unbound_name_is_an_execution_error() {
        let text =
            "host a vax780\nuser 100 secret=1 recovery=a\nat 1s control a 100 $ghost kill\nrun 1s";
        let sc = parse(text).unwrap();
        let mut out = String::new();
        let e = execute(&sc, &mut out).unwrap_err();
        assert!(e.message.contains("$ghost"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn nameserver_option_selects_policy() {
        let text = "host ns vax780\nhost a vax750\nlink ns a\nuser 5 secret=2 nameserver=ns fast";
        let sc = parse(text).unwrap();
        assert!(matches!(
            sc.users[0].3.recovery_policy,
            RecoveryPolicy::NameServer { ref host } if host == "ns"
        ));
        // `fast` preserves the already-chosen policy.
        assert!(sc.users[0].3.time_to_die < PpmConfig::default().time_to_die);
    }
}
