//! # ppm — reproduction of the Personal Process Manager (ICDCS 1986)
//!
//! A full reimplementation of Cabrera, Sechrest and Cáceres,
//! *The Administration of Distributed Computations in a Networked
//! Environment: An Interim Report*, over a deterministic simulated
//! network of Berkeley UNIX hosts.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`simnet`] — discrete-event engine, topology, calibrated latencies;
//! * [`simos`] — the simulated per-host UNIX substrate;
//! * [`proto`] — the PPM wire protocol;
//! * [`core`] — LPMs, pmd, broadcast, history, triggers, crash recovery;
//! * [`tools`] — snapshot display, statistics, files, IPC analysis.
//!
//! plus the [`scenario`] language that drives the whole system from a
//! text file (see the `ppm-sim` binary and `scenarios/`).
//!
//! See `examples/` for runnable walkthroughs and `ppm-bench` for the
//! regeneration of every table and figure in the paper.
//!
//! ## Quickstart
//!
//! ```
//! use ppm::core::config::PpmConfig;
//! use ppm::harness::harness::PpmHarness;
//! use ppm::simnet::topology::CpuClass;
//! use ppm::simos::ids::Uid;
//!
//! let mut ppm = PpmHarness::builder()
//!     .host("calder", CpuClass::Vax780)
//!     .host("ucbarpa", CpuClass::Vax750)
//!     .link("calder", "ucbarpa")
//!     .user(Uid(100), 0xBEEF, &["calder"], PpmConfig::default())
//!     .build();
//! let gpid = ppm.spawn_remote("calder", Uid(100), "ucbarpa", "troff", None, None)?;
//! let procs = ppm.snapshot("calder", Uid(100), "*")?;
//! assert!(procs.iter().any(|p| p.gpid == gpid));
//! # Ok::<(), ppm::harness::harness::HarnessError>(())
//! ```

pub mod digest;
pub mod scenario;

pub use ppm_core as core;
pub use ppm_harness as harness;
pub use ppm_proto as proto;
pub use ppm_runtime as runtime;
pub use ppm_simnet as simnet;
pub use ppm_simos as simos;
pub use ppm_tools as tools;
