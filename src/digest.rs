//! The run digest: one 64-bit fingerprint per simulation run.
//!
//! `ppm-sim --digest` and the `ppm-sweep` experiment harness both reduce
//! a run's observable surface — scenario output, trace, metrics (or the
//! scale report and its metrics) — to a single FNV-1a fold. Because both
//! paths hash exactly the same strings in the same order, a sweep cell's
//! digest can be re-derived by running the cell's repro command line
//! standalone, which is what makes a failed cell reproducible and what
//! the sweep determinism gate checksums.

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one byte slice into an existing FNV-1a state.
#[must_use]
pub fn fnv1a_fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// FNV-1a over a sequence of text chunks, as if concatenated.
#[must_use]
pub fn fnv1a(chunks: &[&str]) -> u64 {
    chunks
        .iter()
        .fold(FNV_OFFSET, |st, c| fnv1a_fold(st, c.as_bytes()))
}

/// The canonical 16-digit lower-hex rendering of a digest.
#[must_use]
pub fn hex(digest: u64) -> String {
    format!("{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_invisible() {
        assert_eq!(fnv1a(&["ab", "cd"]), fnv1a(&["abcd"]));
        assert_eq!(fnv1a(&["", "abcd", ""]), fnv1a(&["abcd"]));
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(fnv1a(&["abcd"]), fnv1a(&["abce"]));
        assert_ne!(fnv1a(&[]), fnv1a(&["\0"]));
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex(0xBEEF), "000000000000beef");
        assert_eq!(hex(u64::MAX), "ffffffffffffffff");
    }
}
