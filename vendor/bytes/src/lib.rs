//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the small subset of the real `bytes` API the workspace
//! uses: an immutable, cheaply-clonable byte buffer that converts from a
//! `Vec<u8>` without copying and wraps `&'static [u8]` without allocating.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    /// Borrowed from static storage; clone and construction are free.
    Static(&'static [u8]),
    /// Shared heap storage; clone bumps a refcount.
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::new(data.to_vec())))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The underlying bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Zero-copy: the vector becomes the shared storage.
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::new(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_is_shared() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn static_and_empty() {
        let s = Bytes::from_static(b"hi");
        assert_eq!(&*s, b"hi");
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
    }

    #[test]
    fn copy_and_to_vec_roundtrip() {
        let b = Bytes::copy_from_slice(&[9, 8]);
        assert_eq!(b.to_vec(), vec![9, 8]);
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(vec![b'a', 0xFF]);
        assert_eq!(format!("{b:?}"), "b\"a\\xff\"");
    }
}
