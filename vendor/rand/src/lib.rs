//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the `rand` 0.8 API the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, high-quality, and stable across runs,
//! which is all the simulation requires. (The bit streams differ from the
//! real `rand` crate's ChaCha-based `StdRng`; the workspace only depends
//! on determinism, not on specific values.)

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        sample_unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn sample_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased sample from `[0, n)` via Lemire's multiply-shift rejection.
fn sample_below_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected sample from the biased zone; redraw.
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = sample_below_u64(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                let off = sample_below_u64(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = sample_unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // Use a closed-interval scale so `end` is attainable.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + u * (end - start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = sample_unit_f64(rng.next_u64()) as f32;
        self.start + u * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let g = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
