//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the proptest 1.x API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`/`boxed`,
//! [`Just`], range and tuple strategies, `any::<T>()` for primitives,
//! `prop::collection::vec`, `prop::option::of`, a character-class regex
//! string strategy, the [`proptest!`] test macro, and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test's module path) and
//! there is **no shrinking** — a failing case reports its case number and
//! seed instead. Set `PROPTEST_CASES` to change the case count (default
//! 64).

use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------------

/// The per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 → xoshiro256++).
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        loop {
            let m = (self.next_u64() as u128).wrapping_mul(n as u128);
            if (m as u64) >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates from `self`, then from the strategy `f` returns.
    fn prop_flat_map<U, S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy<Value = U>,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values passing `f` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies can mix.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn ErasedStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Full-domain strategy for a primitive, from [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for a primitive type.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<char> {
    type Value = char;
    fn generate(&self, rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (rng.below(95) as u8 + 0x20) as char
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0: 0);
impl_tuple_strategy!(S0: 0, S1: 1);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7, S8: 8);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7, S8: 8, S9: 9);

// ---------------------------------------------------------------------------
// Regex-lite string strategy
// ---------------------------------------------------------------------------

/// One parsed atom of a character-class pattern.
#[derive(Debug, Clone)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the character-class subset of regex the tests use:
/// literals, escapes, `[...]` classes with ranges, and `{m}`/`{m,n}`
/// repetition.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    let c = if chars[j] == '\\' {
                        j += 1;
                        unescape(chars[j])
                    } else {
                        chars[j]
                    };
                    // Range `a-b` when `-` sits between two class members.
                    if j + 2 < close && chars[j + 1] == '-' && chars[j + 2] != ']' {
                        let hi = if chars[j + 2] == '\\' {
                            j += 1;
                            unescape(chars[j + 2])
                        } else {
                            chars[j + 2]
                        };
                        assert!(c <= hi, "inverted range in pattern {pattern:?}");
                        set.extend((c..=hi).filter(|ch| ch.is_ascii() || *ch <= hi));
                        j += 3;
                    } else {
                        set.push(c);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![unescape(chars[i - 1])]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier min"),
                    hi.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Leak-free static not possible; parse per call like &str.
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collection / option strategies (the `prop::` namespace)
// ---------------------------------------------------------------------------

/// The `prop::` namespace mirroring the real crate's re-export module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// An inclusive-lo, exclusive-hi element-count range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy for vectors of `element` values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy with an element strategy and a size (count or
        /// range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let n = self.size.lo + rng.below(span.max(1)) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use super::super::Any;

        /// The full-domain `bool` strategy.
        pub const ANY: Any<bool> = Any(std::marker::PhantomData);
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<T>` (3-in-4 `Some`).
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Wraps a strategy to sometimes produce `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing used by the macros
// ---------------------------------------------------------------------------

/// An early-exit failure from a property body (`return Err(...)` /
/// rejected assumption). Mirrors the real crate's type of the same name.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// What a property body evaluates to; `Ok(())` means the case passed.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Machinery the [`proptest!`] expansion calls; not part of the public
/// proptest API surface.
pub mod runner {
    /// Number of cases per property (env `PROPTEST_CASES`, default 64).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic base seed for a test, from its full path.
    pub fn base_seed(test_path: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each argument is drawn from its strategy for
/// every generated case.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::runner::case_count();
            let base = $crate::runner::base_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                let mut __proptest_rng =
                    $crate::TestRng::from_seed(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> $crate::TestCaseResult { $body Ok(()) },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest {}: case {case}/{cases} rejected (base seed {base:#x}): {e}",
                        stringify!($name),
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest {}: case {case}/{cases} failed (base seed {base:#x})",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The glob-import module, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, BoxedStrategy, Just, Strategy, TestCaseError, TestCaseResult, TestRng, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9-]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(s
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn printable_class_with_escape() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let s = "[ -~\n]{0,50}".generate(&mut rng);
            assert!(s.len() <= 50);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
        }
    }

    #[test]
    fn ranges_tuples_vec_option_oneof() {
        let mut rng = TestRng::from_seed(3);
        let strat = prop::collection::vec((0u64..500, any::<bool>()), 1..200);
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..200).contains(&v.len()));
            assert!(v.iter().all(|(d, _)| *d < 500));
            match prop::option::of(1u32..5).generate(&mut rng) {
                None => saw_none = true,
                Some(x) => {
                    saw_some = true;
                    assert!((1..5).contains(&x));
                }
            }
            let pick = prop_oneof![Just(1u8), Just(2u8), 3u8..5].generate(&mut rng);
            assert!((1..5).contains(&pick));
        }
        assert!(saw_none && saw_some);
    }

    #[test]
    fn fixed_size_vec_and_map() {
        let mut rng = TestRng::from_seed(4);
        let v = prop::collection::vec(any::<bool>(), 45).generate(&mut rng);
        assert_eq!(v.len(), 45);
        let doubled = (0u32..10).prop_map(|x| x * 2).generate(&mut rng);
        assert!(doubled < 20 && doubled % 2 == 0);
    }

    proptest! {
        #[test]
        fn macro_roundtrip(a in 0u64..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            let _ = b;
        }
    }
}
