//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the benchmarking API subset the workspace uses:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a short warm-up to size the batch,
//! then a fixed number of timed samples whose median ns/iter is printed.
//! No statistics beyond the median, no HTML reports, no comparison to
//! saved baselines. CLI: a positional substring filters benchmark names,
//! `--test` runs each benchmark once as a smoke check, and other
//! harness-ish flags (`--bench`, `--nocapture`, ...) are ignored.

use std::time::{Duration, Instant};

/// Opaque-value hint preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; this stand-in runs every
/// variant with per-iteration setup, so the variants differ only in name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    /// Total measured time across all timed iterations.
    elapsed: Duration,
    /// Number of timed iterations performed.
    iters: u64,
    /// Run exactly one iteration (`--test` smoke mode).
    smoke: bool,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            black_box(routine());
            self.iters = 1;
            return;
        }
        let n = calibrate(|| {
            black_box(routine());
        });
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke {
            black_box(routine(setup()));
            self.iters = 1;
            return;
        }
        let n = calibrate_batched(&mut setup, &mut routine);
        let mut elapsed = Duration::ZERO;
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iters = n;
    }
}

/// Picks an iteration count that keeps one sample in roughly the
/// 10–50 ms range so short routines aren't dominated by timer noise.
fn calibrate(mut routine: impl FnMut()) -> u64 {
    let start = Instant::now();
    routine();
    let one = start.elapsed().max(Duration::from_nanos(20));
    let target = Duration::from_millis(20);
    ((target.as_nanos() / one.as_nanos()).clamp(1, 2_000_000)) as u64
}

fn calibrate_batched<I, O>(setup: &mut impl FnMut() -> I, routine: &mut impl FnMut(I) -> O) -> u64 {
    let input = setup();
    let start = Instant::now();
    black_box(routine(input));
    let one = start.elapsed().max(Duration::from_nanos(20));
    let target = Duration::from_millis(20);
    ((target.as_nanos() / one.as_nanos()).clamp(1, 100_000)) as u64
}

/// Benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                s if s.starts_with("--") => {} // harness flags: ignore
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, smoke }
    }
}

impl Criterion {
    /// Runs `f` as the benchmark `id` (subject to the CLI filter) and
    /// prints its median ns/iter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        if self.smoke {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
                smoke: true,
            };
            f(&mut b);
            println!("{id:<40} ok (smoke)");
            return self;
        }
        const SAMPLES: usize = 11;
        let mut per_iter_ns: Vec<u128> = Vec::with_capacity(SAMPLES);
        // Warm-up sample, discarded.
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            smoke: false,
        };
        f(&mut b);
        for _ in 0..SAMPLES {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
                smoke: false,
            };
            f(&mut b);
            if b.iters > 0 {
                per_iter_ns.push(b.elapsed.as_nanos() / b.iters as u128);
            }
        }
        per_iter_ns.sort_unstable();
        let median = per_iter_ns.get(per_iter_ns.len() / 2).copied().unwrap_or(0);
        println!("{id:<40} median {median:>12} ns/iter");
        self
    }
}

/// Groups benchmark functions under one name, mirroring the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iters() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            smoke: false,
        };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.iters >= 1);

        let mut b2 = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            smoke: false,
        };
        b2.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b2.iters >= 1);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            smoke: true,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.iters, 1);
    }
}
