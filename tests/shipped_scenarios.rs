//! The scenario files shipped in `scenarios/` must always parse and
//! execute — they are the first thing a new user runs.

#[test]
fn demo_scenario_parses_and_executes() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/demo.ppm"))
        .expect("scenarios/demo.ppm exists");
    let sc = ppm::scenario::parse(&text).expect("demo parses");
    assert!(sc.hosts.len() >= 3);
    let mut out = String::new();
    ppm::scenario::execute(&sc, &mut out).expect("demo executes");
    assert!(out.contains("snapshot of *"), "{out}");
    assert!(out.contains("killed"), "{out}");
    assert!(out.contains("scenario complete"));
}

#[test]
fn nameserver_scenario_parses_and_executes() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/nameserver.ppm"
    ))
    .expect("scenarios/nameserver.ppm exists");
    let sc = ppm::scenario::parse(&text).expect("nameserver parses");
    let mut out = String::new();
    ppm::scenario::execute(&sc, &mut out).expect("nameserver executes");
    // The crash of the assigned CCS is visible in the final dashboard:
    // east is unreachable, the survivors carry on.
    assert!(out.contains("(unreachable)"), "{out}");
    assert!(out.contains("tester"), "{out}");
}

#[test]
fn every_shipped_scenario_parses() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("scenarios dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("ppm") {
            let text = std::fs::read_to_string(&path).expect("readable");
            ppm::scenario::parse(&text)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
            seen += 1;
        }
    }
    assert!(seen >= 2, "shipped scenarios present");
}
