//! Property test: the scenario parser never panics and either yields a
//! well-formed scenario or a line-numbered error, on arbitrary input.

use proptest::prelude::*;

proptest! {
    #[test]
    fn parser_total_on_arbitrary_text(text in "[ -~\n]{0,500}") {
        match ppm::scenario::parse(&text) {
            Ok(sc) => {
                prop_assert!(!sc.hosts.is_empty());
                prop_assert!(!sc.users.is_empty());
            }
            Err(e) => {
                prop_assert!(!e.message.is_empty());
            }
        }
    }

    #[test]
    fn parser_total_on_keyword_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("host".to_string()), Just("link".to_string()),
                Just("user".to_string()), Just("at".to_string()),
                Just("run".to_string()), Just("spawn".to_string()),
                Just("crash".to_string()), Just("1s".to_string()),
                Just("a".to_string()), Just("100".to_string()),
                Just("secret=1".to_string()), Just("$x".to_string()),
                Just("\n".to_string()),
            ],
            0..60,
        )
    ) {
        let text = words.join(" ");
        let _ = ppm::scenario::parse(&text);
    }
}
