//! Whole-system scenario test across all workspace crates: a user's
//! distributed computation lives through creation, tracking, control,
//! triggers, a host crash with CCS re-election, and post-mortem analysis
//! with every tool.

use ppm::core::client::ToolStep;
use ppm::core::config::PpmConfig;
use ppm::harness::harness::PpmHarness;
use ppm::proto::msg::{ControlAction, Op, Reply};
use ppm::proto::triggers::{EventPattern, TriggerAction, TriggerSpec};
use ppm::proto::types::WireProcState;
use ppm::simnet::time::{SimDuration, SimTime};
use ppm::simnet::topology::CpuClass;
use ppm::simos::events::TraceFlags;
use ppm::simos::ids::Uid;
use ppm::simos::program::SpawnSpec;
use ppm::simos::workload::TreeSpawner;
use ppm::tools::{forest::Forest, history_tool, ipc_tool, rusage_tool, snapshot};

const ALICE: Uid = Uid(100);
const BOB: Uid = Uid(200);

#[test]
fn a_day_in_the_life_of_the_ppm() {
    let mut ppm = PpmHarness::builder()
        .seed(19860519)
        .host("home", CpuClass::Vax780)
        .host("work", CpuClass::Vax750)
        .host("lab", CpuClass::Sun2)
        .link("home", "work")
        .link("work", "lab")
        .link("home", "lab")
        .user(
            ALICE,
            0xA11CE,
            &["home", "work"],
            PpmConfig::fast_recovery(),
        )
        .user(BOB, 0xB0B, &["work"], PpmConfig::default())
        .build();

    // --- Morning: Alice logs in and starts a local build outside PPM.
    let build_root = ppm
        .spawn_login_process(
            "home",
            ALICE,
            SpawnSpec::new(
                "make",
                Box::new(TreeSpawner::new(2, 1, SimDuration::from_secs(3600))),
            ),
        )
        .expect("login build");
    ppm.run_for(SimDuration::from_secs(2));

    // She invokes the PPM, adopting the running build.
    ppm.adopt("home", ALICE, "home", build_root.0, TraceFlags::ALL.bits())
        .expect("adopt build");

    // And fans a simulation out across the network.
    let sim_root = ppm
        .spawn_remote("home", ALICE, "home", "sim-master", None, None)
        .expect("sim master");
    let worker_work = ppm
        .spawn_remote(
            "home",
            ALICE,
            "work",
            "sim-worker-1",
            Some(sim_root.clone()),
            None,
        )
        .expect("worker 1");
    let worker_lab = ppm
        .spawn_remote(
            "home",
            ALICE,
            "lab",
            "sim-worker-2",
            Some(sim_root.clone()),
            None,
        )
        .expect("worker 2");

    // Bob works independently on the same machines.
    let bob_job = ppm
        .spawn_remote("work", BOB, "lab", "bob-batch", None, None)
        .expect("bob job");

    // --- Midday: a trigger arms cleanup — if worker 1 dies, kill worker 2.
    ppm.run_tool(
        "home",
        ALICE,
        vec![ToolStep::new(
            "work",
            Op::AddTrigger {
                spec: TriggerSpec {
                    id: 1,
                    pattern: EventPattern::kind("exit").with_pid(worker_work.pid),
                    action: TriggerAction::Signal {
                        target: worker_lab.clone(),
                        signal: 9,
                    },
                    once: true,
                },
            },
        )],
        SimDuration::from_secs(30),
    )
    .expect("trigger installed");

    // The global snapshot sees both computations as one forest.
    let procs = ppm.snapshot("home", ALICE, "*").expect("snapshot");
    let forest = Forest::build(procs.clone());
    assert_eq!(forest.hosts(), vec!["home", "lab", "work"]);
    assert!(forest.tree_count() >= 2, "build tree + simulation tree");
    assert!(
        !procs.iter().any(|p| p.command == "bob-batch"),
        "Bob's work is invisible to Alice"
    );
    let art = snapshot::render(procs, "midday snapshot");
    assert!(art.contains("sim-master"));

    // --- Afternoon: the lab machine misbehaves; Alice stops her worker
    // there, inspects it, and the lab host then crashes outright.
    ppm.control("home", ALICE, &worker_lab, ControlAction::Stop)
        .expect("stop");
    let procs = ppm.snapshot("home", ALICE, "lab").expect("lab snapshot");
    assert_eq!(
        procs
            .iter()
            .find(|p| p.gpid == worker_lab)
            .expect("visible")
            .state,
        WireProcState::Stopped
    );

    let lab = ppm.host("lab").expect("lab");
    ppm.world_mut()
        .schedule_crash(lab, SimDuration::from_millis(100));
    ppm.run_for(SimDuration::from_secs(10));

    // Lab's processes are gone; the rest of the computation survives.
    let procs = ppm
        .snapshot("home", ALICE, "*")
        .expect("post-crash snapshot");
    assert!(!procs.iter().any(|p| p.gpid.host == "lab"));
    assert!(procs.iter().any(|p| p.gpid == worker_work));

    // Bob's lab job died with the host; his own view still works.
    let bob_procs = ppm.snapshot("work", BOB, "*").expect("bob snapshot");
    assert!(!bob_procs.iter().any(|p| p.gpid == bob_job));

    // --- Evening: worker 1 finishes; the trigger fires, but its target
    // host is already down — the action is recorded, nothing breaks.
    ppm.control("home", ALICE, &worker_work, ControlAction::Kill)
        .expect("kill worker 1");
    ppm.run_for(SimDuration::from_secs(5));
    let events = ppm
        .history("home", ALICE, "work", SimTime::ZERO, 500)
        .expect("history");
    assert!(
        events.iter().any(|e| e.kind == "trigger-signal"),
        "trigger fired: {:?}",
        events.iter().map(|e| &e.kind).collect::<Vec<_>>()
    );

    // Post-mortem with the statistics tool.
    let records = ppm.rusage("home", ALICE, "work", None).expect("rusage");
    let report = rusage_tool::render(&records, "work exits");
    assert!(report.contains("sim-worker-1"));
    assert!(rusage_tool::summarize(&records).signalled >= 1);

    // History profile and IPC report render without issue.
    let all_events = ppm
        .history("home", ALICE, "*", SimTime::ZERO, 500)
        .expect("merged history");
    let profile = history_tool::render_profile(&all_events, "profile");
    assert!(profile.contains("exit"));
    let conns = ipc_tool::connection_report(ppm.world());
    assert!(!conns.is_empty());

    // The lab machine returns; the PPM fabric rebuilds on demand.
    ppm.world_mut()
        .schedule_restart(lab, SimDuration::from_millis(100));
    ppm.run_for(SimDuration::from_secs(5));
    let revived = ppm
        .spawn_remote(
            "home",
            ALICE,
            "lab",
            "sim-worker-2b",
            Some(sim_root.clone()),
            None,
        )
        .expect("respawn on revived host");
    let procs = ppm.snapshot("home", ALICE, "*").expect("final snapshot");
    assert!(procs.iter().any(|p| p.gpid == revived));
}

#[test]
fn status_is_consistent_across_observers() {
    let mut ppm = PpmHarness::builder()
        .host("x", CpuClass::Vax780)
        .host("y", CpuClass::Vax750)
        .link("x", "y")
        .user(ALICE, 1, &["x"], PpmConfig::default())
        .build();
    ppm.spawn_remote("x", ALICE, "y", "j", None, None)
        .expect("spawn");
    // Ask y's LPM for its status twice: directly (tool on y) and remotely
    // (tool on x, request relayed by the PPM). Identical answers.
    let from_y = ppm.status("y", ALICE, "y").expect("direct");
    let from_x = ppm.status("x", ALICE, "y").expect("via ppm");
    match (from_y, from_x) {
        (
            Reply::Status {
                host: h1,
                managed: m1,
                ccs: c1,
                ..
            },
            Reply::Status {
                host: h2,
                managed: m2,
                ccs: c2,
                ..
            },
        ) => {
            assert_eq!(h1, h2);
            assert_eq!(m1, m2);
            assert_eq!(c1, c2);
        }
        _ => panic!("status replies expected"),
    }
}
