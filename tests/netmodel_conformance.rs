//! Flat-wire conformance: the netmodel subsystem must be invisible
//! unless a topology is installed. Every digest pinned here was
//! captured with `ppm-sim --digest` on the tree as of the commit that
//! introduced the network model — if one of these assertions fires,
//! the flat wire law (the default) changed observable behaviour, which
//! breaks replayability of every previously published run.
//!
//! The routed half of the suite pins determinism, not bytes: the same
//! topology run twice must agree with itself, and full-mesh must
//! differ from flat only because it *prices* the same sends through
//! the model (install trace line + `net.*` metrics).

use ppm::digest::{fnv1a, hex};
use ppm::scenario::{self, ExecOptions};
use ppm::simnet::fault::FaultPlan;
use ppm::simnet::topology::NetSpec;

fn scenario_file(name: &str) -> String {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Mirrors `ppm-sim --digest` byte for byte: same parse (file seed),
/// same execution options, same digest chunks.
fn run_digest(text: &str, faults: Option<&str>, topo: Option<&NetSpec>) -> String {
    let sc = scenario::parse(text).expect("scenario parses");
    let plan = faults.map(|t| FaultPlan::parse(t).expect("fault plan parses"));
    let mut out = String::new();
    let opts = ExecOptions {
        spans: false,
        faults: plan.as_ref(),
        topology: topo,
    };
    let h = scenario::execute_with(&sc, &mut out, opts).expect("scenario executes");
    let trace = h.world().core().trace().render(None);
    let metrics = h.metrics_report();
    hex(fnv1a(&[&out, &trace, &metrics]))
}

#[test]
fn flat_digests_match_the_pre_netmodel_tree() {
    for (file, want) in [
        ("demo.ppm", "a29138298feb7ae8"),
        ("chaos.ppm", "a5c4d4b360ed2ad9"),
        ("chaos_dual.ppm", "1f131bfea46b15ee"),
        ("nameserver.ppm", "bbd21583aa5b23d5"),
    ] {
        let got = run_digest(&scenario_file(file), None, None);
        assert_eq!(got, want, "{file}: flat digest drifted");
    }
}

#[test]
fn flat_faulted_digest_matches_the_pre_netmodel_tree() {
    let got = run_digest(
        &scenario_file("chaos.ppm"),
        Some(&scenario_file("crash_heal.fault")),
        None,
    );
    assert_eq!(
        got, "6f6adf90ba841ece",
        "chaos.ppm + crash_heal.fault: flat digest drifted"
    );
}

#[test]
fn flat_chain_digest_matches_the_pre_netmodel_tree() {
    let text = scenario::chain_scenario(24);
    let got = run_digest(&text, None, None);
    assert_eq!(got, "24d16adf4dd8624b", "chain-24: flat digest drifted");
}

#[test]
fn routed_runs_are_deterministic_and_distinct_from_flat() {
    let text = scenario_file("chaos.ppm");
    let sc = scenario::parse(&text).expect("parses");
    let hosts: Vec<String> = sc.hosts.iter().map(|(n, _)| n.clone()).collect();
    for preset in NetSpec::PRESETS {
        let spec = NetSpec::preset(preset, &hosts).expect("preset builds");
        let first = run_digest(&text, None, Some(&spec));
        let second = run_digest(&text, None, Some(&spec));
        assert_eq!(first, second, "{preset}: routed digest not reproducible");
        assert_ne!(
            first, "a5c4d4b360ed2ad9",
            "{preset}: routed run unexpectedly byte-identical to flat \
             (install trace + net.* metrics should differ)"
        );
    }
}
