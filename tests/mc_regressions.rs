//! Model-checker counterexamples, pinned as regression tests.
//!
//! Each test replays the minimized schedule `ppm-mc` found for a bug
//! that has since been fixed, using description-directed moves (stable
//! against pick-index drift) and asserting the predicate that used to
//! fail. The exploration smoke tests at the bottom re-check the suites
//! at reduced debug-build budgets; CI runs the full budgets in release
//! mode (`mc-smoke`).

use ppm_mc::scenarios;
use ppm_mc::{apply_matching, assert_no_violation, explore, replay, replay_trace, Budget};
use ppm_runtime::signal::Signal;
use ppm_runtime::Pid;

/// The incarnation-fence bug (`exactly-once` suite). Minimized pre-fix
/// counterexample, 7 moves from the staged frontier:
///
/// ```text
/// 1. deliver msg forestpull -> lpm-100@b   (purges the dedup window)
/// 2. deliver msg req        -> lpm-100@b   (stale duplicate re-executes)
/// ...timers drain...
/// ```
///
/// Delivering the respawned origin's `ForestPull` *before* the wire
/// duplicate of an already-executed request purged the dedup entry that
/// would have absorbed the duplicate. The fence (`RpcTable::fence_origin`
/// before `purge_peer`) classifies the dead incarnation's correlation id
/// as `Stale`, so the duplicate is refused instead of re-executed.
#[test]
fn purge_before_late_retry_executes_exactly_once() {
    let s = scenarios::exactly_once();
    let mut w = (s.build)();
    // The bad ordering: purge first, then the stale duplicate.
    assert!(
        apply_matching(&mut w, "msg forestpull"),
        "staged world must hold the forest pull"
    );
    assert!(
        apply_matching(&mut w, "msg req -> lpm-100@b"),
        "staged world must hold the duplicated request"
    );
    assert!(
        (s.check_step)(&w).is_none(),
        "duplicate must not re-execute"
    );
    w.run_to_quiescence(20_000);
    let job = w.find_proc(1, "job").expect("job survives");
    assert_eq!(
        w.signal_count(1, Pid(job), Signal::Stop),
        1,
        "control op executed exactly once across the purge/retry race"
    );
}

/// The rebuild-never-finishes bug (`no-orphans` suite), found by the
/// checker in this crate's first run: `handle_forest_info` grafted the
/// recovered logical edges but left `rebuilding` set, waiting for a
/// *next* sibling connect that never comes when the only sibling channel
/// is already up. The fix clears the flag as soon as gossip explains
/// every failure root.
#[test]
fn forest_rebuild_completes_once_gossip_explains_roots() {
    let s = scenarios::no_orphans();
    let mut w = (s.build)();
    assert!(
        apply_matching(&mut w, "fault kill lpm-100@b"),
        "kill fault must be enabled"
    );
    w.run_to_quiescence(20_000);
    assert!(
        w.find_proc(1, "worker").is_some(),
        "worker survives its manager's crash"
    );
    for (k, l) in w.lpms() {
        assert_eq!(
            l.orphan_root_count(),
            0,
            "no orphan forest roots on {} after recovery",
            w.host_name(k.0)
        );
        assert!(
            !l.is_rebuilding(),
            "LPM on {} finished rebuilding without a second sibling connect",
            w.host_name(k.0)
        );
    }
}

/// The stale-route bug (`stale-route` suite): a next-hop learned through
/// `b` survives the a–b cut until the closed notice lands, and the
/// pre-fix send path forwarded into it (a route-cache hit on a dead
/// link, blackholing a retry cycle). The fixed path validates the hop
/// with `Sys::conn_alive` at send time, evicts it, and dials `c`
/// directly.
#[test]
fn cut_next_hop_is_evicted_not_used() {
    let s = scenarios::stale_route();
    let mut w = (s.build)();
    w.run_to_quiescence(20_000);
    for (k, l) in w.lpms() {
        if k.0 == 0 {
            assert_eq!(
                l.stats().route_cache_hits,
                0,
                "no forward into the cut a-b hop"
            );
        }
    }
    let job = w.find_proc(2, "job").expect("job survives");
    assert_eq!(
        w.signal_count(2, Pid(job), Signal::Stop),
        1,
        "control op reached c via the direct channel"
    );
}

/// Exploration must be deterministic: same scenario, same budget, same
/// visited-state digest — twice. Schedule replay must be deterministic
/// too (`ppm-mc --repro` relies on both).
#[test]
fn exploration_and_replay_are_deterministic() {
    let budget = Budget {
        max_depth: 30,
        max_states: 2_000,
    };
    let s = scenarios::exactly_once();
    let (first, v1) = explore(&s, budget);
    let (second, v2) = explore(&s, budget);
    assert!(v1.is_none() && v2.is_none());
    assert_eq!(first.digest, second.digest, "exploration digest stable");
    assert_eq!(first.states, second.states);
    assert_eq!(first.branch_points, second.branch_points);

    let picks: Vec<usize> = vec![1, 0, 2, 0, 1, 0, 0, 3, 0, 0];
    assert_eq!(
        replay(&s, &picks).digest(),
        replay(&s, &picks).digest(),
        "replaying a schedule reproduces the same world"
    );
    assert_eq!(replay_trace(&s, &picks), replay_trace(&s, &picks));
}

/// Every suite stays violation-free at a reduced debug-build budget.
/// The `exactly-once` suite exhausts completely even at this size; the
/// others are smoke-checked here and explored at full budget in CI.
#[test]
fn suites_stay_clean_at_smoke_budgets() {
    for name in scenarios::SUITES {
        let s = scenarios::by_name(name).expect("listed suite exists");
        let budget = Budget {
            max_depth: s.default_budget.max_depth.min(20),
            max_states: s.default_budget.max_states.min(1_500),
        };
        let stats = assert_no_violation(&s, budget);
        assert!(stats.states > 0, "{name} explored nothing");
    }
}
