//! Real-network end-to-end: the full PPM stack over loopback TCP.
//!
//! Three hosts, each a node thread with real sockets and the real clock,
//! run the *same* `ppm-core` daemons and tools as the simulation: inetd
//! brokers the pmd, the pmd spawns per-user LPMs, tools authenticate and
//! script requests. The scenario mirrors the simulation's
//! `killed_lpm_is_respawned_and_readopts_survivors` (fault_e2e): display,
//! remote execution and locate all work over real TCP, then the work LPM
//! is SIGKILLed out from under a live computation and the pmd respawn +
//! forest re-adoption path recovers it.
//!
//! Gated behind `#[ignore]` because it boots real listeners and sleeps
//! wall-clock time; run with `cargo test -p ppm-realos -- --ignored`
//! (the CI `real-smoke` job does).

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppm_core::auth::UserCred;
use ppm_core::client::{Tool, ToolOutcome, ToolStep};
use ppm_core::config::{PpmConfig, PMD_PORT, PMD_SERVICE};
use ppm_core::pmd::{Pmd, PmdOptions};
use ppm_core::users::{UserDirectory, UserEntry};
use ppm_proto::msg::{Op, Reply};
use ppm_proto::types::{Gpid, ProcRecord, WireProcState};
use ppm_realos::RealRuntime;
use ppm_runtime::ids::{CpuClass, HostId, Uid};
use ppm_runtime::program::SpawnSpec;
use ppm_runtime::rt::Runtime;
use ppm_runtime::signal::Signal;

const USER: Uid = Uid(100);
const SECRET: u64 = 0xFA017;

/// Per-tool wall-clock budget. Generous: the first tool pays for inetd →
/// pmd → LPM creation, and CI machines can be slow.
const TOOL_BUDGET: Duration = Duration::from_secs(30);

struct Cluster {
    rt: RealRuntime,
    users: Arc<UserDirectory>,
    home: HostId,
    work: HostId,
}

fn boot() -> Cluster {
    let mut users = UserDirectory::new();
    users.insert(UserEntry {
        cred: UserCred::new(USER, SECRET),
        recovery: vec!["home".into(), "work".into()],
        config: PpmConfig::fast_recovery(),
    });
    let users = users.into_shared();
    let pmd_users = Arc::clone(&users);
    let mut rt = RealRuntime::new();
    rt.register_service(
        PMD_SERVICE,
        PMD_PORT,
        Box::new(move |_host| {
            Box::new(Pmd::new(
                Arc::clone(&pmd_users),
                PMD_PORT,
                PmdOptions {
                    stable_storage: true,
                    respawn_lpms: true,
                },
            ))
        }),
    );
    let home = rt.add_host("home", CpuClass::Vax780);
    let work = rt.add_host("work", CpuClass::Sun2);
    let _far = rt.add_host("far", CpuClass::Sun2);
    Cluster {
        rt,
        users,
        home,
        work,
    }
}

/// Runs a tool script from `from`, waiting (wall clock) for completion.
fn run_tool(c: &mut Cluster, from: HostId, script: Vec<ToolStep>) -> ToolOutcome {
    let entry = c.users.get(USER).expect("registered user");
    let (tool, handle) = Tool::new(entry.cred, entry.config.clone(), script);
    c.rt.spawn_user(from, USER, SpawnSpec::new("ppm-tool", Box::new(tool)))
        .expect("spawn tool");
    let deadline = Instant::now() + TOOL_BUDGET;
    while Instant::now() < deadline {
        if handle.lock().unwrap().done {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let outcome = handle.lock().unwrap().clone();
    assert!(outcome.done, "tool timed out; error={:?}", outcome.error);
    outcome
}

/// Spawns `command` on `dest` from home, returning the new gpid.
fn spawn_remote(c: &mut Cluster, dest: &str, command: &str, logical_parent: Option<Gpid>) -> Gpid {
    let home = c.home;
    let out = run_tool(
        c,
        home,
        vec![ToolStep::new(
            dest,
            Op::Spawn {
                command: command.to_string(),
                logical_parent,
                lifetime_us: None,
                work_us: 0,
                cpu_bound: false,
            },
        )],
    );
    assert!(out.error.is_none(), "spawn failed: {:?}", out.error);
    match out.reply(0) {
        Some(Reply::Spawned { gpid }) => gpid.clone(),
        other => panic!("expected Spawned, got {other:?}"),
    }
}

/// A whole-computation snapshot (`"*"` broadcast) taken from home.
/// Partial results (a host's LPM down mid-sweep) are accepted — callers
/// poll until the view they need appears.
fn snapshot_all(c: &mut Cluster) -> Vec<ProcRecord> {
    let home = c.home;
    let out = run_tool(c, home, vec![ToolStep::new("*", Op::Snapshot)]);
    assert!(out.error.is_none(), "snapshot failed: {:?}", out.error);
    let reply = out.replies.into_iter().next().map(|(r, _)| r);
    let reply = match reply {
        Some(Reply::Partial { inner, .. }) => *inner,
        Some(other) => other,
        None => panic!("snapshot produced no reply"),
    };
    match reply {
        Reply::Snapshot { procs, .. } => procs,
        other => panic!("expected Snapshot, got {other:?}"),
    }
}

/// Adopted, live user processes on `host`: the forest's node set there.
fn forest_nodes(procs: &[ProcRecord], host: &str) -> BTreeSet<u32> {
    procs
        .iter()
        .filter(|p| p.gpid.host == host && p.adopted && p.state != WireProcState::Dead)
        .map(|p| p.gpid.pid)
        .collect()
}

/// Locate: the execution sites of the computation rooted at `root` — the
/// hosts running the root or any process whose logical parent is the root.
fn computation_sites(procs: &[ProcRecord], root: &Gpid) -> BTreeSet<String> {
    procs
        .iter()
        .filter(|p| p.state != WireProcState::Dead)
        .filter(|p| p.gpid == *root || p.logical_parent.as_ref() == Some(root))
        .map(|p| p.gpid.host.clone())
        .collect()
}

#[test]
#[ignore = "boots a real loopback TCP cluster; run with --ignored (CI real-smoke job)"]
fn real_cluster_display_locate_exec_and_lpm_crash_recovery() {
    let mut c = boot();

    // Remote execution: a computation rooted on home with three jobs on
    // work, spawned through home's LPM over real sockets. The first spawn
    // walks the whole Figure-2 chain (inetd → pmd → fresh LPM) twice —
    // once on home for the tool, once on work for the relay.
    let root = spawn_remote(&mut c, "home", "root", None);
    for i in 0..3 {
        spawn_remote(&mut c, "work", &format!("job-{i}"), Some(root.clone()));
    }

    // Display: the distributed snapshot gathers every managed process.
    let procs = snapshot_all(&mut c);
    let before = forest_nodes(&procs, "work");
    assert_eq!(
        before.len(),
        3,
        "three live managed jobs on work: {procs:?}"
    );
    assert_eq!(
        forest_nodes(&procs, "home").len(),
        1,
        "the root is managed on home"
    );

    // Locate: the computation executes on exactly {home, work}.
    let sites = computation_sites(&procs, &root);
    let expect: BTreeSet<String> = ["home", "work"].iter().map(|s| s.to_string()).collect();
    assert_eq!(sites, expect, "computation sites");

    // SIGKILL the work LPM out from under the live computation.
    let victim =
        c.rt.find_proc(c.work, USER, "lpm-")
            .expect("work has an LPM");
    c.rt.kill(c.work, Uid::ROOT, victim, Signal::Kill)
        .expect("kill LPM");

    // The pmd (the LPM's real parent) sees the unclean exit and respawns.
    let respawn_deadline = Instant::now() + Duration::from_secs(20);
    let respawned = loop {
        match c.rt.find_proc(c.work, USER, "lpm-") {
            Some(pid) if pid != victim => break pid,
            _ => {
                assert!(
                    Instant::now() < respawn_deadline,
                    "work LPM was not respawned within budget"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    assert_ne!(respawned, victim, "a fresh LPM process");

    // Re-adoption restores the forest node set on work. Poll: the new
    // LPM re-adopts from stable storage shortly after boot.
    let readopt_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let procs = snapshot_all(&mut c);
        if forest_nodes(&procs, "work") == before {
            break;
        }
        assert!(
            Instant::now() < readopt_deadline,
            "re-adoption did not restore the forest; last view: {procs:?}"
        );
        std::thread::sleep(Duration::from_millis(250));
    }

    // And the respawned LPM serves new requests.
    spawn_remote(&mut c, "work", "after", None);
}
