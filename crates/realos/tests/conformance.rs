//! Backend conformance: one suite of observation programs, run over both
//! the simulated runtime and the real loopback runtime through the
//! [`Runtime`] facade.
//!
//! The programs report what they observed through stable storage (the
//! facade's only introspection channel), so the assertions are identical
//! for both backends: message ordering over a connection, timer firing
//! and cancellation, deadline expiry against the backend clock, refused
//! connects, close notification, and child-exit plus kernel-event
//! delivery for adopted processes.

use bytes::Bytes;

use ppm_proto::kernel_wire::for_each_kernel_msg;
use ppm_runtime::events::{KernelEvent, TraceFlags};
use ppm_runtime::ids::{ConnId, CpuClass, HostId, Pid, Port, Uid};
use ppm_runtime::program::{ConnEvent, KernelMsg, Program, SpawnSpec, SysError};
use ppm_runtime::rt::Runtime;
use ppm_runtime::signal::ExitStatus;
use ppm_runtime::sys::Sys;
use ppm_runtime::time::{Micros, SimDuration};

const USER: Uid = Uid(100);
const ECHO_PORT: Port = Port(40);
const CLOSER_PORT: Port = Port(41);
const DEAD_PORT: Port = Port(99);

/// Polls a stable-storage key while letting the backend run.
fn wait_for<R: Runtime>(rt: &mut R, host: HostId, key: &str, budget_ms: u64) -> Option<Bytes> {
    let step = 20;
    let mut waited = 0;
    loop {
        if let Some(v) = rt.stable_get(host, key) {
            return Some(v);
        }
        if waited >= budget_ms {
            return None;
        }
        rt.run(SimDuration::from_millis(step));
        waited += step;
    }
}

/// Listens and echoes every message back on the same connection.
struct EchoServer {
    port: Port,
}

impl Program for EchoServer {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.listen(self.port).expect("echo port free");
    }

    fn on_message(&mut self, sys: &mut dyn Sys, conn: ConnId, data: Bytes) {
        let _ = sys.send(conn, data);
    }

    fn name(&self) -> &str {
        "echo-server"
    }
}

/// Connects to the echo server, sends three messages after establishment,
/// and records the concatenated echoes — proving per-connection FIFO
/// ordering end to end.
struct OrderClient {
    server: HostId,
    got: Vec<u8>,
}

impl Program for OrderClient {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.connect(self.server, ECHO_PORT).expect("connect starts");
    }

    fn on_conn_event(&mut self, sys: &mut dyn Sys, conn: ConnId, event: ConnEvent) {
        if event == ConnEvent::Established {
            for part in [&b"a"[..], b"b", b"c"] {
                let _ = sys.send(conn, Bytes::copy_from_slice(part));
            }
        }
    }

    fn on_message(&mut self, sys: &mut dyn Sys, _conn: ConnId, data: Bytes) {
        self.got.extend_from_slice(&data);
        if self.got.len() >= 3 {
            sys.stable_put("conf.order", Bytes::copy_from_slice(&self.got));
        }
    }

    fn name(&self) -> &str {
        "order-client"
    }
}

/// Arms three timers, cancels the middle one, and records the firing
/// order of the survivors.
struct TimerProg {
    fired: Vec<u64>,
}

impl Program for TimerProg {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.set_timer(SimDuration::from_millis(60), 1);
        let doomed = sys.set_timer(SimDuration::from_millis(40), 3);
        sys.set_timer(SimDuration::from_millis(20), 2);
        assert!(sys.cancel_timer(doomed), "pending timer cancels");
    }

    fn on_timer(&mut self, sys: &mut dyn Sys, token: u64) {
        self.fired.push(token);
        if self.fired.len() == 2 {
            let order = self
                .fired
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            sys.stable_put("conf.timers", order);
        }
    }

    fn name(&self) -> &str {
        "timer-prog"
    }
}

/// Arms a deadline and checks the backend clock actually reached it when
/// the timer fires.
struct DeadlineProg {
    armed_at: Micros,
}

impl Program for DeadlineProg {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        self.armed_at = sys.now();
        sys.set_timer(SimDuration::from_millis(25), 9);
    }

    fn on_timer(&mut self, sys: &mut dyn Sys, _token: u64) {
        let elapsed = sys.now().saturating_since(self.armed_at);
        let verdict: &[u8] = if elapsed.as_micros() >= 25_000 {
            b"expired"
        } else {
            b"early"
        };
        sys.stable_put("conf.deadline", Bytes::from_static(verdict));
    }

    fn name(&self) -> &str {
        "deadline-prog"
    }
}

/// Connects to a port nobody listens on and records the failure.
struct RefusedClient {
    server: HostId,
}

impl Program for RefusedClient {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.connect(self.server, DEAD_PORT).expect("connect starts");
    }

    fn on_conn_event(&mut self, sys: &mut dyn Sys, _conn: ConnId, event: ConnEvent) {
        if event == ConnEvent::Failed(SysError::ConnectionRefused) {
            sys.stable_put("conf.refused", Bytes::from_static(b"refused"));
        }
    }

    fn name(&self) -> &str {
        "refused-client"
    }
}

/// Accepts one connection and exits on the first message, so the peer
/// observes a close.
struct CloserServer;

impl Program for CloserServer {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.listen(CLOSER_PORT).expect("closer port free");
    }

    fn on_message(&mut self, sys: &mut dyn Sys, _conn: ConnId, _data: Bytes) {
        sys.exit(0);
    }

    fn name(&self) -> &str {
        "closer-server"
    }
}

/// Sends one message and records the close notification that follows the
/// server's exit.
struct CloseWatcher {
    server: HostId,
}

impl Program for CloseWatcher {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.connect(self.server, CLOSER_PORT)
            .expect("connect starts");
    }

    fn on_conn_event(&mut self, sys: &mut dyn Sys, conn: ConnId, event: ConnEvent) {
        match event {
            ConnEvent::Established => {
                let _ = sys.send(conn, Bytes::from_static(b"x"));
            }
            ConnEvent::Closed => {
                sys.stable_put("conf.closed", Bytes::from_static(b"closed"));
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "close-watcher"
    }
}

/// Exits with code 7 shortly after starting.
struct ShortChild;

impl Program for ShortChild {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.set_timer(SimDuration::from_millis(15), 1);
    }

    fn on_timer(&mut self, sys: &mut dyn Sys, _token: u64) {
        sys.exit(7);
    }

    fn name(&self) -> &str {
        "short-child"
    }
}

/// Spawns and adopts a child, then records both notification paths: the
/// parent's `on_child_exit` and the tracer's kernel Exit event.
struct ParentProg {
    child: Option<Pid>,
}

impl ParentProg {
    fn note_kernel(&mut self, sys: &mut dyn Sys, msg: KernelMsg) {
        if let KernelEvent::Exit {
            pid,
            status: ExitStatus::Code(code),
            ..
        } = msg.event
        {
            if Some(pid) == self.child {
                sys.stable_put("conf.kexit", format!("code:{code}"));
            }
        }
    }
}

impl Program for ParentProg {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.register_kernel_socket();
        let pid = sys
            .spawn(SpawnSpec::new("short-child", Box::new(ShortChild)))
            .expect("spawn child");
        sys.adopt(pid, TraceFlags::PROC).expect("adopt own child");
        self.child = Some(pid);
    }

    fn on_child_exit(&mut self, sys: &mut dyn Sys, child: Pid, status: ExitStatus) {
        if Some(child) == self.child && status == ExitStatus::Code(7) {
            sys.stable_put("conf.child", Bytes::from_static(b"code:7"));
        }
    }

    fn on_kernel_event(&mut self, sys: &mut dyn Sys, msg: KernelMsg) {
        self.note_kernel(sys, msg);
    }

    fn on_kernel_batch(&mut self, sys: &mut dyn Sys, data: Bytes) {
        let mut msgs = Vec::new();
        for_each_kernel_msg(&data, |m| msgs.push(m));
        for msg in msgs {
            self.note_kernel(sys, msg);
        }
    }

    fn name(&self) -> &str {
        "parent-prog"
    }
}

/// Runs the whole suite against one backend.
fn conformance_suite<R: Runtime>(rt: &mut R) {
    let alpha = rt.add_host("alpha", CpuClass::Vax780);
    let beta = rt.add_host("beta", CpuClass::Vax780);

    // Servers first; give them time to bind.
    rt.spawn_user(
        beta,
        USER,
        SpawnSpec::new("echo-server", Box::new(EchoServer { port: ECHO_PORT })),
    )
    .expect("spawn echo server");
    rt.spawn_user(
        beta,
        USER,
        SpawnSpec::new("closer-server", Box::new(CloserServer)),
    )
    .expect("spawn closer server");
    rt.run(SimDuration::from_millis(120));

    rt.spawn_user(
        alpha,
        USER,
        SpawnSpec::new(
            "order-client",
            Box::new(OrderClient {
                server: beta,
                got: Vec::new(),
            }),
        ),
    )
    .expect("spawn order client");
    rt.spawn_user(
        alpha,
        USER,
        SpawnSpec::new("timer-prog", Box::new(TimerProg { fired: Vec::new() })),
    )
    .expect("spawn timer prog");
    rt.spawn_user(
        alpha,
        USER,
        SpawnSpec::new(
            "deadline-prog",
            Box::new(DeadlineProg {
                armed_at: Micros::ZERO,
            }),
        ),
    )
    .expect("spawn deadline prog");
    rt.spawn_user(
        alpha,
        USER,
        SpawnSpec::new("refused-client", Box::new(RefusedClient { server: beta })),
    )
    .expect("spawn refused client");
    rt.spawn_user(
        alpha,
        USER,
        SpawnSpec::new("close-watcher", Box::new(CloseWatcher { server: beta })),
    )
    .expect("spawn close watcher");
    let parent = rt
        .spawn_user(
            beta,
            USER,
            SpawnSpec::new("parent-prog", Box::new(ParentProg { child: None })),
        )
        .expect("spawn parent");

    let budget = 5_000;
    assert_eq!(
        wait_for(rt, alpha, "conf.order", budget).as_deref(),
        Some(&b"abc"[..]),
        "echoed messages arrive in send order"
    );
    assert_eq!(
        wait_for(rt, alpha, "conf.timers", budget).as_deref(),
        Some(&b"2,1"[..]),
        "timers fire shortest-delay first and cancelled timers never fire"
    );
    assert_eq!(
        wait_for(rt, alpha, "conf.deadline", budget).as_deref(),
        Some(&b"expired"[..]),
        "a timer never fires before its deadline on the backend clock"
    );
    assert_eq!(
        wait_for(rt, alpha, "conf.refused", budget).as_deref(),
        Some(&b"refused"[..]),
        "connecting to an unbound port reports ConnectionRefused"
    );
    assert_eq!(
        wait_for(rt, alpha, "conf.closed", budget).as_deref(),
        Some(&b"closed"[..]),
        "a peer exit surfaces as a Closed event"
    );
    assert_eq!(
        wait_for(rt, beta, "conf.child", budget).as_deref(),
        Some(&b"code:7"[..]),
        "the parent hears its child's exit status"
    );
    assert_eq!(
        wait_for(rt, beta, "conf.kexit", budget).as_deref(),
        Some(&b"code:7"[..]),
        "the tracer receives the kernel Exit event for an adopted child"
    );
    assert!(rt.is_alive(beta, parent), "the parent program is still up");
    assert!(rt.now() > Micros::ZERO, "the backend clock advanced");
}

#[test]
fn sim_backend_conforms() {
    let mut rt = ppm_simos::rt::SimRuntime::new(0xC0FFEE);
    conformance_suite(&mut rt);
}

#[test]
fn real_backend_conforms() {
    let mut rt = ppm_realos::RealRuntime::new();
    conformance_suite(&mut rt);
}
