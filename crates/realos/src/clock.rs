//! Real time as [`Micros`]: microseconds since the cluster epoch.
//!
//! All nodes of one [`crate::rt::RealRuntime`] share the epoch (the
//! instant the runtime was created), so timestamps exchanged over the
//! wire — RPC deadlines, kernel event `queued_at` stamps — are directly
//! comparable across nodes, exactly as simulated time is in the other
//! backend. On one machine there is no clock skew to model.

use std::time::Instant;

use ppm_runtime::time::Micros;

/// A monotonic clock counting from a shared epoch.
#[derive(Debug, Clone, Copy)]
pub struct ClusterClock {
    epoch: Instant,
}

impl ClusterClock {
    /// A clock whose zero is `epoch`.
    pub fn new(epoch: Instant) -> Self {
        ClusterClock { epoch }
    }

    /// A clock starting now.
    pub fn starting_now() -> Self {
        ClusterClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the epoch.
    pub fn now(&self) -> Micros {
        Micros::from_micros(self.epoch.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_shared() {
        let c = ClusterClock::starting_now();
        let d = c; // copy shares the epoch
        let a = c.now();
        let b = d.now();
        assert!(b >= a);
    }
}
