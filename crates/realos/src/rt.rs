//! [`RealRuntime`] — the real backend behind the
//! [`ppm_runtime::rt::Runtime`] facade.
//!
//! One OS process hosts a whole cluster: each `add_host` boots a node
//! thread (see [`crate::node`]) with its own kernel table, programs, and
//! timer heap, and all nodes share loopback TCP, a monotonic clock epoch,
//! the logical→real port map, and the service registry inetd draws from.
//! The driver talks to nodes only through their event queues — queries
//! (`is_alive`, `stable_get`) travel as events with reply channels, so
//! node state needs no cross-thread locking.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;

use ppm_runtime::ids::{CpuClass, HostId, Pid, Port, Uid};
use ppm_runtime::obs::SharedRegistry;
use ppm_runtime::program::{Program, SpawnSpec, SysError};
use ppm_runtime::rt::Runtime;
use ppm_runtime::signal::Signal;
use ppm_runtime::time::{Micros, SimDuration};

use crate::clock::ClusterClock;
use crate::net::PortMap;
use crate::node::{NodeCore, NodeEvent};

/// Builds a service program instance for a host, on demand. `Send + Sync`
/// because any node thread's inetd may ask for it.
pub type ServiceFactory = Box<dyn Fn(HostId) -> Box<dyn Program> + Send + Sync>;

/// How long driver queries wait for a node thread to answer before the
/// node is presumed wedged.
const QUERY_TIMEOUT: Duration = Duration::from_secs(10);

/// State shared by every node of one real cluster.
pub struct ClusterShared {
    /// The cluster clock epoch; all node clocks count from it.
    pub epoch: Instant,
    /// Host names and CPU classes, indexed by `HostId`.
    pub hosts: RwLock<Vec<(String, CpuClass)>>,
    /// Logical `(host, port)` → real loopback TCP port.
    pub ports: PortMap,
    /// Set once at teardown; acceptor threads exit when they see it.
    pub shutdown: Arc<AtomicBool>,
    /// Metrics registries published by programs (`register_metrics`),
    /// labelled, latest registration per label winning.
    pub obs: Mutex<Vec<(String, SharedRegistry)>>,
    /// Mirrors the simulation's trace switch; entries go to stderr.
    pub trace_enabled: bool,
    services: Mutex<HashMap<String, (Port, ServiceFactory)>>,
}

impl ClusterShared {
    fn new(trace_enabled: bool) -> Self {
        ClusterShared {
            epoch: Instant::now(),
            hosts: RwLock::new(Vec::new()),
            ports: Arc::new(Mutex::new(HashMap::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
            obs: Mutex::new(Vec::new()),
            trace_enabled,
            services: Mutex::new(HashMap::new()),
        }
    }

    /// The well-known port of a registered service.
    pub fn service_port(&self, name: &str) -> Option<Port> {
        self.services.lock().unwrap().get(name).map(|(p, _)| *p)
    }

    /// Instantiates a registered service's program for `host`.
    pub fn make_service(&self, name: &str, host: HostId) -> Option<(Port, Box<dyn Program>)> {
        let services = self.services.lock().unwrap();
        let (port, factory) = services.get(name)?;
        Some((*port, factory(host)))
    }
}

struct NodeHandle {
    tx: Sender<NodeEvent>,
    join: Option<JoinHandle<()>>,
}

/// A real loopback cluster, seen through the backend facade.
pub struct RealRuntime {
    shared: Arc<ClusterShared>,
    clock: ClusterClock,
    nodes: Vec<NodeHandle>,
}

impl Default for RealRuntime {
    fn default() -> Self {
        RealRuntime::new()
    }
}

impl RealRuntime {
    /// A fresh cluster with no hosts. Tracing to stderr switches on when
    /// the `PPM_REAL_TRACE` environment variable is set.
    pub fn new() -> Self {
        RealRuntime::with_trace(std::env::var_os("PPM_REAL_TRACE").is_some())
    }

    /// A fresh cluster with tracing explicitly on or off.
    pub fn with_trace(trace_enabled: bool) -> Self {
        let shared = Arc::new(ClusterShared::new(trace_enabled));
        let clock = ClusterClock::new(shared.epoch);
        RealRuntime {
            shared,
            clock,
            nodes: Vec::new(),
        }
    }

    /// The shared cluster state (metrics registries, port map).
    pub fn shared(&self) -> &Arc<ClusterShared> {
        &self.shared
    }

    /// Registers a service with inetd's registry on every host, as the
    /// simulation's `World::register_service` does. Call before spawning
    /// anything that asks inetd for `name`.
    pub fn register_service(&mut self, name: &str, port: Port, factory: ServiceFactory) {
        self.shared
            .services
            .lock()
            .unwrap()
            .insert(name.to_string(), (port, factory));
    }

    /// Sends a signal to a process with `from`'s credentials — the
    /// harness-side `kill(1)`, used by tests to SIGKILL an LPM.
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchProcess`], [`SysError::PermissionDenied`], or
    /// [`SysError::HostDown`] when the node cannot be reached.
    pub fn kill(
        &self,
        host: HostId,
        from: Uid,
        target: Pid,
        signal: Signal,
    ) -> Result<(), SysError> {
        self.query(host, |reply| NodeEvent::PostSignal {
            from,
            target,
            signal,
            reply: Some(reply),
        })
        .unwrap_or(Err(SysError::HostDown))
    }

    /// Finds `uid`'s live process on `host` whose command starts with
    /// `prefix` — enough for tests to locate a user's LPM or pmd.
    pub fn find_proc(&self, host: HostId, uid: Uid, prefix: &str) -> Option<Pid> {
        self.query(host, |reply| NodeEvent::FindProc {
            uid,
            prefix: prefix.to_string(),
            reply,
        })
        .flatten()
    }

    fn query<T: Send + 'static>(
        &self,
        host: HostId,
        make: impl FnOnce(Sender<T>) -> NodeEvent,
    ) -> Option<T> {
        let node = self.nodes.get(host.0 as usize)?;
        let (tx, rx) = mpsc::channel();
        node.tx.send(make(tx)).ok()?;
        rx.recv_timeout(QUERY_TIMEOUT).ok()
    }
}

impl Runtime for RealRuntime {
    fn add_host(&mut self, name: &str, cpu: CpuClass) -> HostId {
        let id = {
            let mut hosts = self.shared.hosts.write().unwrap();
            let id = HostId(hosts.len() as u32);
            hosts.push((name.to_string(), cpu));
            id
        };
        let (tx, rx) = mpsc::channel();
        let core = NodeCore::new(
            id,
            name.to_string(),
            cpu,
            Arc::clone(&self.shared),
            tx.clone(),
        );
        let join = std::thread::Builder::new()
            .name(format!("ppm-node-{name}"))
            .spawn(move || core.run(rx))
            .expect("spawn node thread");
        self.nodes.push(NodeHandle {
            tx,
            join: Some(join),
        });
        id
    }

    fn spawn_user(&mut self, host: HostId, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError> {
        self.query(host, |reply| NodeEvent::SpawnUser { uid, spec, reply })
            .unwrap_or(Err(SysError::HostDown))
    }

    fn run(&mut self, span: SimDuration) {
        // The node threads are already running; letting the world "run"
        // is simply letting wall-clock time pass.
        std::thread::sleep(Duration::from_micros(span.as_micros()));
    }

    fn is_alive(&self, host: HostId, pid: Pid) -> bool {
        self.query(host, |reply| NodeEvent::IsAlive { pid, reply })
            .unwrap_or(false)
    }

    fn stable_get(&self, host: HostId, key: &str) -> Option<Bytes> {
        self.query(host, |reply| NodeEvent::StableGet {
            key: key.to_string(),
            reply,
        })
        .flatten()
    }

    fn now(&self) -> Micros {
        self.clock.now()
    }
}

impl Drop for RealRuntime {
    fn drop(&mut self) {
        // Order matters: raise the shutdown flag first so acceptor loops
        // stop, then stop the node loops (their teardown closes streams,
        // which unblocks reader threads), then join.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for node in &self.nodes {
            let _ = node.tx.send(NodeEvent::Shutdown);
        }
        for node in &mut self.nodes {
            if let Some(join) = node.join.take() {
                let _ = join.join();
            }
        }
    }
}
