//! `ppm-realos` — the real backend of the PPM's runtime split.
//!
//! The same protocol stack (`ppm-core`'s LPM, pmd, RPC and tools) runs
//! against two implementations of [`ppm_runtime::sys::Sys`]: the
//! deterministic discrete-event simulation (`ppm-simos`) and this crate,
//! where
//!
//! * **time** is the machine's monotonic clock, counted in microseconds
//!   from a shared cluster epoch ([`clock::ClusterClock`]);
//! * **the network** is loopback TCP, one framed stream per logical
//!   connection, with logical well-known ports mapped to real ephemeral
//!   ports ([`net`]);
//! * **hosts** are node threads inside one OS process, each with its own
//!   kernel process table, program set and timer heap ([`node`]); and
//! * **workers** are in-process program actors, same as the simulation —
//!   the paper's tools, daemons and computations, driven by real sockets
//!   instead of simulated events.
//!
//! [`rt::RealRuntime`] assembles a cluster behind the backend facade
//! ([`ppm_runtime::rt::Runtime`]), so harnesses and the conformance
//! suite drive either backend through one interface.

pub mod clock;
pub mod net;
pub mod node;
pub mod rt;

pub use rt::{ClusterShared, RealRuntime, ServiceFactory};
