//! Loopback TCP plumbing: framing, the connect preamble, and the
//! acceptor / connector / reader threads that feed a node's event queue.
//!
//! The simulated network delivers each `send` as one message; TCP is a
//! byte stream, so every message travels as a `[u32 len][payload]` frame
//! and the reader thread restores message boundaries before handing
//! bytes to the node. A connecting client sends a fixed preamble first
//! (magic, source host, source pid, destination logical port) so the
//! accepting node can report the paper's `<host, pid>` peer identity in
//! [`ppm_runtime::program::ConnEvent::Accepted`].
//!
//! Logical well-known ports (inetd = 1, pmd, per-uid LPM ports) map to
//! ephemeral real ports through the cluster port map: `listen` binds
//! `127.0.0.1:0` and publishes the real port under `(host, logical)`.
//! A listener that dies is unpublished, so connects are refused until a
//! respawn re-binds — the behaviour the LPM-creation chain of Figure 2
//! and the crash-recovery path both rely on.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;

use ppm_runtime::ids::{HostId, Pid, Port};
use ppm_runtime::program::SysError;

use crate::node::NodeEvent;

/// Frame/preamble magic: "PPMR".
pub const MAGIC: u32 = 0x5050_4D52;

/// Maximum accepted frame size (a guard against corrupt length words).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Shared map from `(host, logical port)` to the real loopback TCP port.
pub type PortMap = Arc<Mutex<HashMap<(HostId, Port), u16>>>;

/// Writes the connect preamble.
pub fn write_preamble(
    stream: &mut TcpStream,
    src_host: HostId,
    src_pid: Pid,
    dst_port: Port,
) -> std::io::Result<()> {
    let mut buf = [0u8; 14];
    buf[0..4].copy_from_slice(&MAGIC.to_be_bytes());
    buf[4..8].copy_from_slice(&src_host.0.to_be_bytes());
    buf[8..12].copy_from_slice(&src_pid.0.to_be_bytes());
    buf[12..14].copy_from_slice(&dst_port.0.to_be_bytes());
    stream.write_all(&buf)
}

/// Reads and validates the connect preamble.
pub fn read_preamble(stream: &mut TcpStream) -> std::io::Result<(HostId, Pid, Port)> {
    let mut buf = [0u8; 14];
    stream.read_exact(&mut buf)?;
    let magic = u32::from_be_bytes(buf[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad preamble magic",
        ));
    }
    let host = HostId(u32::from_be_bytes(buf[4..8].try_into().unwrap()));
    let pid = Pid(u32::from_be_bytes(buf[8..12].try_into().unwrap()));
    let port = Port(u16::from_be_bytes(buf[12..14].try_into().unwrap()));
    Ok((host, pid, port))
}

/// Writes one length-prefixed frame.
pub fn write_frame(stream: &mut TcpStream, data: &[u8]) -> std::io::Result<()> {
    let len = (data.len() as u32).to_be_bytes();
    stream.write_all(&len)?;
    stream.write_all(data)
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean EOF at a frame
/// boundary.
pub fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Bytes>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "oversized frame",
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    Ok(Some(Bytes::from(buf)))
}

/// Spawns the per-connection reader thread: turns the byte stream back
/// into framed messages and forwards them to the owning node's queue.
pub fn spawn_reader(conn: ppm_runtime::ids::ConnId, mut stream: TcpStream, tx: Sender<NodeEvent>) {
    std::thread::Builder::new()
        .name(format!("ppm-reader-{}", conn.0))
        .spawn(move || loop {
            match read_frame(&mut stream) {
                Ok(Some(data)) => {
                    if tx.send(NodeEvent::Incoming { conn, data }).is_err() {
                        return;
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = tx.send(NodeEvent::PeerClosed { conn });
                    return;
                }
            }
        })
        .expect("spawn reader thread");
}

/// Spawns the per-listener acceptor thread. Polls non-blockingly so a
/// dead listener (owner exited) or a cluster shutdown lets the thread
/// exit instead of pinning the process in `accept`.
pub fn spawn_acceptor(
    listener: TcpListener,
    port: Port,
    alive: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    tx: Sender<NodeEvent>,
) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    std::thread::Builder::new()
        .name(format!("ppm-accept-{}", port.0))
        .spawn(move || loop {
            if !alive.load(Ordering::SeqCst) || shutdown.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false).ok();
                    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
                    let Ok((peer_host, peer_pid, dst_port)) = read_preamble(&mut stream) else {
                        continue; // not one of ours; drop it
                    };
                    stream.set_read_timeout(None).ok();
                    if dst_port != port {
                        continue; // stale connect to a re-used real port
                    }
                    if tx
                        .send(NodeEvent::AcceptedConn {
                            port,
                            peer: (peer_host, peer_pid),
                            stream,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return,
            }
        })
        .expect("spawn acceptor thread");
}

/// Spawns the connector thread for one outbound connection attempt.
///
/// Resolution and TCP connect are retried briefly (the listener may be
/// rebinding mid-respawn); a target with no published listener reports
/// [`SysError::ConnectionRefused`], which clients treat like a TCP RST
/// and retry at the protocol layer.
pub fn spawn_connector(
    conn: ppm_runtime::ids::ConnId,
    src: (HostId, Pid),
    dst: (HostId, Port),
    ports: PortMap,
    tx: Sender<NodeEvent>,
) {
    std::thread::Builder::new()
        .name(format!("ppm-connect-{}", conn.0))
        .spawn(move || {
            for attempt in 0..4 {
                if attempt > 0 {
                    std::thread::sleep(Duration::from_millis(10 * attempt));
                }
                let real = ports.lock().unwrap().get(&dst).copied();
                let Some(real) = real else { continue };
                match TcpStream::connect(("127.0.0.1", real)) {
                    Ok(mut stream) => {
                        stream.set_nodelay(true).ok();
                        if write_preamble(&mut stream, src.0, src.1, dst.1).is_err() {
                            continue;
                        }
                        let _ = tx.send(NodeEvent::ConnUp { conn, stream });
                        return;
                    }
                    Err(_) => continue,
                }
            }
            let _ = tx.send(NodeEvent::ConnFail {
                conn,
                error: SysError::ConnectionRefused,
            });
        })
        .expect("spawn connector thread");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let pre = read_preamble(&mut s).unwrap();
            assert_eq!(pre, (HostId(3), Pid(9), Port(42)));
            let f = read_frame(&mut s).unwrap().unwrap();
            assert_eq!(&f[..], b"hello");
            assert!(read_frame(&mut s).unwrap().is_none(), "clean EOF");
        });
        let mut c = TcpStream::connect(addr).unwrap();
        write_preamble(&mut c, HostId(3), Pid(9), Port(42)).unwrap();
        write_frame(&mut c, b"hello").unwrap();
        drop(c);
        t.join().unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            assert!(read_preamble(&mut s).is_err());
        });
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(&[0u8; 14]).unwrap();
        t.join().unwrap();
    }
}
