//! One real node: an event-loop thread driving the same [`Program`]
//! actors as the simulated kernel, over real sockets and a real clock.
//!
//! A node is the real-backend analogue of one simulated host. It owns a
//! [`Kernel`] process table (shared with the sim backend — adoption,
//! descendant tracing and exit bookkeeping are identical by
//! construction), a map of live programs, its stream connections and
//! listeners, stable storage, and a timer heap. The loop blocks on its
//! event queue with `recv_timeout` against the next timer deadline, so
//! timers fire without a dedicated timer thread.
//!
//! Programs run to completion on the node thread, one callback at a
//! time — the same run-to-completion discipline the simulation enforces
//! globally, here enforced per node (nodes run concurrently, which is
//! exactly the concurrency the real system of the paper had between
//! hosts). Syscalls made during a callback that must re-enter a program
//! (spawn → `on_start`, kill → signal delivery, kernel event batches)
//! are queued as deferred actions and drained after the callback
//! returns, mirroring how the simulated world schedules follow-on
//! events.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use ppm_runtime::events::{KernelEvent, TraceFlags};
use ppm_runtime::fd::{FdKind, OpenMode};
use ppm_runtime::ids::{ConnId, CpuClass, Fd, HostId, Pid, Port, Uid};
use ppm_runtime::kernel::Kernel;
use ppm_runtime::obs::{SharedRegistry, SpanPhase};
use ppm_runtime::process::{ProcInfo, ProcState, Process, Rusage};
use ppm_runtime::program::{ConnEvent, KernelMsg, Program, SigAction, SpawnSpec, SysError};
use ppm_runtime::signal::{ExitStatus, Signal};
use ppm_runtime::sys::{Clock, Spawner, TimerDriver, TimerHandle, Transport};
use ppm_runtime::time::{Micros, SimDuration};
use ppm_runtime::trace::TraceCategory;

use crate::clock::ClusterClock;
use crate::net;
use crate::rt::ClusterShared;

/// Events arriving on a node's queue — from its own I/O threads, from
/// peers' streams, and from the [`crate::rt::RealRuntime`] driver.
pub enum NodeEvent {
    /// A framed message arrived on an established connection.
    Incoming {
        /// Local connection id.
        conn: ConnId,
        /// The frame payload.
        data: Bytes,
    },
    /// An outbound connect completed; the stream is live.
    ConnUp {
        /// Local connection id.
        conn: ConnId,
        /// The connected stream.
        stream: TcpStream,
    },
    /// An outbound connect failed.
    ConnFail {
        /// Local connection id.
        conn: ConnId,
        /// Why.
        error: SysError,
    },
    /// The remote end closed (EOF or error on the stream).
    PeerClosed {
        /// Local connection id.
        conn: ConnId,
    },
    /// The acceptor took a new inbound connection on `port`.
    AcceptedConn {
        /// The logical port accepted on.
        port: Port,
        /// The connecting `<host, pid>`.
        peer: (HostId, Pid),
        /// The accepted stream (preamble already consumed).
        stream: TcpStream,
    },
    /// Driver: spawn a user process (the facade's `spawn_user`).
    SpawnUser {
        /// Owner.
        uid: Uid,
        /// What to run.
        spec: SpawnSpec,
        /// Reply channel.
        reply: Sender<Result<Pid, SysError>>,
    },
    /// Driver: post a signal with `from`'s credentials.
    PostSignal {
        /// Sender's uid (permission check).
        from: Uid,
        /// Target pid on this node.
        target: Pid,
        /// The signal.
        signal: Signal,
        /// Optional reply channel.
        reply: Option<Sender<Result<(), SysError>>>,
    },
    /// Driver: is this pid alive?
    IsAlive {
        /// The pid.
        pid: Pid,
        /// Reply channel.
        reply: Sender<bool>,
    },
    /// Driver: find `uid`'s live process whose command starts with a
    /// prefix (how tests locate a user's LPM without sim introspection).
    FindProc {
        /// Owner to search under.
        uid: Uid,
        /// Command-name prefix.
        prefix: String,
        /// Reply channel.
        reply: Sender<Option<Pid>>,
    },
    /// Driver: read a stable-storage record.
    StableGet {
        /// The key.
        key: String,
        /// Reply channel.
        reply: Sender<Option<Bytes>>,
    },
    /// Driver: stop the node loop and tear down sockets.
    Shutdown,
}

/// Work queued during a program callback, run after it returns.
enum Deferred {
    Start(Pid),
    ConnEvt {
        owner: Pid,
        conn: ConnId,
        event: ConnEvent,
    },
    Deliver {
        owner: Pid,
        conn: ConnId,
        data: Bytes,
    },
    ChildExit {
        parent: Pid,
        child: Pid,
        status: ExitStatus,
    },
    KernelFlush {
        tracer: Pid,
    },
    Signal {
        target: Pid,
        signal: Signal,
    },
}

enum RConnState {
    /// Connector thread still working; sends are queued.
    Connecting { queued: Vec<Bytes> },
    /// Stream live; sends write through.
    Up { stream: TcpStream },
    /// Closed by either side.
    Closed,
}

struct RConn {
    owner: Pid,
    state: RConnState,
}

struct RListener {
    owner: Pid,
    alive: Arc<AtomicBool>,
}

/// The state owned by one node's event-loop thread.
pub struct NodeCore {
    host: HostId,
    name: String,
    cpu: CpuClass,
    clock: ClusterClock,
    cluster: Arc<ClusterShared>,
    tx: Sender<NodeEvent>,
    kernel: Kernel,
    programs: HashMap<Pid, Box<dyn Program>>,
    conns: HashMap<ConnId, RConn>,
    next_conn: u64,
    listeners: HashMap<Port, RListener>,
    services: HashMap<String, Pid>,
    stable: HashMap<String, Bytes>,
    pending_kernel: HashMap<Pid, Vec<KernelMsg>>,
    actions: VecDeque<Deferred>,
    timer_heap: BinaryHeap<Reverse<(u64, u64)>>,
    timer_entries: HashMap<u64, (Pid, u64)>,
    next_timer: u64,
    rng: u64,
}

impl NodeCore {
    /// Creates a node and queues its boot daemon (inetd) for start.
    pub fn new(
        host: HostId,
        name: String,
        cpu: CpuClass,
        cluster: Arc<ClusterShared>,
        tx: Sender<NodeEvent>,
    ) -> Self {
        let clock = ClusterClock::new(cluster.epoch);
        let mut node = NodeCore {
            host,
            name,
            cpu,
            clock,
            cluster,
            tx,
            kernel: Kernel::new(Micros::ZERO),
            programs: HashMap::new(),
            conns: HashMap::new(),
            next_conn: 1,
            listeners: HashMap::new(),
            services: HashMap::new(),
            stable: HashMap::new(),
            pending_kernel: HashMap::new(),
            actions: VecDeque::new(),
            timer_heap: BinaryHeap::new(),
            timer_entries: HashMap::new(),
            next_timer: 1,
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((host.0 as u64) << 17 | 1),
        };
        let inetd = SpawnSpec::new("inetd", Box::new(ppm_runtime::inetd::Inetd::new()));
        node.spawn_proc(Pid::INIT, Uid::ROOT, inetd)
            .expect("boot inetd");
        node
    }

    /// Runs the node loop until shutdown or the driver hangs up.
    pub fn run(mut self, rx: Receiver<NodeEvent>) {
        loop {
            self.drain();
            let ev = match self.next_timer_wait() {
                Some(wait) => match rx.recv_timeout(wait) {
                    Ok(ev) => Some(ev),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                },
                None => match rx.recv() {
                    Ok(ev) => Some(ev),
                    Err(_) => break,
                },
            };
            match ev {
                Some(NodeEvent::Shutdown) => break,
                Some(ev) => self.handle(ev),
                None => self.fire_due_timers(),
            }
        }
        self.teardown();
    }

    fn handle(&mut self, ev: NodeEvent) {
        match ev {
            NodeEvent::Incoming { conn, data } => {
                let Some(c) = self.conns.get(&conn) else {
                    return;
                };
                if matches!(c.state, RConnState::Closed) {
                    return;
                }
                let owner = c.owner;
                self.account_received(owner, data.len());
                self.actions
                    .push_back(Deferred::Deliver { owner, conn, data });
            }
            NodeEvent::ConnUp { conn, stream } => {
                stream.set_nodelay(true).ok();
                let Some(c) = self.conns.get_mut(&conn) else {
                    return;
                };
                let owner = c.owner;
                let queued = match &mut c.state {
                    RConnState::Connecting { queued } => std::mem::take(queued),
                    _ => return,
                };
                let mut writer = stream.try_clone().expect("clone stream");
                net::spawn_reader(conn, stream, self.tx.clone());
                let mut broke = false;
                for frame in &queued {
                    if net::write_frame(&mut writer, frame).is_err() {
                        broke = true;
                        break;
                    }
                }
                if broke {
                    c.state = RConnState::Closed;
                    self.actions.push_back(Deferred::ConnEvt {
                        owner,
                        conn,
                        event: ConnEvent::Closed,
                    });
                    return;
                }
                c.state = RConnState::Up { stream: writer };
                self.actions.push_back(Deferred::ConnEvt {
                    owner,
                    conn,
                    event: ConnEvent::Established,
                });
            }
            NodeEvent::ConnFail { conn, error } => {
                let Some(c) = self.conns.get_mut(&conn) else {
                    return;
                };
                let owner = c.owner;
                c.state = RConnState::Closed;
                self.actions.push_back(Deferred::ConnEvt {
                    owner,
                    conn,
                    event: ConnEvent::Failed(error),
                });
            }
            NodeEvent::PeerClosed { conn } => {
                let Some(c) = self.conns.get_mut(&conn) else {
                    return;
                };
                if matches!(c.state, RConnState::Closed) {
                    return;
                }
                let owner = c.owner;
                c.state = RConnState::Closed;
                self.actions.push_back(Deferred::ConnEvt {
                    owner,
                    conn,
                    event: ConnEvent::Closed,
                });
            }
            NodeEvent::AcceptedConn { port, peer, stream } => {
                let Some(l) = self.listeners.get(&port) else {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                };
                let owner = l.owner;
                if !self.is_alive(owner) {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
                let conn = self.alloc_conn();
                let writer = stream.try_clone().expect("clone stream");
                net::spawn_reader(conn, stream, self.tx.clone());
                self.conns.insert(
                    conn,
                    RConn {
                        owner,
                        state: RConnState::Up { stream: writer },
                    },
                );
                if let Ok(p) = self.kernel.live_mut(owner) {
                    p.fds.alloc(FdKind::Socket { conn });
                }
                self.actions.push_back(Deferred::ConnEvt {
                    owner,
                    conn,
                    event: ConnEvent::Accepted { peer, port },
                });
            }
            NodeEvent::SpawnUser { uid, spec, reply } => {
                let _ = reply.send(self.spawn_proc(Pid::INIT, uid, spec));
            }
            NodeEvent::PostSignal {
                from,
                target,
                signal,
                reply,
            } => {
                let res = self.post_signal(from, target, signal);
                if let Some(reply) = reply {
                    let _ = reply.send(res);
                }
            }
            NodeEvent::IsAlive { pid, reply } => {
                let _ = reply.send(self.is_alive(pid));
            }
            NodeEvent::FindProc { uid, prefix, reply } => {
                let found = self
                    .kernel
                    .user_processes(uid)
                    .into_iter()
                    .find(|p| p.command.starts_with(&prefix))
                    .map(|p| p.pid);
                let _ = reply.send(found);
            }
            NodeEvent::StableGet { key, reply } => {
                let _ = reply.send(self.stable.get(&key).cloned());
            }
            NodeEvent::Shutdown => unreachable!("handled by the loop"),
        }
    }

    // ---- time and timers -------------------------------------------------

    fn now(&self) -> Micros {
        self.clock.now()
    }

    fn next_timer_wait(&mut self) -> Option<Duration> {
        loop {
            let &Reverse((deadline, seq)) = self.timer_heap.peek()?;
            if !self.timer_entries.contains_key(&seq) {
                self.timer_heap.pop(); // cancelled; discard lazily
                continue;
            }
            let now = self.now().as_micros();
            return Some(Duration::from_micros(deadline.saturating_sub(now)));
        }
    }

    fn fire_due_timers(&mut self) {
        let now = self.now().as_micros();
        while let Some(&Reverse((deadline, seq))) = self.timer_heap.peek() {
            if deadline > now {
                break;
            }
            self.timer_heap.pop();
            let Some((pid, token)) = self.timer_entries.remove(&seq) else {
                continue; // cancelled
            };
            self.with_program(pid, |prog, sys| prog.on_timer(sys, token));
            self.drain();
        }
    }

    // ---- deferred-action pump --------------------------------------------

    fn drain(&mut self) {
        while let Some(action) = self.actions.pop_front() {
            match action {
                Deferred::Start(pid) => self.do_start(pid),
                Deferred::ConnEvt { owner, conn, event } => {
                    self.with_program(owner, |prog, sys| prog.on_conn_event(sys, conn, event));
                }
                Deferred::Deliver { owner, conn, data } => {
                    self.with_program(owner, |prog, sys| prog.on_message(sys, conn, data));
                }
                Deferred::ChildExit {
                    parent,
                    child,
                    status,
                } => {
                    self.with_program(parent, |prog, sys| prog.on_child_exit(sys, child, status));
                }
                Deferred::KernelFlush { tracer } => self.do_kernel_flush(tracer),
                Deferred::Signal { target, signal } => self.do_signal(target, signal),
            }
        }
    }

    fn do_start(&mut self, pid: Pid) {
        let command = match self.kernel.get(pid) {
            Some(p) if p.is_alive() => {
                let cmd = p.command.clone();
                self.kernel.get_mut(pid).expect("alive").state = ProcState::Running;
                cmd
            }
            _ => return,
        };
        self.emit_kernel(KernelEvent::Exec { pid, command });
        self.with_program(pid, |prog, sys| prog.on_start(sys));
    }

    fn do_kernel_flush(&mut self, tracer: Pid) {
        let msgs = match self.pending_kernel.get_mut(&tracer) {
            Some(v) if !v.is_empty() => std::mem::take(v),
            _ => return,
        };
        if !self.is_alive(tracer) {
            return;
        }
        let batch = ppm_proto::codec::encode_batch(&msgs);
        self.with_program(tracer, |prog, sys| prog.on_kernel_batch(sys, batch));
    }

    fn do_signal(&mut self, target: Pid, signal: Signal) {
        if !self.is_alive(target) {
            return;
        }
        if let Ok(p) = self.kernel.live_mut(target) {
            p.rusage.signals_received += 1;
        }
        self.emit_kernel(KernelEvent::SignalDelivered {
            pid: target,
            signal,
        });
        match signal {
            Signal::Stop => {
                if let Ok(p) = self.kernel.live_mut(target) {
                    if p.state == ProcState::Running {
                        p.state = ProcState::Stopped;
                        self.emit_kernel(KernelEvent::Stopped { pid: target });
                    }
                }
            }
            Signal::Cont => {
                let mut was_stopped = false;
                if let Ok(p) = self.kernel.live_mut(target) {
                    if p.state == ProcState::Stopped {
                        p.state = ProcState::Running;
                        was_stopped = true;
                    }
                }
                if was_stopped {
                    self.emit_kernel(KernelEvent::Continued { pid: target });
                }
            }
            Signal::Kill => self.do_exit(target, ExitStatus::Signaled(Signal::Kill)),
            other => {
                let mut action = SigAction::Default;
                self.with_program(target, |prog, sys| {
                    action = prog.on_signal(sys, other);
                });
                if action == SigAction::Default && other.is_fatal_by_default() {
                    self.do_exit(target, ExitStatus::Signaled(other));
                }
            }
        }
    }

    // ---- process lifecycle -----------------------------------------------

    fn is_alive(&self, pid: Pid) -> bool {
        self.kernel.get(pid).is_some_and(Process::is_alive)
    }

    fn spawn_proc(&mut self, parent: Pid, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError> {
        let now = self.now();
        let pid = self.kernel.alloc_pid();
        let mut proc = Process::new(pid, parent, uid, spec.command.clone(), now);
        proc.cpu_bound = spec.cpu_bound;
        // Descendants inherit their parent's tracer and flags, as in the
        // simulated kernel ("Adoption allows the LPM to keep track of a
        // process and its descendants").
        let (tracer, flags, parent_traced) = match self.kernel.get(parent).filter(|p| p.is_alive())
        {
            Some(pp) => (pp.tracer, pp.trace_flags, pp.is_adopted()),
            None => (None, TraceFlags::NONE, false),
        };
        proc.tracer = tracer;
        proc.trace_flags = flags;
        self.kernel.insert(proc);
        if parent_traced {
            self.emit_kernel(KernelEvent::Fork { parent, child: pid });
        }
        if let Some(program) = spec.program {
            self.programs.insert(pid, program);
        }
        self.trace(
            TraceCategory::Kernel,
            format!("fork+exec pid {pid} ({}) by {parent}", spec.command),
        );
        self.actions.push_back(Deferred::Start(pid));
        Ok(pid)
    }

    fn post_signal(&mut self, from: Uid, target: Pid, signal: Signal) -> Result<(), SysError> {
        let p = self.kernel.live(target)?;
        if p.uid != from && !from.is_root() {
            return Err(SysError::PermissionDenied);
        }
        self.actions.push_back(Deferred::Signal { target, signal });
        Ok(())
    }

    fn do_exit(&mut self, pid: Pid, status: ExitStatus) {
        if !self.is_alive(pid) {
            return;
        }
        let now = self.now();
        let _orphans = self.kernel.finish_exit(pid, status, now);
        let (rusage, ppid) = {
            let p = self.kernel.get(pid).expect("just exited");
            (p.rusage, p.ppid)
        };
        self.trace(TraceCategory::Kernel, format!("pid {pid} {status}"));
        self.emit_kernel(KernelEvent::Exit {
            pid,
            status,
            rusage,
        });
        // Unpublish and retire listeners the process owned: connects are
        // refused until a respawn re-binds the logical port.
        let dead_ports: Vec<Port> = self
            .listeners
            .iter()
            .filter(|(_, l)| l.owner == pid)
            .map(|(&port, _)| port)
            .collect();
        for port in dead_ports {
            if let Some(l) = self.listeners.remove(&port) {
                l.alive.store(false, Ordering::SeqCst);
            }
            self.cluster
                .ports
                .lock()
                .unwrap()
                .remove(&(self.host, port));
        }
        self.services.retain(|_, &mut owner| owner != pid);
        // Shut down connections with this process as the local endpoint;
        // the peer's reader thread sees EOF and reports Closed there.
        let mut ids: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, c)| c.owner == pid && !matches!(c.state, RConnState::Closed))
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            if let Some(c) = self.conns.get_mut(&id) {
                if let RConnState::Up { stream } = &c.state {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                c.state = RConnState::Closed;
            }
        }
        self.programs.remove(&pid);
        self.pending_kernel.remove(&pid);
        self.timer_entries.retain(|_, (owner, _)| *owner != pid);
        if ppid != pid && self.is_alive(ppid) {
            self.actions.push_back(Deferred::ChildExit {
                parent: ppid,
                child: pid,
                status,
            });
        }
    }

    // ---- kernel events ---------------------------------------------------

    fn emit_kernel(&mut self, ev: KernelEvent) {
        let pid = ev.pid();
        let (tracer, flags) = match self.kernel.get(pid) {
            Some(p) => (p.tracer, p.trace_flags),
            None => return,
        };
        let Some(tracer) = tracer else { return };
        if !flags.contains(ev.required_flag()) || tracer == pid || !self.is_alive(tracer) {
            return;
        }
        let msg = KernelMsg {
            event: ev,
            queued_at: self.now(),
        };
        let starts_batch = self
            .pending_kernel
            .get(&tracer)
            .is_none_or(|pending| pending.is_empty());
        self.pending_kernel.entry(tracer).or_default().push(msg);
        if starts_batch {
            self.actions.push_back(Deferred::KernelFlush { tracer });
        }
    }

    fn account_received(&mut self, owner: Pid, bytes: usize) {
        if let Ok(p) = self.kernel.live_mut(owner) {
            p.rusage.msgs_received += 1;
            p.rusage.bytes_received += bytes as u64;
        }
        self.emit_kernel(KernelEvent::MsgReceived { pid: owner, bytes });
    }

    // ---- helpers ---------------------------------------------------------

    fn alloc_conn(&mut self) -> ConnId {
        // Upper bits carry the host so conn ids never collide across the
        // cluster in traces.
        let id = ConnId(((self.host.0 as u64) << 40) | self.next_conn);
        self.next_conn += 1;
        id
    }

    fn trace(&self, category: TraceCategory, text: String) {
        if self.cluster.trace_enabled {
            let at = self.now();
            eprintln!("[{at} {}] {category}: {text}", self.name);
        }
    }

    fn with_program<F>(&mut self, pid: Pid, f: F)
    where
        F: FnOnce(&mut dyn Program, &mut dyn ppm_runtime::sys::Sys),
    {
        let Some(mut prog) = self.programs.remove(&pid) else {
            return;
        };
        let uid = self.kernel.get(pid).map(|p| p.uid).unwrap_or(Uid::ROOT);
        let requested_exit = {
            let mut sys = RealSys {
                node: self,
                pid,
                uid,
                exit_code: None,
            };
            f(prog.as_mut(), &mut sys);
            sys.exit_code
        };
        if self.is_alive(pid) {
            self.programs.insert(pid, prog);
        }
        if let Some(code) = requested_exit {
            self.do_exit(pid, ExitStatus::Code(code));
        }
    }

    fn teardown(&mut self) {
        for l in self.listeners.values() {
            l.alive.store(false, Ordering::SeqCst);
        }
        for c in self.conns.values_mut() {
            if let RConnState::Up { stream } = &c.state {
                let _ = stream.shutdown(Shutdown::Both);
            }
            c.state = RConnState::Closed;
        }
        let mut ports = self.cluster.ports.lock().unwrap();
        ports.retain(|&(host, _), _| host != self.host);
    }
}

/// The real syscall interface bound to one calling process.
///
/// Where [`ppm_simos::sys::Sys`] maps the trait contracts onto the
/// discrete-event world, this maps them onto the node: timers go to the
/// node heap, connections to loopback TCP, spawn/kill to the shared
/// kernel process table.
pub struct RealSys<'a> {
    node: &'a mut NodeCore,
    pid: Pid,
    uid: Uid,
    exit_code: Option<i32>,
}

impl Clock for RealSys<'_> {
    fn now(&self) -> Micros {
        self.node.now()
    }
}

impl TimerDriver for RealSys<'_> {
    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerHandle {
        let seq = self.node.next_timer;
        self.node.next_timer += 1;
        let deadline = self.node.now().as_micros() + delay.as_micros();
        self.node.timer_heap.push(Reverse((deadline, seq)));
        self.node.timer_entries.insert(seq, (self.pid, token));
        TimerHandle(seq)
    }

    fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.node.timer_entries.remove(&handle.0).is_some()
    }
}

impl Transport for RealSys<'_> {
    fn listen(&mut self, port: Port) -> Result<(), SysError> {
        if self.node.listeners.contains_key(&port) {
            return Err(SysError::PortInUse);
        }
        let listener =
            TcpListener::bind(("127.0.0.1", 0)).map_err(|_| SysError::InvalidArgument)?;
        let real = listener
            .local_addr()
            .map_err(|_| SysError::InvalidArgument)?
            .port();
        let alive = Arc::new(AtomicBool::new(true));
        self.node
            .cluster
            .ports
            .lock()
            .unwrap()
            .insert((self.node.host, port), real);
        self.node.listeners.insert(
            port,
            RListener {
                owner: self.pid,
                alive: Arc::clone(&alive),
            },
        );
        net::spawn_acceptor(
            listener,
            port,
            alive,
            Arc::clone(&self.node.cluster.shutdown),
            self.node.tx.clone(),
        );
        if let Ok(p) = self.node.kernel.live_mut(self.pid) {
            p.fds.alloc(FdKind::Listener { port });
        }
        self.node.trace(
            TraceCategory::Net,
            format!("pid {} listening on {port} (tcp {real})", self.pid),
        );
        Ok(())
    }

    fn connect(&mut self, host: HostId, port: Port) -> Result<ConnId, SysError> {
        let known = self.node.cluster.hosts.read().unwrap().len() as u32;
        if host.0 >= known {
            return Err(SysError::NoSuchHost);
        }
        let conn = self.node.alloc_conn();
        self.node.conns.insert(
            conn,
            RConn {
                owner: self.pid,
                state: RConnState::Connecting { queued: Vec::new() },
            },
        );
        if let Ok(p) = self.node.kernel.live_mut(self.pid) {
            p.fds.alloc(FdKind::Socket { conn });
        }
        net::spawn_connector(
            conn,
            (self.node.host, self.pid),
            (host, port),
            Arc::clone(&self.node.cluster.ports),
            self.node.tx.clone(),
        );
        Ok(conn)
    }

    fn send_bytes(&mut self, conn: ConnId, data: Bytes) -> Result<(), SysError> {
        let c = self
            .node
            .conns
            .get_mut(&conn)
            .ok_or(SysError::NotConnected)?;
        if c.owner != self.pid {
            return Err(SysError::NotConnected);
        }
        let len = data.len();
        let mut closed_now = false;
        match &mut c.state {
            RConnState::Connecting { queued } => queued.push(data),
            RConnState::Up { stream } => {
                if net::write_frame(stream, &data).is_err() {
                    closed_now = true;
                }
            }
            RConnState::Closed => return Err(SysError::ConnectionClosed),
        }
        if closed_now {
            c.state = RConnState::Closed;
            let owner = c.owner;
            self.node.actions.push_back(Deferred::ConnEvt {
                owner,
                conn,
                event: ConnEvent::Closed,
            });
            return Err(SysError::ConnectionClosed);
        }
        if let Ok(p) = self.node.kernel.live_mut(self.pid) {
            p.rusage.msgs_sent += 1;
            p.rusage.bytes_sent += len as u64;
        }
        self.node.emit_kernel(KernelEvent::MsgSent {
            pid: self.pid,
            bytes: len,
        });
        Ok(())
    }

    fn close(&mut self, conn: ConnId) -> Result<(), SysError> {
        let c = self
            .node
            .conns
            .get_mut(&conn)
            .ok_or(SysError::NotConnected)?;
        if c.owner != self.pid {
            return Err(SysError::NotConnected);
        }
        if let RConnState::Up { stream } = &c.state {
            let _ = stream.shutdown(Shutdown::Both);
        }
        c.state = RConnState::Closed;
        if let Ok(p) = self.node.kernel.live_mut(self.pid) {
            if let Some(fd) = p.fds.fd_for_conn(conn) {
                p.fds.release(fd);
            }
        }
        Ok(())
    }
}

impl Spawner for RealSys<'_> {
    fn spawn(&mut self, spec: SpawnSpec) -> Result<Pid, SysError> {
        self.node.spawn_proc(self.pid, self.uid, spec)
    }

    fn spawn_as(&mut self, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError> {
        if !self.uid.is_root() {
            return Err(SysError::PermissionDenied);
        }
        self.node.spawn_proc(self.pid, uid, spec)
    }

    fn exit(&mut self, code: i32) {
        self.exit_code = Some(code);
    }

    fn kill(&mut self, target: Pid, signal: Signal) -> Result<(), SysError> {
        self.node.post_signal(self.uid, target, signal)
    }

    fn spawn_service(&mut self, name: &str) -> Result<(Pid, Port), SysError> {
        if !self.uid.is_root() {
            return Err(SysError::PermissionDenied);
        }
        if let Some(&pid) = self.node.services.get(name) {
            if self.node.is_alive(pid) {
                let port = self
                    .node
                    .cluster
                    .service_port(name)
                    .ok_or(SysError::UnknownService)?;
                return Ok((pid, port));
            }
        }
        let (port, program) = self
            .node
            .cluster
            .make_service(name, self.node.host)
            .ok_or(SysError::UnknownService)?;
        let spec = SpawnSpec::new(name.to_string(), program);
        let pid = self.node.spawn_proc(Pid::INIT, Uid::ROOT, spec)?;
        self.node.services.insert(name.to_string(), pid);
        self.node.trace(
            TraceCategory::Daemon,
            format!("service {name} started as pid {pid} (port {port})"),
        );
        Ok((pid, port))
    }
}

impl ppm_runtime::sys::Sys for RealSys<'_> {
    fn host(&self) -> HostId {
        self.node.host
    }

    fn host_name(&self) -> &str {
        &self.node.name
    }

    fn cpu_class(&self) -> CpuClass {
        self.node.cpu
    }

    fn pid(&self) -> Pid {
        self.pid
    }

    fn uid(&self) -> Uid {
        self.uid
    }

    fn load_avg(&self) -> f64 {
        self.node.kernel.load_avg()
    }

    fn resolve_host(&self, name: &str) -> Result<HostId, SysError> {
        let hosts = self.node.cluster.hosts.read().unwrap();
        hosts
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| HostId(i as u32))
            .ok_or(SysError::NoSuchHost)
    }

    fn known_hosts(&self) -> Vec<String> {
        let hosts = self.node.cluster.hosts.read().unwrap();
        hosts.iter().map(|(n, _)| n.clone()).collect()
    }

    fn trace_str(&mut self, category: TraceCategory, text: String) {
        self.node.trace(category, text);
    }

    fn spans_enabled(&self) -> bool {
        false
    }

    fn span_str(&mut self, _name: &'static str, _corr: String, _phase: SpanPhase) {}

    fn register_metrics_str(&mut self, label: String, registry: SharedRegistry) {
        let mut obs = self.node.cluster.obs.lock().unwrap();
        obs.retain(|(l, _)| *l != label);
        obs.push((label, registry));
    }

    fn random_unit(&mut self) -> f64 {
        // xorshift64*: deterministic per node, no RNG dependency.
        let mut x = self.node.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.node.rng = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    fn adopt(&mut self, target: Pid, flags: TraceFlags) -> Result<(), SysError> {
        self.node.kernel.adopt(target, self.pid, self.uid, flags)?;
        self.node.trace(
            TraceCategory::Lpm,
            format!("adopted pid {target} with flags {flags}"),
        );
        Ok(())
    }

    fn register_kernel_socket(&mut self) -> Fd {
        self.node
            .kernel
            .get_mut(self.pid)
            .expect("caller is alive")
            .fds
            .alloc(FdKind::KernelSocket)
    }

    fn proc_info(&self, pid: Pid) -> Option<ProcInfo> {
        self.node.kernel.get(pid).map(ProcInfo::from)
    }

    fn user_processes(&self, uid: Uid) -> Vec<ProcInfo> {
        self.node
            .kernel
            .user_processes(uid)
            .into_iter()
            .map(ProcInfo::from)
            .collect()
    }

    fn rusage_of(&self, pid: Pid) -> Option<Rusage> {
        self.node.kernel.get(pid).map(|p| p.rusage)
    }

    fn set_cpu_bound(&mut self, yes: bool) {
        if let Ok(p) = self.node.kernel.live_mut(self.pid) {
            p.cpu_bound = yes;
        }
    }

    fn scale_cost(&mut self, nominal: SimDuration) -> SimDuration {
        // Real work already takes real time; the nominal cost passes
        // through for protocol-level bookkeeping only.
        nominal
    }

    fn consume_cpu(&mut self, nominal: SimDuration) -> SimDuration {
        if let Ok(p) = self.node.kernel.live_mut(self.pid) {
            p.rusage.cpu += nominal;
        }
        nominal
    }

    fn stable_put_kv(&mut self, key: String, value: Bytes) {
        self.node.stable.insert(key, value);
    }

    fn stable_get(&self, key: &str) -> Option<Bytes> {
        self.node.stable.get(key).cloned()
    }

    fn stable_del(&mut self, key: &str) {
        self.node.stable.remove(key);
    }

    fn open_path(&mut self, path: String, mode: OpenMode) -> Fd {
        let fd = {
            let p = self
                .node
                .kernel
                .live_mut(self.pid)
                .expect("caller is alive");
            p.rusage.files_opened += 1;
            p.fds.alloc(FdKind::File {
                path: path.clone(),
                mode,
            })
        };
        self.node.emit_kernel(KernelEvent::FileOpened {
            pid: self.pid,
            path,
        });
        fd
    }

    fn close_fd(&mut self, fd: Fd) -> Result<(), SysError> {
        let released = {
            let p = self
                .node
                .kernel
                .live_mut(self.pid)
                .map_err(|_| SysError::BadFileDescriptor)?;
            p.fds.release(fd)
        };
        match released {
            Some(FdKind::File { path, .. }) => {
                self.node.emit_kernel(KernelEvent::FileClosed {
                    pid: self.pid,
                    path,
                });
                Ok(())
            }
            Some(FdKind::Socket { conn }) => {
                let _ = Transport::close(self, conn);
                Ok(())
            }
            Some(_) => Ok(()),
            None => Err(SysError::BadFileDescriptor),
        }
    }

    fn open_fds(&self, pid: Pid) -> Result<Vec<(Fd, FdKind)>, SysError> {
        let p = self.node.kernel.live(pid)?;
        if p.uid != self.uid && !self.uid.is_root() {
            return Err(SysError::PermissionDenied);
        }
        Ok(p.fds.iter().map(|(fd, k)| (fd, k.clone())).collect())
    }
}
