//! Property tests for the discrete-event engine and the topology.

use proptest::prelude::*;

use ppm_simnet::engine::{Engine, TimerWheel};
use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::{CpuClass, HostSpec, Topology};

// ---- engine ---------------------------------------------------------------

proptest! {
    /// Events pop in nondecreasing time order regardless of insertion
    /// order, and ties preserve insertion order.
    #[test]
    fn engine_pops_sorted_and_stable(delays in prop::collection::vec(0u64..1000, 1..200)) {
        let mut engine: Engine<usize> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            engine.schedule(SimDuration::from_micros(d), i);
        }
        let mut popped = Vec::new();
        while let Some((t, idx)) = engine.pop() {
            popped.push((t, idx));
        }
        prop_assert_eq!(popped.len(), delays.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stable tie-break by insertion order");
            }
        }
        // Every event popped at exactly its scheduled time.
        for (t, idx) in popped {
            prop_assert_eq!(t, SimTime::from_micros(delays[idx]));
        }
    }

    /// Cancellation removes exactly the cancelled events.
    #[test]
    fn engine_cancellation_is_exact(
        delays in prop::collection::vec(0u64..1000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut engine: Engine<usize> = Engine::new();
        let ids: Vec<_> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| engine.schedule(SimDuration::from_micros(d), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(engine.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, idx)) = engine.pop() {
            got.push(idx);
        }
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Interleaved scheduling never lets the clock move backwards.
    #[test]
    fn engine_clock_is_monotone(ops in prop::collection::vec((0u64..500, any::<bool>()), 1..200)) {
        let mut engine: Engine<u64> = Engine::new();
        let mut last = SimTime::ZERO;
        for (d, pop_now) in ops {
            engine.schedule(SimDuration::from_micros(d), d);
            if pop_now {
                if let Some((t, _)) = engine.pop() {
                    prop_assert!(t >= last);
                    last = t;
                }
            }
        }
        while let Some((t, _)) = engine.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }
}

// ---- engine vs reference model --------------------------------------------

/// A deliberately naive event queue: a flat vector scanned linearly for
/// the minimum `(time, seq)` pair. Trivially correct, O(n) everywhere.
struct ModelQueue {
    now: u64,
    next_seq: u64,
    pending: Vec<(u64, u64, u64)>, // (at_us, seq, payload)
}

impl ModelQueue {
    fn new() -> Self {
        ModelQueue {
            now: 0,
            next_seq: 0,
            pending: Vec::new(),
        }
    }

    fn schedule(&mut self, delay_us: u64, payload: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((self.now + delay_us, seq, payload));
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|&(_, s, _)| s == seq) {
            Some(i) => {
                self.pending.swap_remove(i);
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, seq, _))| (at, seq))?
            .0;
        let (at, _, payload) = self.pending.swap_remove(best);
        self.now = at;
        Some((at, payload))
    }
}

proptest! {
    /// The indexed heap is observationally equivalent to the naive model
    /// under arbitrary interleavings of schedule / cancel / pop —
    /// including cancels aimed at already-fired and already-cancelled
    /// events.
    #[test]
    fn engine_matches_reference_model(
        ops in prop::collection::vec((0u8..8, 0u64..2_000, any::<u16>()), 1..300)
    ) {
        let mut engine: Engine<u64> = Engine::new();
        let mut model = ModelQueue::new();
        // Every id ever issued, fired or not: cancels draw from here so
        // they regularly target dead ids.
        let mut engine_ids = Vec::new();
        let mut model_ids = Vec::new();

        for (kind, delay, pick) in ops {
            match kind {
                // Schedule (weight 3/8).
                0..=2 => {
                    let payload = delay ^ u64::from(pick);
                    engine_ids.push(engine.schedule(SimDuration::from_micros(delay), payload));
                    model_ids.push(model.schedule(delay, payload));
                }
                // Cancel a previously issued id (weight 3/8).
                3..=5 => {
                    if !engine_ids.is_empty() {
                        let k = usize::from(pick) % engine_ids.len();
                        prop_assert_eq!(
                            engine.cancel(engine_ids[k]),
                            model.cancel(model_ids[k]),
                            "cancel verdicts diverge"
                        );
                    }
                }
                // Pop (weight 2/8).
                _ => {
                    let got = engine.pop().map(|(t, v)| (t.as_micros(), v));
                    prop_assert_eq!(got, model.pop(), "pop streams diverge");
                }
            }
            prop_assert_eq!(engine.pending(), model.pending.len());
            prop_assert_eq!(engine.now().as_micros(), model.now);
        }

        // Drain both to the end.
        loop {
            let got = engine.pop().map(|(t, v)| (t.as_micros(), v));
            let want = model.pop();
            prop_assert_eq!(got, want, "drain diverges");
            if want.is_none() {
                break;
            }
        }
        prop_assert_eq!(engine.pending(), 0);
    }
}

// ---- topology ---------------------------------------------------------------

/// Reference all-pairs shortest paths (Floyd–Warshall).
fn reference_hops(n: usize, edges: &[(usize, usize)], up: &[bool]) -> Vec<Vec<Option<u32>>> {
    const INF: u32 = u32::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        if up[i] {
            row[i] = 0;
        }
    }
    for &(a, b) in edges {
        if up[a] && up[b] {
            d[a][b] = d[a][b].min(1);
            d[b][a] = d[b][a].min(1);
        }
    }
    for k in 0..n {
        if !up[k] {
            continue;
        }
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k].saturating_add(d[k][j]);
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d.into_iter()
        .map(|row| row.into_iter().map(|v| (v < INF).then_some(v)).collect())
        .collect()
}

proptest! {
    /// BFS hop counts agree with Floyd–Warshall on random graphs with
    /// random host outages.
    #[test]
    fn hops_match_reference(
        n in 2usize..10,
        edge_bits in prop::collection::vec(any::<bool>(), 45),
        up_bits in prop::collection::vec(any::<bool>(), 10),
    ) {
        let mut topo = Topology::new();
        let ids: Vec<_> = (0..n)
            .map(|i| topo.add_host(HostSpec::new(format!("h{i}"), CpuClass::Vax780)))
            .collect();
        let mut edges = Vec::new();
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if *edge_bits.get(k).unwrap_or(&false) {
                    topo.add_link(ids[i], ids[j]);
                    edges.push((i, j));
                }
                k += 1;
            }
        }
        let up: Vec<bool> = (0..n).map(|i| *up_bits.get(i).unwrap_or(&true)).collect();
        for (i, &u) in up.iter().enumerate() {
            topo.set_host_up(ids[i], u);
        }
        let expect = reference_hops(n, &edges, &up);
        for i in 0..n {
            for j in 0..n {
                let got = topo.hops(ids[i], ids[j]);
                prop_assert_eq!(got, expect[i][j], "hops({},{})", i, j);
            }
        }
    }

    /// `reachable_from` is exactly the set of hosts with a finite hop count.
    #[test]
    fn reachability_matches_hops(
        n in 2usize..9,
        edge_bits in prop::collection::vec(any::<bool>(), 36),
    ) {
        let mut topo = Topology::new();
        let ids: Vec<_> = (0..n)
            .map(|i| topo.add_host(HostSpec::new(format!("h{i}"), CpuClass::Sun2)))
            .collect();
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if *edge_bits.get(k).unwrap_or(&false) {
                    topo.add_link(ids[i], ids[j]);
                }
                k += 1;
            }
        }
        for &src in &ids {
            let reach = topo.reachable_from(src);
            for &dst in &ids {
                let reachable = topo.hops(src, dst).is_some();
                prop_assert_eq!(reach.contains(&dst), reachable);
            }
        }
    }
}

// ---- timer wheel vs indexed heap ------------------------------------------

proptest! {
    /// The hierarchical timer wheel and the indexed heap are
    /// interchangeable: driven with the identical random
    /// schedule/cancel/advance workload they fire the same events in the
    /// same order (including ties) at the same times, agree on every
    /// cancellation verdict, and report identical `pending()` counts
    /// throughout. Delays span all wheel levels and the far-future
    /// overflow heap.
    #[test]
    fn timer_wheel_matches_indexed_heap(
        ops in prop::collection::vec((0u64..20_000_000, 0u8..10), 1..300),
    ) {
        let mut heap: Engine<usize> = Engine::new();
        let mut wheel: TimerWheel<usize> = TimerWheel::new();
        let mut ids = Vec::new();
        for (i, &(arg, kind)) in ops.iter().enumerate() {
            match kind {
                0..=5 => {
                    let d = SimDuration::from_micros(arg);
                    ids.push((heap.schedule(d, i), wheel.schedule(d, i)));
                }
                6 | 7 => {
                    if !ids.is_empty() {
                        // Pseudo-random pick; may hit an already-fired or
                        // already-cancelled id — the verdicts must agree.
                        let (hid, wid) = ids[(arg as usize) % ids.len()];
                        prop_assert_eq!(heap.cancel(hid), wheel.cancel(wid));
                    }
                }
                _ => {
                    prop_assert_eq!(heap.pop(), wheel.pop());
                    prop_assert_eq!(heap.now(), wheel.now());
                }
            }
            prop_assert_eq!(heap.pending(), wheel.pending());
        }
        // Drain both: the full remaining fire order must match.
        loop {
            let h = heap.pop();
            let w = wheel.pop();
            prop_assert_eq!(h.clone(), w);
            prop_assert_eq!(heap.pending(), wheel.pending());
            prop_assert_eq!(heap.now(), wheel.now());
            if h.is_none() {
                break;
            }
        }
    }
}

// ---- fault plans ------------------------------------------------------------

use ppm_simnet::fault::{FaultEvent, FaultKind, FaultPlan, WireFaultKind, WireFaults, WireRule};

fn arb_host() -> impl Strategy<Value = String> {
    (0u8..5).prop_map(|i| ["calder", "kim", "ucbarpa", "ernie", "vangogh"][i as usize].to_string())
}

fn arb_link_name() -> impl Strategy<Value = String> {
    (0u8..4).prop_map(|i| {
        ["core:tor0-spine1", "edge:calder", "wan:kim", "mile:h7"][i as usize].to_string()
    })
}

fn arb_fault_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        arb_host().prop_map(|host| FaultKind::Crash { host }),
        arb_host().prop_map(|host| FaultKind::Restart { host }),
        (arb_host(), arb_host()).prop_map(|(a, b)| FaultKind::LinkDown { a, b }),
        (arb_host(), arb_host()).prop_map(|(a, b)| FaultKind::LinkUp { a, b }),
        arb_link_name().prop_map(|link| FaultKind::NetLinkDown { link }),
        arb_link_name().prop_map(|link| FaultKind::NetLinkUp { link }),
        (arb_host(), 0u8..3).prop_map(|(host, c)| FaultKind::Kill {
            host,
            command: ["lpm", "pmd", "worker"][c as usize].to_string(),
        }),
    ]
}

fn arb_wire_rule() -> impl Strategy<Value = WireRule> {
    let kind = prop_oneof![
        Just(WireFaultKind::Drop),
        Just(WireFaultKind::Dup),
        (1u64..10_000).prop_map(|us| WireFaultKind::Reorder {
            skew: SimDuration::from_micros(us),
        }),
        (1u64..100_000).prop_map(|us| WireFaultKind::Delay {
            extra: SimDuration::from_micros(us),
        }),
    ];
    (
        kind,
        0u32..=1000,
        prop::option::of(arb_host()),
        prop::option::of(arb_host()),
        prop::option::of(0u64..20_000_000),
        prop::option::of(0u64..20_000_000),
    )
        .prop_map(|(kind, permille, from, to, after, until)| {
            let mut rule = WireRule::new(kind, f64::from(permille) / 1000.0);
            rule.from = from;
            rule.to = to;
            rule.after = after.map(SimTime::from_micros);
            rule.until = until.map(SimTime::from_micros);
            rule
        })
}

fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        prop::collection::vec((0u64..60_000_000, arb_fault_kind()), 0..12),
        prop::collection::vec(arb_wire_rule(), 0..6),
    )
        .prop_map(|(seed, events, wire)| FaultPlan {
            seed,
            events: events
                .into_iter()
                .map(|(at, kind)| FaultEvent {
                    at: SimTime::from_micros(at),
                    kind,
                })
                .collect(),
            wire,
        })
}

proptest! {
    /// Satellite invariant: a plan survives an encode → parse roundtrip
    /// exactly — every event, rule, scope and the seed.
    #[test]
    fn fault_plan_roundtrips(plan in arb_fault_plan()) {
        let text = plan.encode();
        let again = FaultPlan::parse(&text);
        prop_assert_eq!(Ok(plan), again, "canonical text:\n{}", text);
    }

    /// Satellite invariant: the seeded drop/dup/reorder schedule is a
    /// pure function of (seed, message sequence) — two generators built
    /// from the same plan make byte-identical decisions over any traffic.
    #[test]
    fn wire_fault_schedule_is_deterministic(
        plan in arb_fault_plan(),
        traffic in prop::collection::vec((0u8..5, 0u8..5, 0u64..20_000_000), 0..300),
    ) {
        const HOSTS: [&str; 5] = ["calder", "kim", "ucbarpa", "ernie", "vangogh"];
        let mut a = WireFaults::new(&plan);
        let mut b = WireFaults::new(&plan);
        for (f, t, at) in traffic {
            let (from, to) = (HOSTS[f as usize], HOSTS[t as usize]);
            let now = SimTime::from_micros(at);
            prop_assert_eq!(a.decide(from, to, now), b.decide(from, to, now));
        }
    }
}

// ---------------------------------------------------------------------------
// Netmodel routing: determinism and symmetry (PR 10 satellites).
// ---------------------------------------------------------------------------

use ppm_simnet::routing::RoutingTable;
use ppm_simnet::topology::{NetGraph, NetLinkSpec, NetSpec};

/// An arbitrary physical topology: `hosts` leaf hosts, `switches`
/// internal nodes, and a random undirected edge set (plus a host chain so
/// most pairs are reachable — unreachable pairs are also a valid case and
/// still occur through the link up/down mask).
fn arb_net() -> impl Strategy<Value = (NetSpec, Vec<String>, Vec<bool>)> {
    (2usize..10, 0usize..4).prop_flat_map(|(hosts, switches)| {
        let n = hosts + switches;
        let max_edges = n * (n - 1) / 2;
        (
            Just(hosts),
            Just(switches),
            prop::collection::vec((0usize..n, 0usize..n), 0..max_edges.max(1)),
            prop::collection::vec(any::<bool>(), n + max_edges),
        )
            .prop_map(|(hosts, switches, edges, mask)| {
                let name_of = |i: usize| {
                    if i < hosts {
                        format!("h{i}")
                    } else {
                        format!("s{}", i - hosts)
                    }
                };
                let host_names: Vec<String> = (0..hosts).map(|i| format!("h{i}")).collect();
                let mut spec = NetSpec {
                    name: "prop".into(),
                    switches: (0..switches).map(|i| format!("s{i}")).collect(),
                    links: Vec::new(),
                };
                let mut seen = std::collections::HashSet::new();
                let mut push = |spec: &mut NetSpec, a: usize, b: usize| {
                    let (a, b) = (a.min(b), a.max(b));
                    if a == b || !seen.insert((a, b)) {
                        return;
                    }
                    spec.links.push(NetLinkSpec {
                        name: format!("l{a}-{b}"),
                        a: name_of(a),
                        b: name_of(b),
                        cap_bps: 250_000,
                        lat_us: 5_000,
                        loss: 0.0,
                        core: false,
                    });
                };
                for w in 1..hosts {
                    push(&mut spec, w - 1, w);
                }
                for (a, b) in edges {
                    push(&mut spec, a, b);
                }
                (spec, host_names, mask)
            })
    })
}

/// Applies the up/down mask to hosts and links so the properties also
/// cover degraded graphs.
fn masked_graph(spec: &NetSpec, host_names: &[String], mask: &[bool]) -> NetGraph {
    let mut g = NetGraph::build(spec, host_names).expect("spec is well-formed");
    for (i, &up) in mask.iter().take(host_names.len()).enumerate() {
        g.set_host_up(i as u32, up);
    }
    for (i, &up) in mask.iter().skip(host_names.len()).enumerate() {
        if i < g.links.len() {
            g.set_link_up(i as u32, up);
        }
    }
    g
}

proptest! {
    /// Satellite invariant: the route table is a pure function of the
    /// graph — two builds over the same (masked) topology serialize to
    /// byte-identical tables.
    #[test]
    fn routing_table_is_deterministic(net in arb_net()) {
        let (spec, hosts, mask) = net;
        let g = masked_graph(&spec, &hosts, &mask);
        let a = RoutingTable::build(&g).table_bytes();
        let b = RoutingTable::build(&g).table_bytes();
        prop_assert_eq!(a, b);
    }

    /// Satellite invariant: on undirected links the route from b to a is
    /// the exact reverse of the route from a to b (canonical unordered-
    /// pair construction), and routes are consistent with reachability.
    #[test]
    fn routes_are_symmetric(net in arb_net()) {
        let (spec, hosts, mask) = net;
        let g = masked_graph(&spec, &hosts, &mask);
        let t = RoutingTable::build(&g);
        for a in 0..hosts.len() as u32 {
            for b in 0..hosts.len() as u32 {
                match (t.route(a, b), t.route(b, a)) {
                    (Some((mut fn_, mut fl)), Some((rn, rl))) => {
                        fn_.reverse();
                        fl.reverse();
                        prop_assert_eq!(&fn_, &rn, "{}->{} nodes", a, b);
                        prop_assert_eq!(&fl, &rl, "{}->{} links", a, b);
                        prop_assert!(t.reachable(a, b));
                        // Every consecutive pair is really joined by the
                        // named link, and the link is live.
                        for (w, l) in rn.windows(2).zip(&rl) {
                            let link = &g.links[*l as usize];
                            prop_assert!(link.up);
                            let (x, y) = (w[0].min(w[1]), w[0].max(w[1]));
                            prop_assert_eq!((link.a.min(link.b), link.a.max(link.b)), (x, y));
                        }
                    }
                    (None, None) => prop_assert!(!t.reachable(a, b)),
                    (x, y) => prop_assert!(false, "asymmetric reachability: {:?} vs {:?}", x, y),
                }
            }
        }
    }
}
