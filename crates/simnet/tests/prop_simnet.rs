//! Property tests for the discrete-event engine and the topology.

use proptest::prelude::*;

use ppm_simnet::engine::Engine;
use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::{CpuClass, HostSpec, Topology};

// ---- engine ---------------------------------------------------------------

proptest! {
    /// Events pop in nondecreasing time order regardless of insertion
    /// order, and ties preserve insertion order.
    #[test]
    fn engine_pops_sorted_and_stable(delays in prop::collection::vec(0u64..1000, 1..200)) {
        let mut engine: Engine<usize> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            engine.schedule(SimDuration::from_micros(d), i);
        }
        let mut popped = Vec::new();
        while let Some((t, idx)) = engine.pop() {
            popped.push((t, idx));
        }
        prop_assert_eq!(popped.len(), delays.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stable tie-break by insertion order");
            }
        }
        // Every event popped at exactly its scheduled time.
        for (t, idx) in popped {
            prop_assert_eq!(t, SimTime::from_micros(delays[idx]));
        }
    }

    /// Cancellation removes exactly the cancelled events.
    #[test]
    fn engine_cancellation_is_exact(
        delays in prop::collection::vec(0u64..1000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut engine: Engine<usize> = Engine::new();
        let ids: Vec<_> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| engine.schedule(SimDuration::from_micros(d), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(engine.cancel(*id));
            } else {
                expected.push(i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some((_, idx)) = engine.pop() {
            got.push(idx);
        }
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Interleaved scheduling never lets the clock move backwards.
    #[test]
    fn engine_clock_is_monotone(ops in prop::collection::vec((0u64..500, any::<bool>()), 1..200)) {
        let mut engine: Engine<u64> = Engine::new();
        let mut last = SimTime::ZERO;
        for (d, pop_now) in ops {
            engine.schedule(SimDuration::from_micros(d), d);
            if pop_now {
                if let Some((t, _)) = engine.pop() {
                    prop_assert!(t >= last);
                    last = t;
                }
            }
        }
        while let Some((t, _)) = engine.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }
}

// ---- topology ---------------------------------------------------------------

/// Reference all-pairs shortest paths (Floyd–Warshall).
fn reference_hops(n: usize, edges: &[(usize, usize)], up: &[bool]) -> Vec<Vec<Option<u32>>> {
    const INF: u32 = u32::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        if up[i] {
            row[i] = 0;
        }
    }
    for &(a, b) in edges {
        if up[a] && up[b] {
            d[a][b] = d[a][b].min(1);
            d[b][a] = d[b][a].min(1);
        }
    }
    for k in 0..n {
        if !up[k] {
            continue;
        }
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k].saturating_add(d[k][j]);
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d.into_iter()
        .map(|row| row.into_iter().map(|v| (v < INF).then_some(v)).collect())
        .collect()
}

proptest! {
    /// BFS hop counts agree with Floyd–Warshall on random graphs with
    /// random host outages.
    #[test]
    fn hops_match_reference(
        n in 2usize..10,
        edge_bits in prop::collection::vec(any::<bool>(), 45),
        up_bits in prop::collection::vec(any::<bool>(), 10),
    ) {
        let mut topo = Topology::new();
        let ids: Vec<_> = (0..n)
            .map(|i| topo.add_host(HostSpec::new(format!("h{i}"), CpuClass::Vax780)))
            .collect();
        let mut edges = Vec::new();
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if *edge_bits.get(k).unwrap_or(&false) {
                    topo.add_link(ids[i], ids[j]);
                    edges.push((i, j));
                }
                k += 1;
            }
        }
        let up: Vec<bool> = (0..n).map(|i| *up_bits.get(i).unwrap_or(&true)).collect();
        for (i, &u) in up.iter().enumerate() {
            topo.set_host_up(ids[i], u);
        }
        let expect = reference_hops(n, &edges, &up);
        for i in 0..n {
            for j in 0..n {
                let got = topo.hops(ids[i], ids[j]);
                prop_assert_eq!(got, expect[i][j], "hops({},{})", i, j);
            }
        }
    }

    /// `reachable_from` is exactly the set of hosts with a finite hop count.
    #[test]
    fn reachability_matches_hops(
        n in 2usize..9,
        edge_bits in prop::collection::vec(any::<bool>(), 36),
    ) {
        let mut topo = Topology::new();
        let ids: Vec<_> = (0..n)
            .map(|i| topo.add_host(HostSpec::new(format!("h{i}"), CpuClass::Sun2)))
            .collect();
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if *edge_bits.get(k).unwrap_or(&false) {
                    topo.add_link(ids[i], ids[j]);
                }
                k += 1;
            }
        }
        for &src in &ids {
            let reach = topo.reachable_from(src);
            for &dst in &ids {
                let reachable = topo.hops(src, dst).is_some();
                prop_assert_eq!(reach.contains(&dst), reachable);
            }
        }
    }
}
