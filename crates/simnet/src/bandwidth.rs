//! Shared-capacity bandwidth accounting and the assembled netmodel.
//!
//! Every named link carries a capacity in bytes/sec. A transfer of `B`
//! bytes that starts while `n` other transfers are still in flight on the
//! link is charged the **fair-share serialization law**
//!
//! ```text
//! serialize_us = B * 1e6 / cap * (n + 1)
//! queue_us     = serialize_us - uncontended   (the contention penalty)
//! ```
//!
//! — i.e. the link's capacity is split evenly across concurrent flows for
//! the whole transfer, approximated at admission time. The in-flight
//! ledger is pruned lazily against simulated now, so the model keeps no
//! timers of its own and its state is a pure function of the (globally
//! ordered, deterministic) sequence of sends. No RNG is consumed by
//! bandwidth accounting; only lossy links draw, and those draws come from
//! the netmodel's **own** seeded stream so installing a topology never
//! perturbs the world's jitter sequence.
//!
//! [`NetModel`] bundles the pieces the simulated world consults on every
//! routed delivery: the physical [`NetGraph`], the precomputed
//! [`RoutingTable`] (rebuilt eagerly on topology mutations), the
//! per-link ledgers, and per-link traffic counters feeding the
//! `net.*` metrics and the dashboard's congested-links column.

use crate::rng::SimRng;
use crate::routing::RoutingTable;
use crate::topology::{NetGraph, NetSpec};

/// Admission-time charge for one transfer over one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Charge {
    /// Contention-scaled serialization time, µs.
    pub serialize_us: u64,
    /// Queueing penalty over the uncontended time, µs.
    pub queue_us: u64,
}

/// Per-link in-flight ledger: completion times of admitted transfers.
#[derive(Debug, Clone, Default)]
struct Ledger {
    /// Completion instants (µs) of in-flight transfers, unsorted.
    ends: Vec<u64>,
}

impl Ledger {
    /// Admits a transfer at `now`: prunes finished entries, counts the
    /// overlap, applies the fair-share law.
    fn charge(&mut self, now_us: u64, bytes: u64, cap_bps: u64) -> Charge {
        self.ends.retain(|&e| e > now_us);
        let flows = self.ends.len() as u64;
        let base = bytes.saturating_mul(1_000_000) / cap_bps.max(1);
        let serialize_us = base.saturating_mul(flows + 1);
        self.ends.push(now_us + serialize_us);
        Charge {
            serialize_us,
            queue_us: serialize_us - base,
        }
    }
}

/// Cumulative per-link traffic counters (dashboard + metrics source).
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Total bytes admitted.
    pub bytes: u64,
    /// Total queueing penalty accrued, µs.
    pub queue_us: u64,
    /// Transfers admitted.
    pub sends: u64,
    /// Transfers that saw at least one in-flight competitor.
    pub congested: u64,
}

/// Outcome of pricing one end-to-end transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transfer {
    /// Deliver after this many microseconds.
    Deliver {
        /// Total path latency: per-link fixed latency + serialization.
        total_us: u64,
        /// Of which queueing penalty (the congestion signal).
        queue_us: u64,
        /// Links traversed.
        links: u32,
    },
    /// A lossy link dropped the message (the draw is recorded; the
    /// caller traces and does not schedule a delivery).
    Dropped,
    /// No live physical path between the endpoints.
    Unreachable,
}

/// The per-link constants [`NetModel::transfer`] reads on every hop,
/// packed densely so pricing a route touches a few cache lines instead
/// of striding through [`crate::topology::NetLink`]s and their names.
#[derive(Debug, Clone, Copy)]
struct LinkParams {
    cap_bps: u64,
    lat_us: u64,
    loss: f64,
    core: bool,
}

/// The assembled bandwidth- and topology-aware network model.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// The physical graph (hosts + switches + named links).
    pub graph: NetGraph,
    /// Precomputed routes, rebuilt on every mutation.
    pub routing: RoutingTable,
    /// Hot copies of each link's pricing constants (immutable: up/down
    /// state lives in the routing rebuild, not here).
    params: Vec<LinkParams>,
    ledgers: Vec<Ledger>,
    stats: Vec<LinkStats>,
    /// Dedicated loss stream, independent of the world's RNG.
    rng: SimRng,
    /// Topology name, for traces.
    pub name: String,
    /// Transfers priced (excludes local IPC).
    pub routed_sends: u64,
    /// Transfers dropped by lossy links.
    pub drops: u64,
    /// Bytes admitted onto `core`-flagged (bisection) links.
    pub bisection_bytes: u64,
}

impl NetModel {
    /// Builds the model over the world's hosts (in host-id order).
    pub fn build(spec: &NetSpec, host_names: &[String], seed: u64) -> Result<NetModel, String> {
        let graph = NetGraph::build(spec, host_names)?;
        let routing = RoutingTable::build(&graph);
        let n = graph.links.len();
        Ok(NetModel {
            routing,
            params: graph
                .links
                .iter()
                .map(|l| LinkParams {
                    cap_bps: l.cap_bps,
                    lat_us: l.lat_us,
                    loss: l.loss,
                    core: l.core,
                })
                .collect(),
            ledgers: vec![Ledger::default(); n],
            stats: vec![LinkStats::default(); n],
            // Offset the seed so the loss stream never mirrors the
            // world's jitter stream or a fault plan's wire stream.
            rng: SimRng::seed_from(seed ^ 0x6e65_746d),
            name: spec.name.clone(),
            graph,
            routed_sends: 0,
            drops: 0,
            bisection_bytes: 0,
        })
    }

    /// Prices a transfer of `bytes` from host `a` to host `b` at `now`.
    ///
    /// Charges every link on the canonical route: fixed latency plus
    /// fair-share serialization, accumulating the per-link counters.
    /// Lossy links may drop the message (one Bernoulli draw per lossy
    /// link traversed, from the model's own stream).
    pub fn transfer(&mut self, a: u32, b: u32, bytes: u64, now_us: u64) -> Transfer {
        let Some(route) = self.routing.route_links(a, b) else {
            return Transfer::Unreachable;
        };
        let mut total_us = 0u64;
        let mut queue_us = 0u64;
        let links = route.len() as u32;
        let mut dropped = false;
        // Collect charges even on the dropped path: the bytes occupied
        // the links up to (and including) the dropping link.
        for &l in route {
            let li = l as usize;
            let link = &self.params[li];
            let charge = self.ledgers[li].charge(now_us, bytes, link.cap_bps);
            let s = &mut self.stats[li];
            s.bytes += bytes;
            s.queue_us += charge.queue_us;
            s.sends += 1;
            if charge.queue_us > 0 {
                s.congested += 1;
            }
            if link.core {
                self.bisection_bytes += bytes;
            }
            total_us += link.lat_us + charge.serialize_us;
            queue_us += charge.queue_us;
            if link.loss > 0.0 && self.rng.chance(link.loss) {
                dropped = true;
                break;
            }
        }
        self.routed_sends += 1;
        if dropped {
            self.drops += 1;
            return Transfer::Dropped;
        }
        Transfer::Deliver {
            total_us,
            queue_us,
            links,
        }
    }

    /// Prices an *uncontended* traversal (control traffic: handshakes,
    /// closes). Consults the route and per-link latency/capacity but
    /// neither the ledgers nor the loss stream, so pure control traffic
    /// never perturbs contention state.
    pub fn wire_uncontended(&self, a: u32, b: u32, bytes: u64) -> Option<u64> {
        let route = self.routing.route_links(a, b)?;
        Some(
            route
                .iter()
                .map(|&l| {
                    let link = &self.params[l as usize];
                    link.lat_us + bytes.saturating_mul(1_000_000) / link.cap_bps.max(1)
                })
                .sum(),
        )
    }

    /// Whether hosts `a` and `b` have a live physical path.
    pub fn reachable(&self, a: u32, b: u32) -> bool {
        self.routing.reachable(a, b)
    }

    /// Flips a link by index, rebuilding the routes when the state
    /// actually changed. Returns whether it changed.
    pub fn set_link_up(&mut self, idx: u32, up: bool) -> bool {
        let prev = self.graph.set_link_up(idx, up);
        if prev != up {
            self.routing = RoutingTable::build(&self.graph);
        }
        prev != up
    }

    /// Flips a named link and rebuilds the routes. Returns the link
    /// index, or `None` for an unknown name.
    pub fn set_link_up_by_name(&mut self, name: &str, up: bool) -> Option<u32> {
        let idx = self.graph.link_by_name(name)?;
        self.set_link_up(idx, up);
        Some(idx)
    }

    /// Mirrors a host crash/restart and rebuilds the routes.
    pub fn set_host_up(&mut self, host: u32, up: bool) {
        self.graph.set_host_up(host, up);
        self.routing = RoutingTable::build(&self.graph);
    }

    /// Per-link cumulative stats, in link declaration order.
    pub fn link_stats(&self) -> impl Iterator<Item = (&str, &LinkStats)> + '_ {
        self.graph
            .links
            .iter()
            .zip(&self.stats)
            .map(|(l, s)| (l.name.as_str(), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NetSpec;

    fn model(preset: &str, n: usize) -> NetModel {
        let hosts: Vec<String> = (0..n).map(|i| format!("h{i}")).collect();
        let spec = NetSpec::preset(preset, &hosts).unwrap();
        NetModel::build(&spec, &hosts, 1986).unwrap()
    }

    #[test]
    fn uncontended_full_mesh_matches_the_flat_law() {
        // One mesh link at defaults: 5000 µs + 4 µs/byte — the flat
        // model's one-hop wire, the conformance anchor.
        let mut m = model("full-mesh", 3);
        match m.transfer(0, 1, 100, 0) {
            Transfer::Deliver {
                total_us,
                queue_us,
                links,
            } => {
                assert_eq!(total_us, 5_000 + 400);
                assert_eq!(queue_us, 0);
                assert_eq!(links, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overlapping_transfers_see_fair_share_contention() {
        let mut m = model("full-mesh", 2);
        let first = m.transfer(0, 1, 1000, 0);
        let second = m.transfer(0, 1, 1000, 0);
        let (
            Transfer::Deliver { total_us: t1, .. },
            Transfer::Deliver {
                total_us: t2,
                queue_us,
                ..
            },
        ) = (first, second)
        else {
            panic!("both deliver");
        };
        // 1000 B at 250 kB/s = 4000 µs; the second flow shares: 8000 µs.
        assert_eq!(t1, 5_000 + 4_000);
        assert_eq!(t2, 5_000 + 8_000);
        assert_eq!(queue_us, 4_000);
        // After both complete the link is idle again.
        let third = m.transfer(0, 1, 1000, 1_000_000);
        assert_eq!(
            third,
            Transfer::Deliver {
                total_us: 9_000,
                queue_us: 0,
                links: 1
            }
        );
        let (_, s) = m.link_stats().next().unwrap();
        assert_eq!(s.sends, 3);
        assert_eq!(s.congested, 1);
        assert_eq!(s.bytes, 3000);
    }

    #[test]
    fn fat_tree_counts_bisection_bytes_only_on_core_links() {
        let mut m = model("fat-tree", 8);
        m.transfer(0, 1, 500, 0); // same pod: no core link
        assert_eq!(m.bisection_bytes, 0);
        // Cross-pod: up to a spine and back down — two core links.
        m.transfer(0, 7, 500, 0);
        assert_eq!(m.bisection_bytes, 1000);
    }

    #[test]
    fn cut_core_links_make_pods_unreachable() {
        let mut m = model("fat-tree", 8);
        assert!(m.set_link_up_by_name("core:tor0-spine0", false).is_some());
        assert!(m.set_link_up_by_name("core:tor0-spine1", false).is_some());
        assert_eq!(m.transfer(0, 7, 100, 0), Transfer::Unreachable);
        assert!(m.reachable(0, 3));
        assert!(m.set_link_up_by_name("core:tor0-spine0", true).is_some());
        assert!(m.reachable(0, 7));
        assert!(m.set_link_up_by_name("no-such-link", false).is_none());
    }

    #[test]
    fn lossy_links_drop_deterministically() {
        let run = || {
            let mut m = model("last-mile", 4);
            let mut drops = Vec::new();
            for i in 0..2000u64 {
                if m.transfer(0, 1, 64, i * 10_000) == Transfer::Dropped {
                    drops.push(i);
                }
            }
            drops
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same drops");
        // loss=0.02 per link, 2 links per path: ≈ 4% of 2000.
        assert!(a.len() > 20 && a.len() < 200, "{}", a.len());
        let m = {
            let mut m = model("last-mile", 4);
            for i in 0..100u64 {
                m.transfer(0, 1, 64, i * 10_000);
            }
            m
        };
        assert_eq!(m.routed_sends, 100);
    }

    #[test]
    fn control_traffic_does_not_touch_the_ledgers() {
        let mut m = model("full-mesh", 2);
        let rtt = m.wire_uncontended(0, 1, 100).unwrap();
        assert_eq!(rtt, 5_400);
        let t = m.transfer(0, 1, 100, 0);
        assert_eq!(
            t,
            Transfer::Deliver {
                total_us: 5_400,
                queue_us: 0,
                links: 1
            }
        );
    }
}
