//! # ppm-simnet — deterministic discrete-event substrate
//!
//! The foundation of the PPM reproduction: a deterministic discrete-event
//! [`engine`], simulated [`time`], seeded [`rng`], a host/link
//! [`topology`] with partitions and crashes, [`latency`] models calibrated
//! to the paper's Tables 1–2, and a structured [`trace`] log.
//!
//! Nothing in this crate knows about UNIX or the PPM; it is the "physics"
//! the higher layers run on. `ppm-simos` builds the simulated Berkeley
//! UNIX hosts on top of it, and `ppm-core` builds the Personal Process
//! Manager on top of that.
//!
//! ## Example
//!
//! ```
//! use ppm_simnet::engine::Engine;
//! use ppm_simnet::time::SimDuration;
//! use ppm_simnet::topology::{CpuClass, HostSpec, Topology};
//!
//! // Two hosts, one link, one event.
//! let mut topo = Topology::new();
//! let a = topo.add_host(HostSpec::new("calder", CpuClass::Vax780));
//! let b = topo.add_host(HostSpec::new("ucbarpa", CpuClass::Sun2));
//! topo.add_link(a, b);
//! assert_eq!(topo.hops(a, b), Some(1));
//!
//! let mut engine: Engine<&str> = Engine::new();
//! engine.schedule(SimDuration::from_millis(1), "hello");
//! assert_eq!(engine.pop().map(|(_, e)| e), Some("hello"));
//! ```

pub mod bandwidth;
pub mod engine;
pub mod fault;
pub mod hashx;
pub mod latency;
pub mod obs;
pub mod rng;
pub mod routing;
pub mod time;
pub mod topology;
pub mod trace;

pub use bandwidth::{NetModel, Transfer};
pub use engine::{Engine, EventId, QueueStats, TimerWheel};
pub use latency::LatencyModel;
pub use obs::{Registry, SpanLog};
pub use rng::SimRng;
pub use routing::RoutingTable;
pub use time::{SimDuration, SimTime};
pub use topology::{CpuClass, HostId, HostSpec, Topology};
pub use topology::{NetGraph, NetSpec};
pub use trace::{TraceCategory, TraceEntry, TraceLog};
