//! Deterministic randomness for the simulation.
//!
//! Every run is driven by a single seeded generator so that a given seed
//! reproduces the exact same event schedule. The helpers here produce the
//! small latency jitters the latency models apply on top of their
//! deterministic baselines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A seeded random number generator owned by the simulation world.
///
/// # Examples
///
/// ```
/// use ppm_simnet::rng::SimRng;
/// use ppm_simnet::time::SimDuration;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// let d = SimDuration::from_millis(10);
/// assert_eq!(a.jitter(d, 0.05), b.jitter(d, 0.05));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies a multiplicative jitter of up to `±fraction` to a duration.
    ///
    /// A `fraction` of `0.05` yields a uniformly distributed value in
    /// `[0.95 · d, 1.05 · d]`. Non-positive fractions return `d` unchanged.
    pub fn jitter(&mut self, d: SimDuration, fraction: f64) -> SimDuration {
        if fraction <= 0.0 || d.is_zero() {
            return d;
        }
        let k = 1.0 + self.inner.gen_range(-fraction..=fraction);
        d.mul_f64(k)
    }

    /// A uniformly distributed duration in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn duration_between(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "duration_between requires lo <= hi");
        if lo == hi {
            return lo;
        }
        SimDuration::from_micros(self.inner.gen_range(lo.as_micros()..=hi.as_micros()))
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// A uniformly distributed integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// An exponentially distributed duration with the given mean.
    ///
    /// Used by workload generators to produce Poisson-ish arrival patterns.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        mean.mul_f64(-u.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.unit_f64().to_bits(), b.unit_f64().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.unit_f64() == b.unit_f64()).count();
        assert!(same < 32);
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut rng = SimRng::seed_from(3);
        let d = SimDuration::from_millis(100);
        for _ in 0..1000 {
            let j = rng.jitter(d, 0.05);
            assert!(j >= SimDuration::from_micros(95_000));
            assert!(j <= SimDuration::from_micros(105_000));
        }
    }

    #[test]
    fn jitter_with_zero_fraction_is_identity() {
        let mut rng = SimRng::seed_from(4);
        let d = SimDuration::from_millis(10);
        assert_eq!(rng.jitter(d, 0.0), d);
        assert_eq!(rng.jitter(SimDuration::ZERO, 0.5), SimDuration::ZERO);
    }

    #[test]
    fn duration_between_is_inclusive() {
        let mut rng = SimRng::seed_from(5);
        let lo = SimDuration::from_micros(10);
        let hi = SimDuration::from_micros(12);
        for _ in 0..200 {
            let d = rng.duration_between(lo, hi);
            assert!(d >= lo && d <= hi);
        }
        assert_eq!(rng.duration_between(lo, lo), lo);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(6);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = SimRng::seed_from(8);
        let mean = SimDuration::from_millis(10);
        let n = 4000;
        let total: u64 = (0..n).map(|_| rng.exponential(mean).as_micros()).sum();
        let avg = total as f64 / n as f64;
        // Mean of Exp(10ms) should land near 10_000us; allow generous slack.
        assert!((8_000.0..12_000.0).contains(&avg), "avg={avg}");
    }
}
