//! Calibrated latency models.
//!
//! The paper reports three kinds of elapsed times, all load- and
//! hardware-dependent:
//!
//! * **Table 1** — delivery time of a 112-byte kernel→LPM message as a
//!   function of the host's load average and CPU class.
//! * **Table 2** — process creation/control times within a host and across
//!   one or two hops.
//! * **Table 3** — snapshot gathering over four multi-host topologies.
//!
//! This module supplies the two substrate-level models those measurements
//! rest on: the **kernel message path** (an M/M/1-style queueing law fitted
//! to Table 1) and the **wire** (per-hop + per-byte cost fitted to the
//! one-hop → two-hop increment of Table 2). Costs specific to the PPM's own
//! processing (handler dispatch, fork, bookkeeping) live in
//! `ppm-core::config` — they are properties of the manager, not the
//! substrate.
//!
//! ## Fit for Table 1
//!
//! Delivery time is modelled as an M/M/1 response time
//! `t(la) = s / (1 − la/L)` with per-class service time `s` and saturation
//! capacity `L`, fitted through the paper's bucket midpoints:
//!
//! | class | s (ms) | L | paper points (la, ms) |
//! |---|---|---|---|
//! | VAX 11/780 | 6.44 | 4.75 | (0.5, 7.2) (1.5, 9.8) (2.5, 13.6) |
//! | VAX 11/750 | 6.53 | 5.35 | (0.5, 7.2) (1.5, 9.6) (2.5, 12.8) (3.5, 18.9) |
//! | SUN II | 7.33 | 4.22 | (0.5, 8.31) (1.5, 14.13) (2.5, 22.0) (3.5, 42.7) |
//!
//! The SUN II's small `L` captures the paper's observation that the slowest
//! machine degrades fastest: at la ≈ 3.5 it is already near saturation.

use crate::time::SimDuration;
use crate::topology::CpuClass;

/// Reference message size (bytes) at which the Table 1 fit was made.
pub const KERNEL_MSG_REF_BYTES: usize = 112;

/// Per-class constants of the kernel message model.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPathParams {
    /// Zero-load service time in milliseconds for a 112-byte message.
    pub service_ms: f64,
    /// Load-average value at which the path saturates.
    pub capacity: f64,
    /// Calibration curve `(la, ms)`: the paper's own measured bucket
    /// midpoints, interpolated piecewise-linearly. Outside the curve the
    /// M/M/1 law extrapolates from the nearest end point. Empty = pure
    /// M/M/1.
    pub curve: Vec<(f64, f64)>,
}

/// The substrate latency model.
///
/// The `Default` instance carries the constants fitted to the paper; tests
/// and ablation benches may construct variants.
///
/// # Examples
///
/// ```
/// use ppm_simnet::latency::LatencyModel;
/// use ppm_simnet::topology::CpuClass;
///
/// let m = LatencyModel::default();
/// let light = m.kernel_msg(CpuClass::Sun2, 0.5, 112);
/// let heavy = m.kernel_msg(CpuClass::Sun2, 3.5, 112);
/// assert!(heavy > light, "load increases delivery time");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Kernel path constants per CPU class, in [`CpuClass::ALL`] order.
    pub kernel_path: [KernelPathParams; 3],
    /// Fraction of the kernel-message service time that is size-independent.
    pub kernel_fixed_fraction: f64,
    /// Fixed per-hop wire latency (medium access + protocol processing).
    pub hop_base: SimDuration,
    /// Per-byte wire cost (10 Mb/s Ethernet plus per-byte protocol work).
    pub per_byte: SimDuration,
    /// Multiplicative jitter fraction applied by callers that own an RNG.
    pub jitter_fraction: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            kernel_path: [
                // CpuClass::Vax780
                KernelPathParams {
                    service_ms: 6.44,
                    capacity: 4.75,
                    curve: vec![(0.5, 7.2), (1.5, 9.8), (2.5, 13.6)],
                },
                // CpuClass::Vax750
                KernelPathParams {
                    service_ms: 6.53,
                    capacity: 5.35,
                    curve: vec![(0.5, 7.2), (1.5, 9.6), (2.5, 12.8), (3.5, 18.9)],
                },
                // CpuClass::Sun2
                KernelPathParams {
                    service_ms: 7.33,
                    capacity: 4.22,
                    curve: vec![(0.5, 8.31), (1.5, 14.13), (2.5, 22.0), (3.5, 42.7)],
                },
            ],
            kernel_fixed_fraction: 0.8,
            hop_base: SimDuration::from_micros(5_000),
            per_byte: SimDuration::from_micros(4),
            jitter_fraction: 0.03,
        }
    }
}

impl LatencyModel {
    /// Constants of the kernel path for one CPU class.
    pub fn kernel_params(&self, cpu: CpuClass) -> &KernelPathParams {
        let idx = CpuClass::ALL
            .iter()
            .position(|c| *c == cpu)
            .expect("CpuClass::ALL covers every class");
        &self.kernel_path[idx]
    }

    /// The 112-byte delivery time at load `la`: the calibration curve
    /// where it has support, M/M/1 extrapolation beyond its ends.
    fn kernel_base_ms(p: &KernelPathParams, la: f64) -> f64 {
        let mm1_scale = |from_la: f64, to_la: f64| {
            let to_la = to_la.clamp(0.0, p.capacity * 0.97);
            (1.0 - from_la / p.capacity) / (1.0 - to_la / p.capacity)
        };
        if p.curve.is_empty() {
            return p.service_ms * mm1_scale(0.0, la);
        }
        let (first_la, first_ms) = p.curve[0];
        let &(last_la, last_ms) = p.curve.last().expect("nonempty");
        if la <= first_la {
            // Back-extrapolate with the queueing law.
            return first_ms * mm1_scale(first_la, la);
        }
        if la >= last_la {
            return last_ms * mm1_scale(last_la, la);
        }
        for w in p.curve.windows(2) {
            let (la0, ms0) = w[0];
            let (la1, ms1) = w[1];
            if la <= la1 {
                let t = (la - la0) / (la1 - la0);
                return ms0 + t * (ms1 - ms0);
            }
        }
        last_ms
    }

    /// Delivery time of a kernel→LPM message of `bytes` bytes on a host of
    /// class `cpu` whose current load average is `load_avg` (Table 1 model).
    ///
    /// The load average is clamped just below the saturation capacity so a
    /// transiently over-saturated host yields a very large—but finite—time.
    pub fn kernel_msg(&self, cpu: CpuClass, load_avg: f64, bytes: usize) -> SimDuration {
        let p = self.kernel_params(cpu);
        let la = load_avg.clamp(0.0, p.capacity * 0.97);
        // Size scaling around the 112-byte calibration point.
        let size_scale = self.kernel_fixed_fraction
            + (1.0 - self.kernel_fixed_fraction) * bytes as f64 / KERNEL_MSG_REF_BYTES as f64;
        let ms = Self::kernel_base_ms(p, la) * size_scale;
        SimDuration::from_millis_f64(ms)
    }

    /// One-hop wire time for a message of `bytes` bytes.
    pub fn wire_hop(&self, bytes: usize) -> SimDuration {
        self.hop_base + SimDuration::from_micros(self.per_byte.as_micros() * bytes as u64)
    }

    /// Wire time over `hops` store-and-forward hops.
    ///
    /// Zero hops (intra-host delivery between processes) costs a fixed
    /// small context-switch time rather than touching the wire.
    pub fn wire(&self, hops: u32, bytes: usize) -> SimDuration {
        if hops == 0 {
            return self.local_ipc(bytes);
        }
        let one = self.wire_hop(bytes);
        SimDuration::from_micros(one.as_micros() * hops as u64)
    }

    /// Intra-host IPC delivery time (socket write + scheduler wakeup).
    pub fn local_ipc(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros(800 + bytes as u64 / 2)
    }

    /// Multiplier converting a nominal VAX-780-at-idle CPU cost into the
    /// cost on the given class under the given load.
    ///
    /// Uses the same queueing law as the kernel path so every CPU-bound
    /// activity on a host degrades consistently with Table 1.
    pub fn cpu_scale(&self, cpu: CpuClass, load_avg: f64) -> f64 {
        let p = self.kernel_params(cpu);
        let la = load_avg.clamp(0.0, p.capacity * 0.97);
        let queueing = 1.0 / (1.0 - la / p.capacity);
        queueing / cpu.speed_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fitted model must land within 20% of every Table 1 cell —
    /// the "shape" criterion from the reproduction brief.
    #[test]
    fn kernel_msg_matches_table1_within_tolerance() {
        let m = LatencyModel::default();
        // (class, load-bucket midpoint, paper ms)
        let cells: &[(CpuClass, f64, f64)] = &[
            (CpuClass::Vax780, 0.5, 7.2),
            (CpuClass::Vax780, 1.5, 9.8),
            (CpuClass::Vax780, 2.5, 13.6),
            (CpuClass::Vax750, 0.5, 7.2),
            (CpuClass::Vax750, 1.5, 9.6),
            (CpuClass::Vax750, 2.5, 12.8),
            (CpuClass::Vax750, 3.5, 18.9),
            (CpuClass::Sun2, 0.5, 8.31),
            (CpuClass::Sun2, 1.5, 14.13),
            (CpuClass::Sun2, 2.5, 22.0),
            (CpuClass::Sun2, 3.5, 42.7),
        ];
        for &(cpu, la, paper) in cells {
            let got = m.kernel_msg(cpu, la, 112).as_millis_f64();
            let rel = (got - paper).abs() / paper;
            assert!(
                rel < 0.20,
                "{cpu} la={la}: model {got:.2}ms vs paper {paper}ms (rel err {rel:.2})"
            );
        }
    }

    #[test]
    fn kernel_msg_is_monotone_in_load() {
        let m = LatencyModel::default();
        for cpu in CpuClass::ALL {
            let mut prev = SimDuration::ZERO;
            for i in 0..8 {
                let t = m.kernel_msg(cpu, i as f64 * 0.5, 112);
                assert!(t > prev, "{cpu} not monotone at step {i}");
                prev = t;
            }
        }
    }

    #[test]
    fn kernel_msg_is_monotone_in_size() {
        let m = LatencyModel::default();
        let small = m.kernel_msg(CpuClass::Vax780, 1.0, 16);
        let big = m.kernel_msg(CpuClass::Vax780, 1.0, 1024);
        assert!(big > small);
    }

    #[test]
    fn kernel_msg_survives_oversaturation() {
        let m = LatencyModel::default();
        let t = m.kernel_msg(CpuClass::Sun2, 100.0, 112);
        assert!(t.as_millis_f64() < 1_000.0, "clamped, finite: {t}");
        assert!(t > m.kernel_msg(CpuClass::Sun2, 1.0, 112));
    }

    #[test]
    fn sun_degrades_faster_than_vaxen() {
        let m = LatencyModel::default();
        let ratio = |cpu: CpuClass| {
            m.kernel_msg(cpu, 3.5, 112).as_millis_f64()
                / m.kernel_msg(cpu, 0.5, 112).as_millis_f64()
        };
        assert!(ratio(CpuClass::Sun2) > ratio(CpuClass::Vax780));
        assert!(ratio(CpuClass::Sun2) > ratio(CpuClass::Vax750));
    }

    /// Table 2 shape: the increment from one hop to two hops is ~11 ms for
    /// a control round trip (two small messages crossing the extra hop).
    #[test]
    fn extra_hop_round_trip_costs_about_11ms() {
        let m = LatencyModel::default();
        let req = m.wire_hop(140); // control request with route
        let resp = m.wire_hop(64); // short status reply
        let extra = (req + resp).as_millis_f64();
        assert!(
            (9.0..14.0).contains(&extra),
            "extra-hop round trip {extra:.2}ms, expected ≈11ms"
        );
    }

    #[test]
    fn wire_scales_linearly_with_hops() {
        let m = LatencyModel::default();
        let one = m.wire(1, 100).as_micros();
        let three = m.wire(3, 100).as_micros();
        assert_eq!(three, one * 3);
    }

    #[test]
    fn zero_hops_is_local_ipc() {
        let m = LatencyModel::default();
        assert_eq!(m.wire(0, 100), m.local_ipc(100));
        assert!(m.local_ipc(100) < m.wire_hop(100));
    }

    #[test]
    fn cpu_scale_is_one_for_idle_vax780() {
        let m = LatencyModel::default();
        let s = m.cpu_scale(CpuClass::Vax780, 0.0);
        assert!((s - 1.0).abs() < 1e-9);
        assert!(m.cpu_scale(CpuClass::Sun2, 0.0) > 1.0);
        assert!(m.cpu_scale(CpuClass::Vax780, 2.0) > 1.0);
    }
}

#[cfg(test)]
mod curve_tests {
    use super::*;

    #[test]
    fn calibration_curve_is_hit_exactly_at_its_points() {
        let m = LatencyModel::default();
        for (cpu, pts) in [
            (CpuClass::Vax780, vec![(0.5, 7.2), (1.5, 9.8), (2.5, 13.6)]),
            (
                CpuClass::Vax750,
                vec![(0.5, 7.2), (1.5, 9.6), (2.5, 12.8), (3.5, 18.9)],
            ),
            (
                CpuClass::Sun2,
                vec![(0.5, 8.31), (1.5, 14.13), (2.5, 22.0), (3.5, 42.7)],
            ),
        ] {
            for (la, ms) in pts {
                let got = m.kernel_msg(cpu, la, 112).as_millis_f64();
                assert!((got - ms).abs() < 0.01, "{cpu} la={la}: {got} vs {ms}");
            }
        }
    }

    #[test]
    fn interpolation_is_between_neighbours() {
        let m = LatencyModel::default();
        let mid = m.kernel_msg(CpuClass::Sun2, 2.0, 112).as_millis_f64();
        assert!(mid > 14.13 && mid < 22.0, "{mid}");
        // Linear midpoint exactly.
        assert!((mid - (14.13 + 22.0) / 2.0).abs() < 0.01);
    }

    #[test]
    fn extrapolation_is_continuous_at_curve_ends() {
        let m = LatencyModel::default();
        let at_first = m.kernel_msg(CpuClass::Sun2, 0.5, 112).as_millis_f64();
        let just_below = m.kernel_msg(CpuClass::Sun2, 0.4999, 112).as_millis_f64();
        assert!(
            (at_first - just_below).abs() < 0.05,
            "{at_first} vs {just_below}"
        );
        let at_last = m.kernel_msg(CpuClass::Sun2, 3.5, 112).as_millis_f64();
        let just_above = m.kernel_msg(CpuClass::Sun2, 3.5001, 112).as_millis_f64();
        assert!(just_above >= at_last);
        assert!((just_above - at_last).abs() < 0.1);
    }

    #[test]
    fn empty_curve_falls_back_to_pure_mm1() {
        let mut m = LatencyModel::default();
        m.kernel_path[0].curve.clear();
        let p = m.kernel_params(CpuClass::Vax780).clone();
        let at0 = m.kernel_msg(CpuClass::Vax780, 0.0, 112).as_millis_f64();
        assert!((at0 - p.service_ms * 1.0).abs() < 0.01);
        let at2 = m.kernel_msg(CpuClass::Vax780, 2.0, 112).as_millis_f64();
        let expect = p.service_ms / (1.0 - 2.0 / p.capacity);
        assert!((at2 - expect).abs() < 0.01);
    }
}
