//! Observability primitives (re-exported from the runtime layer).
//!
//! Metrics and span logs moved to `ppm-runtime` so that programs record
//! them identically under both backends. This module keeps the historical
//! `ppm_simnet::obs` paths.

pub use ppm_runtime::obs::*;
