//! Deterministic fault injection: scripted fault plans.
//!
//! A [`FaultPlan`] describes *when the world misbehaves*: hosts crash and
//! restart, links are cut and heal, processes are killed, and the wire
//! drops, duplicates, reorders or delays messages with seeded
//! probabilities. Plans are text files (one statement per line, `#`
//! comments) so a chaos scenario is an artifact that can be committed,
//! diffed and replayed:
//!
//! ```text
//! seed 7
//! at 2s crash calder restart 6s       # crash, heal 6s later
//! at 3s cut calder kim heal 2s        # partition, heal 2s later
//! at 4s cut link core:tor0-spine1     # cut a named netmodel link
//! at 5s kill calder lpm               # SIGKILL by command prefix
//! drop 0.05 from calder to kim after 1s until 9s
//! dup 0.02
//! reorder 0.1 skew 3ms
//! delay 0.2 add 40ms
//! ```
//!
//! Nothing here executes faults: the simulation layers interpret the
//! plan by scheduling [`FaultEvent`]s on the event engine and consulting
//! [`WireFaults`] on every message send. The wire-fault generator owns
//! its **own** seeded [`SimRng`] stream, so fault decisions never
//! perturb the latency jitter stream — the same plan and seed produce
//! the same fault schedule whether or not other randomness changes.

use std::fmt;

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A timed fault: what happens and when.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Absolute simulation time of the fault.
    pub at: SimTime,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// The kinds of scheduled (non-probabilistic) faults.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Power-fail a host: every process, FD and socket dies.
    Crash { host: String },
    /// Power the host back up (kernel reboots, daemons re-run).
    Restart { host: String },
    /// Cut the link between two hosts.
    LinkDown { a: String, b: String },
    /// Heal the link between two hosts.
    LinkUp { a: String, b: String },
    /// Cut a *named* netmodel link (`cut link <name>`); requires a
    /// topology to be installed so the name can resolve.
    NetLinkDown { link: String },
    /// Heal a named netmodel link.
    NetLinkUp { link: String },
    /// SIGKILL every live process on `host` whose command starts with
    /// `command` — the way a plan kills an LPM without taking the whole
    /// host down.
    Kill { host: String, command: String },
}

/// The kinds of probabilistic per-message wire faults.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFaultKind {
    /// Silently lose the message.
    Drop,
    /// Deliver the message twice.
    Dup,
    /// Delay this message past the FIFO floor so a later message can
    /// overtake it.
    Reorder {
        /// How far past its nominal arrival the message lands.
        skew: SimDuration,
    },
    /// A latency spike: extra one-way delay.
    Delay {
        /// The added delay.
        extra: SimDuration,
    },
}

/// One probabilistic wire rule, optionally scoped by direction and time.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRule {
    /// The fault applied when the rule fires.
    pub kind: WireFaultKind,
    /// Per-message firing probability in `[0, 1]`.
    pub p: f64,
    /// Only messages sent from this host (any, when `None`).
    pub from: Option<String>,
    /// Only messages sent to this host (any, when `None`).
    pub to: Option<String>,
    /// Only messages sent at or after this time.
    pub after: Option<SimTime>,
    /// Only messages sent strictly before this time.
    pub until: Option<SimTime>,
}

impl WireRule {
    /// An unscoped rule: applies to every message, forever.
    pub fn new(kind: WireFaultKind, p: f64) -> Self {
        WireRule {
            kind,
            p,
            from: None,
            to: None,
            after: None,
            until: None,
        }
    }

    /// Whether the rule covers a message `from → to` sent at `now`.
    pub fn applies(&self, from: &str, to: &str, now: SimTime) -> bool {
        self.from.as_deref().is_none_or(|f| f == from)
            && self.to.as_deref().is_none_or(|t| t == to)
            && self.after.is_none_or(|a| now >= a)
            && self.until.is_none_or(|u| now < u)
    }
}

/// A full fault plan: seed, scheduled faults, wire rules.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the dedicated wire-fault RNG stream.
    pub seed: u64,
    /// Scheduled faults, in plan order (ties scheduled in file order).
    pub events: Vec<FaultEvent>,
    /// Probabilistic wire rules, consulted in plan order.
    pub wire: Vec<WireRule>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1986,
            events: Vec::new(),
            wire: Vec::new(),
        }
    }
}

/// A parse failure, with the 1-based line it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FaultPlanError {}

fn err(line: usize, message: impl Into<String>) -> FaultPlanError {
    FaultPlanError {
        line,
        message: message.into(),
    }
}

fn parse_duration(s: &str, line: usize) -> Result<SimDuration, FaultPlanError> {
    let split = s
        .find(|c: char| c.is_alphabetic())
        .ok_or_else(|| err(line, format!("duration {s:?} needs a unit (us, ms or s)")))?;
    let (num, unit) = s.split_at(split);
    let n: u64 = num
        .parse()
        .map_err(|_| err(line, format!("bad duration number {num:?}")))?;
    match unit {
        "us" => Ok(SimDuration::from_micros(n)),
        "ms" => Ok(SimDuration::from_millis(n)),
        "s" => Ok(SimDuration::from_secs(n)),
        other => Err(err(line, format!("unknown duration unit {other:?}"))),
    }
}

fn parse_time(s: &str, line: usize) -> Result<SimTime, FaultPlanError> {
    Ok(SimTime::ZERO + parse_duration(s, line)?)
}

fn parse_prob(s: &str, line: usize) -> Result<f64, FaultPlanError> {
    let p: f64 = s
        .parse()
        .map_err(|_| err(line, format!("bad probability {s:?}")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(err(line, format!("probability {p} outside [0, 1]")));
    }
    Ok(p)
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.wire.is_empty()
    }

    /// Parses a plan from text.
    ///
    /// # Examples
    ///
    /// ```
    /// use ppm_simnet::fault::FaultPlan;
    /// let plan = FaultPlan::parse("seed 7\nat 2s crash calder restart 6s\ndrop 0.1")?;
    /// assert_eq!(plan.seed, 7);
    /// assert_eq!(plan.events.len(), 2, "crash + sugared restart");
    /// assert_eq!(plan.wire.len(), 1);
    /// # Ok::<(), ppm_simnet::fault::FaultPlanError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`FaultPlanError`] with the offending line number.
    pub fn parse(text: &str) -> Result<Self, FaultPlanError> {
        let mut plan = FaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let stripped = raw.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = stripped.split_whitespace().collect();
            match tokens[0] {
                "seed" => {
                    let v = tokens
                        .get(1)
                        .ok_or_else(|| err(line, "seed needs a value"))?;
                    plan.seed = v
                        .parse()
                        .map_err(|_| err(line, format!("bad seed {v:?}")))?;
                }
                "at" => parse_event(&mut plan, &tokens[1..], line)?,
                "drop" | "dup" | "reorder" | "delay" => {
                    plan.wire.push(parse_wire_rule(&tokens, line)?);
                }
                other => return Err(err(line, format!("unknown statement {other:?}"))),
            }
        }
        Ok(plan)
    }

    /// Renders the plan back to canonical text (sugar expanded, times in
    /// microseconds). `parse(encode(p))` reproduces `p` exactly.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "seed {}", self.seed);
        for ev in &self.events {
            let at = ev.at.as_micros();
            match &ev.kind {
                FaultKind::Crash { host } => {
                    let _ = writeln!(out, "at {at}us crash {host}");
                }
                FaultKind::Restart { host } => {
                    let _ = writeln!(out, "at {at}us restart {host}");
                }
                FaultKind::LinkDown { a, b } => {
                    let _ = writeln!(out, "at {at}us link-down {a} {b}");
                }
                FaultKind::LinkUp { a, b } => {
                    let _ = writeln!(out, "at {at}us link-up {a} {b}");
                }
                FaultKind::NetLinkDown { link } => {
                    let _ = writeln!(out, "at {at}us link-down link {link}");
                }
                FaultKind::NetLinkUp { link } => {
                    let _ = writeln!(out, "at {at}us link-up link {link}");
                }
                FaultKind::Kill { host, command } => {
                    let _ = writeln!(out, "at {at}us kill {host} {command}");
                }
            }
        }
        for rule in &self.wire {
            match &rule.kind {
                WireFaultKind::Drop => {
                    let _ = write!(out, "drop {}", rule.p);
                }
                WireFaultKind::Dup => {
                    let _ = write!(out, "dup {}", rule.p);
                }
                WireFaultKind::Reorder { skew } => {
                    let _ = write!(out, "reorder {} skew {}us", rule.p, skew.as_micros());
                }
                WireFaultKind::Delay { extra } => {
                    let _ = write!(out, "delay {} add {}us", rule.p, extra.as_micros());
                }
            }
            if let Some(f) = &rule.from {
                let _ = write!(out, " from {f}");
            }
            if let Some(t) = &rule.to {
                let _ = write!(out, " to {t}");
            }
            if let Some(a) = rule.after {
                let _ = write!(out, " after {}us", a.as_micros());
            }
            if let Some(u) = rule.until {
                let _ = write!(out, " until {}us", u.as_micros());
            }
            out.push('\n');
        }
        out
    }
}

fn parse_event(plan: &mut FaultPlan, tokens: &[&str], line: usize) -> Result<(), FaultPlanError> {
    let when = tokens.first().ok_or_else(|| err(line, "at needs a time"))?;
    let at = parse_time(when, line)?;
    let verb = tokens
        .get(1)
        .ok_or_else(|| err(line, "at needs a fault verb"))?;
    let need = |i: usize, what: &str| -> Result<String, FaultPlanError> {
        tokens
            .get(i)
            .map(|t| t.to_string())
            .ok_or_else(|| err(line, format!("{verb} needs {what}")))
    };
    match *verb {
        "crash" => {
            let host = need(2, "HOST")?;
            plan.events.push(FaultEvent {
                at,
                kind: FaultKind::Crash { host: host.clone() },
            });
            // Sugar: `crash HOST restart DUR` heals the host DUR later.
            match tokens.get(3) {
                Some(&"restart") => {
                    let d = parse_duration(&need(4, "a delay after `restart`")?, line)?;
                    plan.events.push(FaultEvent {
                        at: at + d,
                        kind: FaultKind::Restart { host },
                    });
                }
                Some(other) => {
                    return Err(err(line, format!("unknown crash option {other:?}")));
                }
                None => {}
            }
        }
        "restart" => {
            plan.events.push(FaultEvent {
                at,
                kind: FaultKind::Restart {
                    host: need(2, "HOST")?,
                },
            });
        }
        "cut" | "link-down" => {
            // Sugar: `cut link NAME [heal DUR]` targets a named netmodel
            // link instead of a host pair.
            if tokens.get(2) == Some(&"link") {
                let link = need(3, "a link name after `link`")?;
                plan.events.push(FaultEvent {
                    at,
                    kind: FaultKind::NetLinkDown { link: link.clone() },
                });
                match tokens.get(4) {
                    Some(&"heal") => {
                        let d = parse_duration(&need(5, "a delay after `heal`")?, line)?;
                        plan.events.push(FaultEvent {
                            at: at + d,
                            kind: FaultKind::NetLinkUp { link },
                        });
                    }
                    Some(other) => {
                        return Err(err(line, format!("unknown cut option {other:?}")));
                    }
                    None => {}
                }
                return Ok(());
            }
            let a = need(2, "two hosts")?;
            let b = need(3, "two hosts")?;
            plan.events.push(FaultEvent {
                at,
                kind: FaultKind::LinkDown {
                    a: a.clone(),
                    b: b.clone(),
                },
            });
            // Sugar: `cut A B heal DUR` restores the link DUR later.
            match tokens.get(4) {
                Some(&"heal") => {
                    let d = parse_duration(&need(5, "a delay after `heal`")?, line)?;
                    plan.events.push(FaultEvent {
                        at: at + d,
                        kind: FaultKind::LinkUp { a, b },
                    });
                }
                Some(other) => {
                    return Err(err(line, format!("unknown cut option {other:?}")));
                }
                None => {}
            }
        }
        "link-up" | "heal" => {
            if tokens.get(2) == Some(&"link") {
                plan.events.push(FaultEvent {
                    at,
                    kind: FaultKind::NetLinkUp {
                        link: need(3, "a link name after `link`")?,
                    },
                });
                return Ok(());
            }
            plan.events.push(FaultEvent {
                at,
                kind: FaultKind::LinkUp {
                    a: need(2, "two hosts")?,
                    b: need(3, "two hosts")?,
                },
            });
        }
        "kill" => {
            plan.events.push(FaultEvent {
                at,
                kind: FaultKind::Kill {
                    host: need(2, "HOST")?,
                    command: need(3, "a command prefix")?,
                },
            });
        }
        other => return Err(err(line, format!("unknown fault verb {other:?}"))),
    }
    Ok(())
}

fn parse_wire_rule(tokens: &[&str], line: usize) -> Result<WireRule, FaultPlanError> {
    let verb = tokens[0];
    let p = parse_prob(
        tokens
            .get(1)
            .ok_or_else(|| err(line, format!("{verb} needs a probability")))?,
        line,
    )?;
    let mut i = 2;
    let value = |what: &str, i: usize| -> Result<&str, FaultPlanError> {
        tokens
            .get(i)
            .copied()
            .ok_or_else(|| err(line, format!("{verb} needs {what}")))
    };
    let kind = match verb {
        "drop" => WireFaultKind::Drop,
        "dup" => WireFaultKind::Dup,
        "reorder" => {
            if tokens.get(2) != Some(&"skew") {
                return Err(err(line, "reorder needs `skew DUR`"));
            }
            let skew = parse_duration(value("a duration after `skew`", 3)?, line)?;
            i = 4;
            WireFaultKind::Reorder { skew }
        }
        "delay" => {
            if tokens.get(2) != Some(&"add") {
                return Err(err(line, "delay needs `add DUR`"));
            }
            let extra = parse_duration(value("a duration after `add`", 3)?, line)?;
            i = 4;
            WireFaultKind::Delay { extra }
        }
        other => return Err(err(line, format!("unknown wire fault {other:?}"))),
    };
    let mut rule = WireRule::new(kind, p);
    while i < tokens.len() {
        match tokens[i] {
            "from" => rule.from = Some(value("a host after `from`", i + 1)?.to_string()),
            "to" => rule.to = Some(value("a host after `to`", i + 1)?.to_string()),
            "after" => rule.after = Some(parse_time(value("a time after `after`", i + 1)?, line)?),
            "until" => rule.until = Some(parse_time(value("a time after `until`", i + 1)?, line)?),
            other => return Err(err(line, format!("unknown rule option {other:?}"))),
        }
        i += 2;
    }
    Ok(rule)
}

/// What the wire does to one message.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireDecision {
    /// Lose the message entirely.
    pub drop: bool,
    /// Deliver it twice.
    pub dup: bool,
    /// Extra one-way delay (latency spikes, summed across rules).
    pub extra: SimDuration,
    /// Deliver late, past the FIFO floor, so later traffic overtakes.
    pub reorder: Option<SimDuration>,
    /// How many rules fired on this message (for `faults.injected`).
    pub fired: u32,
}

/// The runtime wire-fault generator: the plan's rules plus a dedicated
/// seeded RNG stream.
///
/// Every rule matching a message consumes exactly one Bernoulli draw
/// whether or not it fires, so the decision sequence is a pure function
/// of `(seed, message sequence)` — two runs over the same traffic make
/// identical decisions.
#[derive(Debug, Clone)]
pub struct WireFaults {
    rules: Vec<WireRule>,
    rng: SimRng,
}

impl WireFaults {
    /// Builds the generator from a plan's wire rules and seed.
    pub fn new(plan: &FaultPlan) -> Self {
        WireFaults {
            rules: plan.wire.clone(),
            rng: SimRng::seed_from(plan.seed),
        }
    }

    /// True when no rules are installed (the common, fault-free case).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Decides the fate of one message `from → to` sent at `now`.
    pub fn decide(&mut self, from: &str, to: &str, now: SimTime) -> WireDecision {
        let mut d = WireDecision::default();
        for rule in &self.rules {
            if !rule.applies(from, to, now) {
                continue;
            }
            if !self.rng.chance(rule.p) {
                continue;
            }
            d.fired += 1;
            match &rule.kind {
                WireFaultKind::Drop => d.drop = true,
                WireFaultKind::Dup => d.dup = true,
                WireFaultKind::Reorder { skew } => d.reorder = Some(*skew),
                WireFaultKind::Delay { extra } => {
                    d.extra = SimDuration::from_micros(d.extra.as_micros() + extra.as_micros());
                }
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAN: &str = r#"
# chaos: crash calder, partition kim, flaky wire
seed 42
at 2s crash calder restart 6s
at 3s cut calder kim heal 2s
at 10s kill kim lpm
drop 0.1 from calder to kim after 1s until 9s
dup 0.05
reorder 0.2 skew 3ms
delay 0.5 add 40ms to kim
"#;

    #[test]
    fn parses_the_example_with_sugar_expanded() {
        let plan = FaultPlan::parse(PLAN).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.events.len(), 5, "crash+restart, cut+heal, kill");
        assert_eq!(
            plan.events[1],
            FaultEvent {
                at: SimTime::from_secs(8),
                kind: FaultKind::Restart {
                    host: "calder".into()
                },
            }
        );
        assert_eq!(
            plan.events[3].kind,
            FaultKind::LinkUp {
                a: "calder".into(),
                b: "kim".into()
            }
        );
        assert_eq!(plan.wire.len(), 4);
        let drop = &plan.wire[0];
        assert_eq!(drop.kind, WireFaultKind::Drop);
        assert_eq!(drop.from.as_deref(), Some("calder"));
        assert_eq!(drop.to.as_deref(), Some("kim"));
        assert_eq!(drop.after, Some(SimTime::from_secs(1)));
        assert_eq!(drop.until, Some(SimTime::from_secs(9)));
    }

    #[test]
    fn cut_link_sugar_targets_named_links() {
        let plan = FaultPlan::parse(
            "at 1s cut link core:tor0-spine1 heal 2s\nat 5s link-down link wan:h3\nat 6s heal link wan:h3",
        )
        .unwrap();
        assert_eq!(
            plan.events[0].kind,
            FaultKind::NetLinkDown {
                link: "core:tor0-spine1".into()
            }
        );
        assert_eq!(
            plan.events[1],
            FaultEvent {
                at: SimTime::from_secs(3),
                kind: FaultKind::NetLinkUp {
                    link: "core:tor0-spine1".into()
                }
            }
        );
        assert_eq!(
            plan.events[3].kind,
            FaultKind::NetLinkUp {
                link: "wan:h3".into()
            }
        );
        let again = FaultPlan::parse(&plan.encode()).unwrap();
        assert_eq!(plan, again);
        assert!(FaultPlan::parse("at 1s cut link").is_err());
        assert!(FaultPlan::parse("at 1s cut link x frob").is_err());
    }

    #[test]
    fn encode_parse_roundtrips() {
        let plan = FaultPlan::parse(PLAN).unwrap();
        let text = plan.encode();
        let again = FaultPlan::parse(&text).unwrap();
        assert_eq!(plan, again, "canonical text reproduces the plan:\n{text}");
    }

    #[test]
    fn rule_scoping() {
        let plan = FaultPlan::parse("drop 1.0 from a to b after 1s until 2s").unwrap();
        let r = &plan.wire[0];
        assert!(r.applies("a", "b", SimTime::from_millis(1500)));
        assert!(!r.applies("b", "a", SimTime::from_millis(1500)));
        assert!(!r.applies("a", "c", SimTime::from_millis(1500)));
        assert!(!r.applies("a", "b", SimTime::from_millis(999)));
        assert!(
            !r.applies("a", "b", SimTime::from_secs(2)),
            "until excludes"
        );
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::parse("seed 9\ndrop 0.3\ndup 0.3\nreorder 0.3 skew 1ms").unwrap();
        let mut a = WireFaults::new(&plan);
        let mut b = WireFaults::new(&plan);
        for i in 0..200u64 {
            let now = SimTime::from_micros(i * 37);
            assert_eq!(a.decide("x", "y", now), b.decide("x", "y", now));
        }
    }

    #[test]
    fn certain_drop_always_fires() {
        let plan = FaultPlan::parse("drop 1.0").unwrap();
        let mut w = WireFaults::new(&plan);
        let d = w.decide("x", "y", SimTime::ZERO);
        assert!(d.drop);
        assert_eq!(d.fired, 1);
    }

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::parse("# nothing\n").unwrap();
        assert!(plan.is_empty());
        assert!(WireFaults::new(&plan).is_empty());
        assert_eq!(plan.seed, 1986, "default seed");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = FaultPlan::parse("seed 1\nat 1s explode calder").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("explode"), "{e}");
        let e = FaultPlan::parse("drop 1.5").unwrap_err();
        assert!(e.message.contains("outside"), "{e}");
        let e = FaultPlan::parse("at 1s crash").unwrap_err();
        assert!(e.message.contains("HOST"), "{e}");
        let e = FaultPlan::parse("reorder 0.1").unwrap_err();
        assert!(e.message.contains("skew"), "{e}");
    }

    #[test]
    fn delay_rules_accumulate() {
        let plan = FaultPlan::parse("delay 1.0 add 10ms\ndelay 1.0 add 5ms").unwrap();
        let mut w = WireFaults::new(&plan);
        let d = w.decide("x", "y", SimTime::ZERO);
        assert_eq!(d.extra, SimDuration::from_millis(15));
        assert_eq!(d.fired, 2);
    }
}
