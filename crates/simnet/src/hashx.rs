//! Deterministic hashing (re-exported from the runtime layer).

pub use ppm_runtime::hashx::*;
