//! Static shortest-path routing over the physical [`NetGraph`].
//!
//! The table is precomputed: one BFS per host over live nodes and live
//! links (neighbours visited in ascending node order), then one canonical
//! path per unordered host pair. Two properties are guaranteed by
//! construction, and property-tested in `tests/prop_simnet.rs`:
//!
//! * **Determinism** — the table is a pure function of the graph. Same
//!   topology (and same up/down state) ⇒ byte-identical tables
//!   ([`RoutingTable::table_bytes`] is the canonical serialization the
//!   tests compare).
//! * **Symmetry** — on undirected links the route from `b` to `a` is the
//!   exact reverse of the route from `a` to `b`. A greedy min-id next-hop
//!   walk does *not* have this property (walking from each end can tie-
//!   break onto different equal-length paths), so the table stores one
//!   canonical path per unordered pair `{a, b}`: the greedy min-id walk
//!   from `min(a, b)`, with the reverse direction defined as its
//!   reversal.
//!
//! The table is rebuilt eagerly on every topology mutation (named-link
//! cut/heal, host crash/restart). Worlds are tens to a few hundred nodes,
//! so a full rebuild is microseconds — a price worth paying to keep the
//! delivery hot path a single table lookup.
//!
//! [`NetGraph`]: crate::topology::NetGraph

use crate::topology::NetGraph;

/// Sentinel distance for "unreachable".
const UNREACHED: u16 = u16::MAX;

/// The precomputed route table: per unordered host pair, the canonical
/// node path and the link indices it traverses.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    hosts: u32,
    /// Per pair index (see [`RoutingTable::pair_idx`]): node path from the
    /// smaller host to the larger, empty when unreachable.
    paths: Vec<Vec<u32>>,
    /// Link indices along each canonical path.
    links: Vec<Vec<u32>>,
}

impl RoutingTable {
    /// Index of the unordered pair `{a, b}` with `a < b` into the
    /// triangular pair arrays.
    fn pair_idx(hosts: u32, a: u32, b: u32) -> usize {
        debug_assert!(a < b && b < hosts);
        let a = a as usize;
        let b = b as usize;
        let n = hosts as usize;
        // Row `a` starts after the full rows above it.
        a * n - a * (a + 1) / 2 + (b - a - 1)
    }

    /// BFS distances from `src` over live nodes/links, neighbours in
    /// ascending node order.
    fn bfs(g: &NetGraph, src: u32) -> Vec<u16> {
        let mut dist = vec![UNREACHED; g.node_names.len()];
        if !g.node_live(src) {
            return dist;
        }
        dist[src as usize] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &(v, l) in &g.adj[u as usize] {
                if !g.links[l as usize].up || !g.node_live(v) || dist[v as usize] != UNREACHED {
                    continue;
                }
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
        dist
    }

    /// Builds the table from the graph's current live state.
    pub fn build(g: &NetGraph) -> RoutingTable {
        let hosts = g.hosts;
        let npairs = (hosts as usize) * (hosts as usize).saturating_sub(1) / 2;
        let mut paths = vec![Vec::new(); npairs];
        let mut links = vec![Vec::new(); npairs];
        // One BFS per *destination* host; dist_to[b][n] = hops n → b.
        let dist_to: Vec<Vec<u16>> = (0..hosts).map(|b| Self::bfs(g, b)).collect();
        for a in 0..hosts {
            for b in (a + 1)..hosts {
                let dist = &dist_to[b as usize];
                if dist[a as usize] == UNREACHED {
                    continue;
                }
                // Greedy min-id descent from a toward b: at each step take
                // the smallest live neighbour strictly closer to b. adj is
                // sorted, so the first qualifying entry is the canonical
                // choice.
                let idx = Self::pair_idx(hosts, a, b);
                let mut node_path = vec![a];
                let mut link_path = Vec::new();
                let mut cur = a;
                while cur != b {
                    let d = dist[cur as usize];
                    let &(next, link) = g.adj[cur as usize]
                        .iter()
                        .find(|&&(v, l)| {
                            g.links[l as usize].up && g.node_live(v) && dist[v as usize] + 1 == d
                        })
                        .expect("BFS said b is reachable, a closer neighbour exists");
                    node_path.push(next);
                    link_path.push(link);
                    cur = next;
                }
                paths[idx] = node_path;
                links[idx] = link_path;
            }
        }
        RoutingTable {
            hosts,
            paths,
            links,
        }
    }

    /// The canonical route from host `a` to host `b`: node path (starting
    /// at `a`, ending at `b`) and the link indices traversed, or `None`
    /// when unreachable. `a == b` yields an empty path.
    pub fn route(&self, a: u32, b: u32) -> Option<(Vec<u32>, Vec<u32>)> {
        if a == b {
            return Some((vec![a], Vec::new()));
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let idx = Self::pair_idx(self.hosts, lo, hi);
        let nodes = &self.paths[idx];
        if nodes.is_empty() {
            return None;
        }
        let links = &self.links[idx];
        if a == lo {
            Some((nodes.clone(), links.clone()))
        } else {
            let mut n = nodes.clone();
            let mut l = links.clone();
            n.reverse();
            l.reverse();
            Some((n, l))
        }
    }

    /// The link indices from `a` to `b` without cloning the node path.
    /// Forward order for `a < b`, reverse otherwise.
    pub fn route_links(&self, a: u32, b: u32) -> Option<&[u32]> {
        if a == b {
            return Some(&[]);
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let idx = Self::pair_idx(self.hosts, lo, hi);
        if self.paths[idx].is_empty() {
            return None;
        }
        Some(&self.links[idx])
    }

    /// The next hop from `a` toward `b`, or `None` when unreachable.
    pub fn next_hop(&self, a: u32, b: u32) -> Option<u32> {
        self.route(a, b)
            .and_then(|(nodes, _)| nodes.get(1).copied())
    }

    /// Whether hosts `a` and `b` can currently exchange traffic.
    pub fn reachable(&self, a: u32, b: u32) -> bool {
        if a == b {
            return true;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        !self.paths[Self::pair_idx(self.hosts, lo, hi)].is_empty()
    }

    /// Canonical byte serialization of the whole table — the value the
    /// determinism property test compares across rebuilds.
    pub fn table_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.hosts.to_be_bytes());
        for (p, l) in self.paths.iter().zip(&self.links) {
            out.extend_from_slice(&(p.len() as u32).to_be_bytes());
            for n in p {
                out.extend_from_slice(&n.to_be_bytes());
            }
            for i in l {
                out.extend_from_slice(&i.to_be_bytes());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NetGraph, NetSpec};

    fn graph(preset: &str, n: usize) -> NetGraph {
        let hosts: Vec<String> = (0..n).map(|i| format!("h{i}")).collect();
        let spec = NetSpec::preset(preset, &hosts).unwrap();
        NetGraph::build(&spec, &hosts).unwrap()
    }

    #[test]
    fn full_mesh_routes_are_one_link() {
        let t = RoutingTable::build(&graph("full-mesh", 5));
        for a in 0..5u32 {
            for b in 0..5u32 {
                let (nodes, links) = t.route(a, b).unwrap();
                if a == b {
                    assert!(links.is_empty());
                } else {
                    assert_eq!(nodes, vec![a, b]);
                    assert_eq!(links.len(), 1);
                }
            }
        }
    }

    #[test]
    fn fat_tree_cross_pod_routes_cross_the_core() {
        let g = graph("fat-tree", 8);
        let t = RoutingTable::build(&g);
        // h0 (pod 0) → h7 (pod 1): host→tor0→spine→tor1→host.
        let (nodes, links) = t.route(0, 7).unwrap();
        assert_eq!(nodes.len(), 5);
        assert!(links.iter().any(|&l| g.links[l as usize].core));
        // Same pod: two edge links through the ToR, no core.
        let (_, links) = t.route(0, 3).unwrap();
        assert_eq!(links.len(), 2);
        assert!(links.iter().all(|&l| !g.links[l as usize].core));
    }

    #[test]
    fn routes_reverse_exactly() {
        let t = RoutingTable::build(&graph("fat-tree", 16));
        for a in 0..16u32 {
            for b in 0..16u32 {
                let (mut fwd, mut fl) = t.route(a, b).unwrap();
                let (rev, rl) = t.route(b, a).unwrap();
                fwd.reverse();
                fl.reverse();
                assert_eq!(fwd, rev, "{a}->{b}");
                assert_eq!(fl, rl, "{a}->{b} links");
            }
        }
    }

    #[test]
    fn cut_link_reroutes_or_disconnects() {
        let mut g = graph("fat-tree", 8);
        let t = RoutingTable::build(&g);
        assert!(t.reachable(0, 7));
        // Cut both of tor0's core uplinks: pod 0 is off the tree.
        g.set_link_up(g.link_by_name("core:tor0-spine0").unwrap(), false);
        let t = RoutingTable::build(&g);
        assert!(t.reachable(0, 7), "one spine still up");
        g.set_link_up(g.link_by_name("core:tor0-spine1").unwrap(), false);
        let t = RoutingTable::build(&g);
        assert!(!t.reachable(0, 7));
        assert!(t.reachable(0, 3), "pod-internal unaffected");
        assert!(t.route(0, 7).is_none());
        assert!(t.next_hop(0, 7).is_none());
    }

    #[test]
    fn downed_host_is_unroutable() {
        let mut g = graph("wan-hub", 4);
        g.set_host_up(2, false);
        let t = RoutingTable::build(&g);
        assert!(!t.reachable(0, 2));
        assert!(t.reachable(0, 1));
    }

    #[test]
    fn table_bytes_is_stable_across_rebuilds() {
        let g = graph("fat-tree", 12);
        let a = RoutingTable::build(&g).table_bytes();
        let b = RoutingTable::build(&g).table_bytes();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
