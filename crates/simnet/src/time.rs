//! Simulated time.
//!
//! All simulation time is expressed in integer **microseconds** since the
//! start of the run. Using an integer representation keeps the simulation
//! deterministic: there is no floating-point drift and event ordering is a
//! total order over `(SimTime, sequence number)`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, measured in microseconds from run start.
///
/// # Examples
///
/// ```
/// use ppm_simnet::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// assert_eq!(t.as_millis_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use ppm_simnet::time::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any time a simulation will reach in practice.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX / 4);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This instant as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is in the future,
    /// mirroring `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((ms * 1_000.0).round() as u64)
        }
    }

    /// This duration as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative float, saturating at zero.
    pub fn mul_f64(self, k: f64) -> Self {
        if k <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((self.0 as f64 * k).round() as u64)
        }
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(10) + SimDuration::from_micros(250);
        assert_eq!(t.as_micros(), 10_250);
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_micros(250));
    }

    #[test]
    fn duration_from_fractional_millis_rounds() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(0.0004).as_micros(), 0);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(8));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_saturates_and_rounds() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_as_millis() {
        assert_eq!(SimTime::from_micros(1_234).to_string(), "1.234ms");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_micros(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_millis(3));
    }
}
