//! Simulated time (re-exported from the runtime layer).
//!
//! The canonical instant type is [`ppm_runtime::time::Micros`]; `SimTime`
//! is its historical alias. This module keeps the `ppm_simnet::time`
//! paths that simulation-side code has always used.

pub use ppm_runtime::time::{Micros, SimDuration, SimTime};
