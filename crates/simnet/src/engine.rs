//! The discrete-event engine.
//!
//! [`Engine`] is a priority queue of timestamped events, generic over the
//! event payload. Ties at the same instant are broken by insertion order
//! (a monotonically increasing sequence number), which makes runs fully
//! deterministic.
//!
//! # Implementation
//!
//! The queue is an **index-tracked 4-ary min-heap** over a **generational
//! slot arena**: a flat `Vec` ordered by `(time, seq)` whose entries each
//! carry the index of a slot in a side arena, and the slot records where
//! its entry currently sits in the heap. [`EventId`] packs
//! `generation << 32 | slot`, so a cancel is two bounds-checked `Vec`
//! reads (stale generations from fired or cancelled events simply miss)
//! and every swap along a sift path costs one plain `Vec` write — no
//! hashing anywhere on the schedule/cancel/pop path. Slots are recycled
//! through a free list, so long runs settle into a working set the size
//! of the pending window. The index makes [`Engine::cancel`] a true
//! O(log n) removal — the event leaves the heap immediately instead of
//! lingering as a tombstone until it surfaces — so [`Engine::pending`] is
//! exact and [`Engine::pop`] never grinds through dead entries.
//! Timer-heavy workloads (retransmit timers, TTL checks, handler
//! timeouts) cancel far more events than they fire, which is what this
//! layout is tuned for: a 4-ary heap halves the tree depth of a binary
//! heap and keeps each node's children in one cache line's reach.
//!
//! Ordering is the same total order `(at, seq)` the previous
//! `BinaryHeap`-based engine used, so event delivery order — and thus
//! every simulation trace — is bit-for-bit identical.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifier handed back by [`Engine::schedule`], usable to cancel the
/// event before it fires.
///
/// Internally the [`Engine`] packs `generation << 32 | arena slot`; the
/// [`TimerWheel`] stores its sequence number. Both are opaque: the only
/// operations an id supports are being handed back to the queue it came
/// from, or round-tripping through its raw `u64` (for embedding in a
/// backend-neutral `ppm_runtime::sys::TimerHandle`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The packed representation, for embedding in an opaque handle.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from [`EventId::raw`]. A value that did not come
    /// from `raw` simply never matches a live event.
    pub fn from_raw(raw: u64) -> Self {
        EventId(raw)
    }
}

/// Lifetime activity counters of an event queue, sampled into the
/// observability registry (see `ppm_simnet::obs`) at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled so far.
    pub schedules: u64,
    /// Cancels that removed a live event.
    pub cancels: u64,
    /// Events popped so far.
    pub fired: u64,
    /// Live events currently pending.
    pub pending: usize,
    /// Entries currently waiting in the overflow heap (wheel only).
    pub overflow_len: usize,
    /// High-water mark of the overflow heap (wheel only).
    pub overflow_peak: usize,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    /// Arena slot backing this entry's [`EventId`].
    slot: u32,
    payload: E,
}

impl<E> Scheduled<E> {
    /// The total order: earliest time first, insertion order within a tie.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Arena-side record of one live event: which generation of the slot is
/// current and where the entry sits in the heap. The generation advances
/// every time the slot is retired (fire or cancel), so stale ids held by
/// callers can never alias a recycled slot — short of 2^32 reuses of the
/// same slot between a schedule and its cancel, which no bounded run
/// approaches.
#[derive(Debug, Clone, Copy)]
struct SlotMeta {
    gen: u32,
    pos: u32,
}

/// Number of children per heap node. Four keeps sift-down comparisons
/// cache-friendly and halves the depth of a binary heap.
const ARITY: usize = 4;

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use ppm_simnet::engine::Engine;
/// use ppm_simnet::time::{SimDuration, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule(SimDuration::from_millis(5), "later");
/// engine.schedule(SimDuration::from_millis(1), "sooner");
///
/// let (t, ev) = engine.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(1), "sooner"));
/// let (t, ev) = engine.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(5), "later"));
/// assert!(engine.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    /// 4-ary min-heap ordered by `(at, seq)`.
    heap: Vec<Scheduled<E>>,
    /// Generational slot arena: one entry per slot ever allocated, live
    /// or free. Indexed by the low 32 bits of an [`EventId`].
    slots: Vec<SlotMeta>,
    /// Retired slots available for reuse, LIFO for cache warmth.
    free: Vec<u32>,
    processed: u64,
    cancelled: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            processed: 0,
            cancelled: 0,
        }
    }

    /// Lifetime activity counters (`seq` counts every schedule).
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            schedules: self.seq,
            cancels: self.cancelled,
            fired: self.processed,
            pending: self.heap.len(),
            overflow_len: 0,
            overflow_peak: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of live events currently pending. Cancelled events leave
    /// the queue immediately and are never counted.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` at an absolute instant.
    ///
    /// Instants earlier than the current time are clamped to "now" so a
    /// handler can never make time flow backwards.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
                self.slots.push(SlotMeta { gen: 0, pos: 0 });
                s
            }
        };
        let pos = self.heap.len();
        self.heap.push(Scheduled {
            at,
            seq,
            slot,
            payload,
        });
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        EventId(u64::from(self.slots[slot as usize].gen) << 32 | u64::from(slot))
    }

    /// Cancels a previously scheduled event, removing it from the queue
    /// in O(log n).
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let slot = (id.0 & u64::from(u32::MAX)) as u32;
        let gen = (id.0 >> 32) as u32;
        match self.slots.get(slot as usize) {
            // A matching generation means the slot has not been retired
            // since this id was issued: the event is still pending.
            Some(meta) if meta.gen == gen => {
                let pos = meta.pos as usize;
                self.retire(slot);
                self.remove_at(pos);
                self.cancelled += 1;
                true
            }
            _ => false,
        }
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.heap.first().map(|s| s.at)
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let slot = self.heap[0].slot;
        self.retire(slot);
        let s = self.remove_at(0);
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.payload))
    }

    /// Pops the next live event only if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Advances the clock to `at` without processing anything.
    ///
    /// Used at the end of a bounded run so `now()` reflects the horizon.
    /// Instants in the past are ignored.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }

    /// Releases spare capacity retained after a burst of scheduling.
    ///
    /// Long runs alternate between dense phases (broadcast waves, crash
    /// recovery) and quiet ones; calling this in a quiet phase returns
    /// the burst's memory without affecting pending events.
    pub fn compact(&mut self) {
        self.heap.shrink_to_fit();
        self.free.shrink_to_fit();
    }

    /// Retires `slot`: advances its generation (invalidating the issued
    /// id) and returns it to the free list.
    #[inline]
    fn retire(&mut self, slot: u32) {
        let meta = &mut self.slots[slot as usize];
        meta.gen = meta.gen.wrapping_add(1);
        self.free.push(slot);
    }

    /// Removes and returns the element at heap position `pos`, restoring
    /// the heap order around the hole. The caller retires the removed
    /// element's slot; this method fixes the arena position of every
    /// element it moves.
    fn remove_at(&mut self, pos: usize) -> Scheduled<E> {
        let last = self.heap.len() - 1;
        if pos == last {
            return self.heap.pop().expect("pos in bounds");
        }
        self.heap.swap(pos, last);
        let removed = self.heap.pop().expect("pos in bounds");
        self.slots[self.heap[pos].slot as usize].pos = pos as u32;
        // The swapped-in tail can be out of order in either direction
        // relative to its new neighborhood.
        let pos = self.sift_down(pos);
        self.sift_up(pos);
        removed
    }

    /// Moves the element at `pos` toward the root until its parent is no
    /// larger.
    ///
    /// The sifted element's key is fixed for the whole walk, so it is read
    /// once; each displaced parent gets exactly one index write, and the
    /// sifted element one final write (none at all if it never moves).
    fn sift_up(&mut self, pos: usize) -> usize {
        let key = self.heap[pos].key();
        let start = pos;
        let mut pos = pos;
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if key >= self.heap[parent].key() {
                break;
            }
            self.heap.swap(pos, parent);
            // The displaced parent now sits at `pos`.
            self.slots[self.heap[pos].slot as usize].pos = pos as u32;
            pos = parent;
        }
        if pos != start {
            self.slots[self.heap[pos].slot as usize].pos = pos as u32;
        }
        pos
    }

    /// Moves the element at `pos` toward the leaves until no child is
    /// smaller. Same index-write discipline as [`Engine::sift_up`].
    fn sift_down(&mut self, pos: usize) -> usize {
        let key = self.heap[pos].key();
        let start = pos;
        let mut pos = pos;
        loop {
            let first_child = pos * ARITY + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let last_child = (first_child + ARITY).min(self.heap.len());
            let mut best = first_child;
            let mut best_key = self.heap[first_child].key();
            for child in first_child + 1..last_child {
                let child_key = self.heap[child].key();
                if child_key < best_key {
                    best = child;
                    best_key = child_key;
                }
            }
            if best_key >= key {
                break;
            }
            self.heap.swap(pos, best);
            // The displaced child now sits at `pos`.
            self.slots[self.heap[pos].slot as usize].pos = pos as u32;
            pos = best;
        }
        if pos != start {
            self.slots[self.heap[pos].slot as usize].pos = pos as u32;
        }
        pos
    }
}

// ---------------------------------------------------------------------------
// Hierarchical timer wheel
// ---------------------------------------------------------------------------

/// Liveness ledger for wheel entries, keyed by the wheel's monotone
/// schedule sequence number: a windowed bitset over `[base·64, ∞)`.
///
/// The wheel consults liveness on every pop, cascade and peek — one test
/// per entry visited — and a hash set's probe sequence was the single
/// hottest line of the retransmit profile. Sequence numbers are dense
/// and monotone, and the span between the oldest live timer and the
/// newest schedule is bounded by the event rate times the longest armed
/// timer, so a deque of 64-bit words indexed by `seq / 64` makes
/// insert/remove/contains one shift-and-mask each. The front word is
/// popped as soon as it drains, keeping memory proportional to the live
/// span rather than the cumulative schedule count.
#[derive(Debug, Default)]
struct SeqSet {
    /// Word index of `words[0]`: bit `seq % 64` of
    /// `words[seq / 64 - base]` says whether `seq` is live.
    base: u64,
    words: std::collections::VecDeque<u64>,
    live: usize,
}

impl SeqSet {
    /// Marks a freshly issued sequence number live. `seq` is monotone,
    /// so it always lands at (or past) the back of the window.
    #[inline]
    fn insert(&mut self, seq: u64) {
        let w = seq / 64;
        if self.words.is_empty() {
            self.base = w;
        }
        debug_assert!(w >= self.base, "sequence numbers are monotone");
        let idx = (w - self.base) as usize;
        if idx >= self.words.len() {
            self.words.resize(idx + 1, 0);
        }
        self.words[idx] |= 1u64 << (seq % 64);
        self.live += 1;
    }

    #[inline]
    fn contains(&self, seq: u64) -> bool {
        let w = seq / 64;
        if w < self.base {
            return false;
        }
        let idx = (w - self.base) as usize;
        idx < self.words.len() && self.words[idx] & (1u64 << (seq % 64)) != 0
    }

    /// Clears a bit; returns whether it was set. Drained front words are
    /// released so the window tracks the oldest live entry.
    #[inline]
    fn remove(&mut self, seq: u64) -> bool {
        let w = seq / 64;
        if w < self.base {
            return false;
        }
        let idx = (w - self.base) as usize;
        if idx >= self.words.len() {
            return false;
        }
        let bit = 1u64 << (seq % 64);
        if self.words[idx] & bit == 0 {
            return false;
        }
        self.words[idx] &= !bit;
        self.live -= 1;
        if idx == 0 {
            while self.words.front() == Some(&0) {
                self.words.pop_front();
                self.base += 1;
            }
        }
        true
    }

    #[inline]
    fn len(&self) -> usize {
        self.live
    }

    fn shrink_to_fit(&mut self) {
        while self.words.back() == Some(&0) {
            self.words.pop_back();
        }
        self.words.shrink_to_fit();
    }
}

/// Microsecond granularity of each wheel level, plus one extra entry for
/// the span of the whole wheel (`64^LEVELS` µs ≈ 16.8 s).
const WHEEL_POW: [u64; WHEEL_LEVELS + 1] = [1, 64, 4_096, 262_144, 16_777_216];

/// Slots per level. 64 lets a whole level's occupancy live in one `u64`
/// bitmask, so "find the earliest occupied slot" is a `trailing_zeros`.
const WHEEL_SLOTS: usize = 64;

/// Number of wheel levels. Level `l` buckets events at `64^l` µs
/// granularity; everything past the top level's window waits in an
/// overflow heap until the wheel advances far enough to admit it.
const WHEEL_LEVELS: usize = 4;

#[derive(Debug)]
struct WheelEntry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

/// An overflow-heap entry, ordered by the same `(at, seq)` total order as
/// the wheel proper. Only the key participates in comparisons.
#[derive(Debug)]
struct FarEntry<E>(WheelEntry<E>);

impl<E> PartialEq for FarEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.at, self.0.seq) == (other.0.at, other.0.seq)
    }
}
impl<E> Eq for FarEntry<E> {}
impl<E> PartialOrd for FarEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for FarEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.at, self.0.seq).cmp(&(other.0.at, other.0.seq))
    }
}

/// A deterministic discrete-event queue backed by a **hierarchical timer
/// wheel**, with the same API and the same `(time, seq)` total order as
/// [`Engine`] — the two are interchangeable and produce bit-identical
/// event sequences.
///
/// # Why a wheel
///
/// The RPC layer arms a timer per send attempt plus housekeeping, TTL and
/// retention timers, and cancels far more of them than it lets fire. On
/// the indexed heap every cancel is an O(log n) removal that rewrites the
/// position index along the sift path. Here a cancel is one hash-set
/// removal: the entry simply stops being *alive*, and its slot storage is
/// reclaimed lazily when the slot is next visited. Scheduling is O(1) —
/// drop the event into the bucket covering its deadline — and firing
/// advances along per-level 64-bit occupancy masks.
///
/// # Windows, not rotations
///
/// Each level holds one **absolute window** of time: level `l` covers the
/// `64^(l+1)` µs window `win[l]`, divided into 64 slots of `64^l` µs.
/// An event is filed at the lowest level whose current window contains
/// its deadline; events beyond the top window wait in an overflow
/// min-heap ("the heap retained for far-future events"). When level 0
/// drains, the earliest occupied slot of the next occupied level is
/// *cascaded* down one level, narrowing the window; when the whole wheel
/// drains, the windows are rebased around the overflow heap's minimum and
/// the heap's matching prefix migrates in. Keying windows by absolute
/// position (rather than a rotating cursor) means a slot index comparison
/// is always a time comparison, so the earliest-first scan is exact.
///
/// # Examples
///
/// ```
/// use ppm_simnet::engine::TimerWheel;
/// use ppm_simnet::time::{SimDuration, SimTime};
///
/// let mut wheel: TimerWheel<&str> = TimerWheel::new();
/// wheel.schedule(SimDuration::from_millis(5), "later");
/// let keep = wheel.schedule(SimDuration::from_millis(1), "sooner");
/// let drop_ = wheel.schedule(SimDuration::from_secs(120), "far future");
/// assert!(wheel.cancel(drop_));
///
/// let (t, ev) = wheel.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(1), "sooner"));
/// let _ = keep;
/// ```
#[derive(Debug)]
pub struct TimerWheel<E> {
    now: SimTime,
    seq: u64,
    processed: u64,
    /// Current absolute window per level: every entry stored at level `l`
    /// satisfies `at / WHEEL_POW[l + 1] == win[l]`.
    win: [u64; WHEEL_LEVELS],
    /// Per-level slot-occupancy bitmasks (bit `s` = slot `s` may hold
    /// live entries; cleared lazily when a visit finds only dead ones).
    occ: [u64; WHEEL_LEVELS],
    /// `WHEEL_LEVELS * WHEEL_SLOTS` buckets, level-major.
    slots: Vec<Vec<WheelEntry<E>>>,
    /// Events past the top-level window, ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<FarEntry<E>>>,
    /// Scheduled, not yet fired, not cancelled. Cancel is a bit-clear
    /// here; slot storage drops the corpse when it next visits the
    /// bucket.
    alive: SeqSet,
    cancelled: u64,
    overflow_peak: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel at time zero.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(WHEEL_LEVELS * WHEEL_SLOTS);
        slots.resize_with(WHEEL_LEVELS * WHEEL_SLOTS, Vec::new);
        TimerWheel {
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            win: [0; WHEEL_LEVELS],
            occ: [0; WHEEL_LEVELS],
            slots,
            overflow: BinaryHeap::new(),
            alive: SeqSet::default(),
            cancelled: 0,
            overflow_peak: 0,
        }
    }

    /// Lifetime activity counters (`seq` counts every schedule). The
    /// overflow length includes cancelled entries not yet reclaimed; the
    /// peak tracks the heap's high-water mark.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            schedules: self.seq,
            cancels: self.cancelled,
            fired: self.processed,
            pending: self.alive.len(),
            overflow_len: self.overflow.len(),
            overflow_peak: self.overflow_peak,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of live events currently pending. Cancelled events leave
    /// the count immediately and are never counted.
    pub fn pending(&self) -> usize {
        self.alive.len()
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` at an absolute instant.
    ///
    /// Instants earlier than the current time are clamped to "now" so a
    /// handler can never make time flow backwards.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.alive.insert(seq);
        self.place(WheelEntry { at, seq, payload });
        EventId(seq)
    }

    /// Cancels a previously scheduled event in O(1).
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        let hit = self.alive.remove(id.0);
        self.cancelled += u64::from(hit);
        hit
    }

    /// Timestamp of the next live event, if any.
    ///
    /// Reads the structure without moving any window (dead entries found
    /// along the way are reclaimed), so interleaved peeks and schedules
    /// cannot perturb placement.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        for l in 0..WHEEL_LEVELS {
            let mut mask = self.occ[l];
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                // Read-only scan for the earliest live entry; a bucket
                // that turns out all-dead is reclaimed on the spot.
                let alive = &self.alive;
                let min = self.slots[l * WHEEL_SLOTS + s]
                    .iter()
                    .filter(|e| alive.contains(e.seq))
                    .map(|e| e.at)
                    .min();
                match min {
                    Some(t) => return Some(t),
                    None => {
                        self.slots[l * WHEEL_SLOTS + s].clear();
                        self.occ[l] &= !(1u64 << s);
                    }
                }
            }
            // A level pins its window while occupied, so the earliest
            // live slot of the lowest occupied level is the global min.
        }
        while let Some(Reverse(top)) = self.overflow.peek() {
            if self.alive.contains(top.0.seq) {
                return Some(top.0.at);
            }
            self.overflow.pop();
        }
        None
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            // Level 0: fire the earliest live slot. Slots are one µs
            // wide, so every entry in a bucket shares `at`, and buckets
            // hold their live entries in ascending `seq` order: `place`
            // appends monotonically increasing sequence numbers, a
            // cascade batch preserves its source slot's order, and a
            // rebase migrates the overflow prefix in `(at, seq)` order —
            // while a window is only ever repopulated after the level
            // has fully drained. The first live entry is therefore the
            // `(at, seq)` minimum, and the dead prefix in front of it is
            // reclaimed in the same pass.
            let mut mask = self.occ[0];
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let bucket = &mut self.slots[s];
                let mut i = 0;
                while i < bucket.len() && !self.alive.contains(bucket[i].seq) {
                    i += 1;
                }
                if i == bucket.len() {
                    bucket.clear();
                    self.occ[0] &= !(1u64 << s);
                    continue;
                }
                debug_assert!(
                    bucket[i..]
                        .iter()
                        .filter(|e| self.alive.contains(e.seq))
                        .all(|e| (e.at, e.seq) >= (bucket[i].at, bucket[i].seq)),
                    "level-0 bucket lost its (at, seq) order"
                );
                let e = bucket.drain(..=i).next_back().expect("live entry");
                if bucket.is_empty() {
                    self.occ[0] &= !(1u64 << s);
                }
                self.alive.remove(e.seq);
                debug_assert!(e.at >= self.now, "event queue time went backwards");
                self.now = e.at;
                self.processed += 1;
                return Some((e.at, e.payload));
            }
            // Level 0 is dry: cascade the earliest live slot of the
            // lowest occupied level down one level, narrowing its window.
            if self.cascade_once() {
                continue;
            }
            // Whole wheel is dry: rebase the windows around the overflow
            // minimum and migrate the heap's matching prefix in.
            while let Some(Reverse(top)) = self.overflow.peek() {
                if self.alive.contains(top.0.seq) {
                    break;
                }
                self.overflow.pop();
            }
            let Reverse(top) = self.overflow.peek()?;
            let m = top.0.at.as_micros();
            for l in 0..WHEEL_LEVELS {
                self.win[l] = m / WHEEL_POW[l + 1];
            }
            while let Some(Reverse(top)) = self.overflow.peek() {
                if top.0.at.as_micros() / WHEEL_POW[WHEEL_LEVELS] != self.win[WHEEL_LEVELS - 1] {
                    break;
                }
                let Reverse(FarEntry(e)) = self.overflow.pop().expect("peeked entry");
                if self.alive.contains(e.seq) {
                    self.place(e);
                }
            }
        }
    }

    /// Pops the next live event only if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Advances the clock to `at` without processing anything.
    ///
    /// Used at the end of a bounded run so `now()` reflects the horizon.
    /// Instants in the past are ignored.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }

    /// Sweeps cancelled entries out of every bucket and releases spare
    /// capacity retained after a burst of scheduling.
    pub fn compact(&mut self) {
        for l in 0..WHEEL_LEVELS {
            let mut mask = self.occ[l];
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.clean_slot(l, s);
                let bucket = &mut self.slots[l * WHEEL_SLOTS + s];
                if bucket.is_empty() {
                    self.occ[l] &= !(1u64 << s);
                }
                bucket.shrink_to_fit();
            }
        }
        let alive = &self.alive;
        let mut far = std::mem::take(&mut self.overflow).into_vec();
        far.retain(|Reverse(FarEntry(e))| alive.contains(e.seq));
        far.shrink_to_fit();
        self.overflow = BinaryHeap::from(far);
        self.alive.shrink_to_fit();
    }

    /// Files an entry at the lowest level whose current window contains
    /// its deadline, or in the overflow heap past the top window.
    fn place(&mut self, e: WheelEntry<E>) {
        let at = e.at.as_micros();
        for l in 0..WHEEL_LEVELS {
            if at / WHEEL_POW[l + 1] == self.win[l] {
                let s = ((at / WHEEL_POW[l]) % WHEEL_SLOTS as u64) as usize;
                self.slots[l * WHEEL_SLOTS + s].push(e);
                self.occ[l] |= 1u64 << s;
                return;
            }
        }
        self.overflow.push(Reverse(FarEntry(e)));
        self.overflow_peak = self.overflow_peak.max(self.overflow.len());
    }

    /// Drops cancelled entries from one bucket.
    fn clean_slot(&mut self, level: usize, s: usize) {
        let alive = &self.alive;
        self.slots[level * WHEEL_SLOTS + s].retain(|e| alive.contains(e.seq));
    }

    /// Moves the earliest live slot of the lowest occupied level down one
    /// level. Returns `false` when the wheel holds no live entries.
    fn cascade_once(&mut self) -> bool {
        for l in 1..WHEEL_LEVELS {
            let mut mask = self.occ[l];
            while mask != 0 {
                let s = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.occ[l] &= !(1u64 << s);
                let alive = &self.alive;
                if !self.slots[l * WHEEL_SLOTS + s]
                    .iter()
                    .any(|e| alive.contains(e.seq))
                {
                    self.slots[l * WHEEL_SLOTS + s].clear();
                    continue;
                }
                self.win[l - 1] = self.win[l] * WHEEL_SLOTS as u64 + s as u64;
                // Distribute the batch in source order, dropping corpses
                // on the way instead of paying a separate cleaning pass.
                let entries = std::mem::take(&mut self.slots[l * WHEEL_SLOTS + s]);
                for e in entries {
                    if !self.alive.contains(e.seq) {
                        continue;
                    }
                    let s2 = ((e.at.as_micros() / WHEEL_POW[l - 1]) % WHEEL_SLOTS as u64) as usize;
                    self.slots[(l - 1) * WHEEL_SLOTS + s2].push(e);
                    self.occ[l - 1] |= 1u64 << s2;
                }
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(ms(30), 3);
        e.schedule(ms(10), 1);
        e.schedule(ms(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(e.now(), SimTime::from_millis(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..10 {
            e.schedule(ms(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn relative_delays_accumulate_from_now() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(ms(10), "a");
        e.pop();
        e.schedule(ms(10), "b");
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(20));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut e: Engine<&str> = Engine::new();
        let keep = e.schedule(ms(1), "keep");
        let drop_ = e.schedule(ms(2), "drop");
        assert!(e.cancel(drop_));
        assert!(!e.cancel(drop_), "double cancel returns false");
        assert!(!e.cancel(EventId(999)), "unknown id returns false");
        let got: Vec<&str> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(got, vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn cancel_of_fired_event_returns_false() {
        let mut e: Engine<u8> = Engine::new();
        let id = e.schedule(ms(1), 1);
        assert_eq!(e.pop().map(|(_, v)| v), Some(1));
        assert!(!e.cancel(id), "fired events cannot be cancelled");
    }

    #[test]
    fn stale_ids_never_alias_recycled_slots() {
        let mut e: Engine<u8> = Engine::new();
        let a = e.schedule(ms(1), 1);
        assert_eq!(e.pop().map(|(_, v)| v), Some(1));
        // The freed slot is recycled with a bumped generation.
        let b = e.schedule(ms(2), 2);
        assert!(!e.cancel(a), "stale id misses the recycled slot");
        assert!(e.cancel(b), "fresh id still cancels");
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut e: Engine<u32> = Engine::new();
        let ids: Vec<_> = (0..100).map(|i| e.schedule(ms(i % 13), i as u32)).collect();
        assert_eq!(e.pending(), 100);
        for id in ids.iter().step_by(2) {
            assert!(e.cancel(*id));
        }
        assert_eq!(e.pending(), 50, "cancelled events leave the queue");
        let survivors = std::iter::from_fn(|| e.pop()).count();
        assert_eq!(survivors, 50);
        assert_eq!(e.pending(), 0);
        e.compact();
    }

    #[test]
    fn heavy_cancel_interleaving_keeps_order() {
        // Deterministic mixed workload: schedule clusters with colliding
        // times, cancel a swath from the middle, and verify global order.
        let mut e: Engine<usize> = Engine::new();
        let mut ids = Vec::new();
        for i in 0..500usize {
            ids.push(e.schedule(ms((i as u64 * 7) % 41), i));
        }
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 1 {
                assert!(e.cancel(*id));
            }
        }
        let mut last: Option<(SimTime, u64)> = None;
        let mut seen = 0;
        while let Some((t, i)) = e.pop() {
            // Events were scheduled in index order, so index == seq.
            let key = (t, i as u64);
            assert!(Some(key) > last, "pop order is strictly (time, seq)");
            last = Some(key);
            assert_ne!(i % 3, 1, "cancelled events never fire");
            seen += 1;
        }
        let cancelled = (0..500).filter(|i| i % 3 == 1).count();
        assert_eq!(seen, 500 - cancelled);
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule(ms(5), 1);
        e.schedule(ms(15), 2);
        assert_eq!(
            e.pop_until(SimTime::from_millis(10)).map(|(_, v)| v),
            Some(1)
        );
        assert_eq!(e.pop_until(SimTime::from_millis(10)), None);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule(ms(10), 0);
        e.pop();
        e.schedule_at(SimTime::from_millis(1), 9);
        let (t, v) = e.pop().unwrap();
        assert_eq!(v, 9);
        assert_eq!(
            t,
            SimTime::from_millis(10),
            "past events fire now, not earlier"
        );
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut e: Engine<u8> = Engine::new();
        e.advance_to(SimTime::from_millis(50));
        assert_eq!(e.now(), SimTime::from_millis(50));
        e.advance_to(SimTime::from_millis(10));
        assert_eq!(e.now(), SimTime::from_millis(50));
    }

    #[test]
    fn counters_track_activity() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule(ms(1), 1);
        e.schedule(ms(2), 2);
        assert_eq!(e.pending(), 2);
        e.pop();
        assert_eq!(e.events_processed(), 1);
    }

    #[test]
    fn queue_stats_count_schedules_cancels_and_overflow() {
        let mut e: Engine<u8> = Engine::new();
        let id = e.schedule(ms(1), 1);
        e.schedule(ms(2), 2);
        assert!(e.cancel(id));
        assert!(!e.cancel(id), "double cancel is not counted");
        e.pop();
        let s = e.stats();
        assert_eq!((s.schedules, s.cancels, s.fired, s.pending), (2, 1, 1, 0));

        let mut w: TimerWheel<u8> = TimerWheel::new();
        let id = w.schedule(ms(1), 1);
        w.schedule(SimDuration::from_secs(120), 2); // beyond the top window
        assert!(w.cancel(id));
        let s = w.stats();
        assert_eq!((s.schedules, s.cancels, s.fired), (2, 1, 0));
        assert_eq!(s.overflow_peak, 1, "far-future entry hit the heap");
        assert_eq!(s.pending, 1);
    }
}
