//! The discrete-event engine.
//!
//! [`Engine`] is a priority queue of timestamped events, generic over the
//! event payload. Ties at the same instant are broken by insertion order
//! (a monotonically increasing sequence number), which makes runs fully
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifier handed back by [`Engine::schedule`], usable to cancel the
/// event before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop earliest-first.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use ppm_simnet::engine::Engine;
/// use ppm_simnet::time::{SimDuration, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule(SimDuration::from_millis(5), "later");
/// engine.schedule(SimDuration::from_millis(1), "sooner");
///
/// let (t, ev) = engine.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(1), "sooner"));
/// let (t, ev) = engine.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(5), "later"));
/// assert!(engine.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: std::collections::HashSet<u64>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            processed: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events currently pending (including cancelled ones not
    /// yet reaped).
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` at an absolute instant.
    ///
    /// Instants earlier than the current time are clamped to "now" so a
    /// handler can never make time flow backwards.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.reap_cancelled();
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.reap_cancelled();
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.payload))
    }

    /// Pops the next live event only if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Advances the clock to `at` without processing anything.
    ///
    /// Used at the end of a bounded run so `now()` reflects the horizon.
    /// Instants in the past are ignored.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }

    fn reap_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(ms(30), 3);
        e.schedule(ms(10), 1);
        e.schedule(ms(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(e.now(), SimTime::from_millis(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..10 {
            e.schedule(ms(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn relative_delays_accumulate_from_now() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(ms(10), "a");
        e.pop();
        e.schedule(ms(10), "b");
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(20));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut e: Engine<&str> = Engine::new();
        let keep = e.schedule(ms(1), "keep");
        let drop_ = e.schedule(ms(2), "drop");
        assert!(e.cancel(drop_));
        assert!(!e.cancel(drop_), "double cancel returns false");
        assert!(!e.cancel(EventId(999)), "unknown id returns false");
        let got: Vec<&str> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(got, vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule(ms(5), 1);
        e.schedule(ms(15), 2);
        assert_eq!(
            e.pop_until(SimTime::from_millis(10)).map(|(_, v)| v),
            Some(1)
        );
        assert_eq!(e.pop_until(SimTime::from_millis(10)), None);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule(ms(10), 0);
        e.pop();
        e.schedule_at(SimTime::from_millis(1), 9);
        let (t, v) = e.pop().unwrap();
        assert_eq!(v, 9);
        assert_eq!(
            t,
            SimTime::from_millis(10),
            "past events fire now, not earlier"
        );
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut e: Engine<u8> = Engine::new();
        e.advance_to(SimTime::from_millis(50));
        assert_eq!(e.now(), SimTime::from_millis(50));
        e.advance_to(SimTime::from_millis(10));
        assert_eq!(e.now(), SimTime::from_millis(50));
    }

    #[test]
    fn counters_track_activity() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule(ms(1), 1);
        e.schedule(ms(2), 2);
        assert_eq!(e.pending(), 2);
        e.pop();
        assert_eq!(e.events_processed(), 1);
    }
}
