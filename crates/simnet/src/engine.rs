//! The discrete-event engine.
//!
//! [`Engine`] is a priority queue of timestamped events, generic over the
//! event payload. Ties at the same instant are broken by insertion order
//! (a monotonically increasing sequence number), which makes runs fully
//! deterministic.
//!
//! # Implementation
//!
//! The queue is an **index-tracked 4-ary min-heap**: a flat `Vec` ordered
//! by `(time, seq)` plus a sequence-number → slot map kept in sync on
//! every swap. The index makes [`Engine::cancel`] a true O(log n)
//! removal — the event leaves the heap immediately instead of lingering
//! as a tombstone until it surfaces — so [`Engine::pending`] is exact and
//! [`Engine::pop`] never grinds through dead entries. Timer-heavy
//! workloads (retransmit timers, TTL checks, handler timeouts) cancel far
//! more events than they fire, which is what this layout is tuned for: a
//! 4-ary heap halves the tree depth of a binary heap and keeps each
//! node's children in one cache line's reach.
//!
//! Ordering is the same total order `(at, seq)` the previous
//! `BinaryHeap`-based engine used, so event delivery order — and thus
//! every simulation trace — is bit-for-bit identical.

use crate::hashx::FastMap;
use crate::time::{SimDuration, SimTime};

/// Identifier handed back by [`Engine::schedule`], usable to cancel the
/// event before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Scheduled<E> {
    /// The total order: earliest time first, insertion order within a tie.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Number of children per heap node. Four keeps sift-down comparisons
/// cache-friendly and halves the depth of a binary heap.
const ARITY: usize = 4;

/// A deterministic discrete-event queue.
///
/// # Examples
///
/// ```
/// use ppm_simnet::engine::Engine;
/// use ppm_simnet::time::{SimDuration, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule(SimDuration::from_millis(5), "later");
/// engine.schedule(SimDuration::from_millis(1), "sooner");
///
/// let (t, ev) = engine.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(1), "sooner"));
/// let (t, ev) = engine.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_millis(5), "later"));
/// assert!(engine.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    /// 4-ary min-heap ordered by `(at, seq)`.
    heap: Vec<Scheduled<E>>,
    /// Live events only: sequence number → current heap slot.
    pos: FastMap<u64, usize>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: Vec::new(),
            pos: FastMap::default(),
            processed: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero before any event fires).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of live events currently pending. Cancelled events leave
    /// the queue immediately and are never counted.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Schedules `payload` at an absolute instant.
    ///
    /// Instants earlier than the current time are clamped to "now" so a
    /// handler can never make time flow backwards.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = self.heap.len();
        self.heap.push(Scheduled { at, seq, payload });
        self.pos.insert(seq, slot);
        self.sift_up(slot);
        EventId(seq)
    }

    /// Cancels a previously scheduled event, removing it from the queue
    /// in O(log n).
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.pos.remove(&id.0) {
            Some(slot) => {
                self.remove_slot(slot);
                true
            }
            None => false,
        }
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.heap.first().map(|s| s.at)
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let s = self.remove_slot(0);
        self.pos.remove(&s.seq);
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.payload))
    }

    /// Pops the next live event only if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Advances the clock to `at` without processing anything.
    ///
    /// Used at the end of a bounded run so `now()` reflects the horizon.
    /// Instants in the past are ignored.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }

    /// Releases spare capacity retained after a burst of scheduling.
    ///
    /// Long runs alternate between dense phases (broadcast waves, crash
    /// recovery) and quiet ones; calling this in a quiet phase returns
    /// the burst's memory without affecting pending events.
    pub fn compact(&mut self) {
        self.heap.shrink_to_fit();
        self.pos.shrink_to_fit();
    }

    /// Removes and returns the element at `slot`, restoring the heap
    /// order around the hole. The caller maintains `pos` for the removed
    /// element; this method fixes it for every element it moves.
    fn remove_slot(&mut self, slot: usize) -> Scheduled<E> {
        let last = self.heap.len() - 1;
        if slot == last {
            return self.heap.pop().expect("slot in bounds");
        }
        self.heap.swap(slot, last);
        let removed = self.heap.pop().expect("slot in bounds");
        self.pos.insert(self.heap[slot].seq, slot);
        // The swapped-in tail can be out of order in either direction
        // relative to its new neighborhood.
        let slot = self.sift_down(slot);
        self.sift_up(slot);
        removed
    }

    /// Moves `slot` toward the root until its parent is no larger.
    ///
    /// The sifted element's key is fixed for the whole walk, so it is read
    /// once; each displaced parent gets exactly one index write, and the
    /// sifted element one final write (none at all if it never moves).
    fn sift_up(&mut self, slot: usize) -> usize {
        let key = self.heap[slot].key();
        let start = slot;
        let mut slot = slot;
        while slot > 0 {
            let parent = (slot - 1) / ARITY;
            if key >= self.heap[parent].key() {
                break;
            }
            self.heap.swap(slot, parent);
            // The displaced parent now sits at `slot`.
            self.pos.insert(self.heap[slot].seq, slot);
            slot = parent;
        }
        if slot != start {
            self.pos.insert(self.heap[slot].seq, slot);
        }
        slot
    }

    /// Moves `slot` toward the leaves until no child is smaller. Same
    /// index-write discipline as [`Engine::sift_up`].
    fn sift_down(&mut self, slot: usize) -> usize {
        let key = self.heap[slot].key();
        let start = slot;
        let mut slot = slot;
        loop {
            let first_child = slot * ARITY + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let last_child = (first_child + ARITY).min(self.heap.len());
            let mut best = first_child;
            let mut best_key = self.heap[first_child].key();
            for child in first_child + 1..last_child {
                let child_key = self.heap[child].key();
                if child_key < best_key {
                    best = child;
                    best_key = child_key;
                }
            }
            if best_key >= key {
                break;
            }
            self.heap.swap(slot, best);
            // The displaced child now sits at `slot`.
            self.pos.insert(self.heap[slot].seq, slot);
            slot = best;
        }
        if slot != start {
            self.pos.insert(self.heap[slot].seq, slot);
        }
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule(ms(30), 3);
        e.schedule(ms(10), 1);
        e.schedule(ms(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(e.now(), SimTime::from_millis(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e: Engine<u32> = Engine::new();
        for i in 0..10 {
            e.schedule(ms(5), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn relative_delays_accumulate_from_now() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule(ms(10), "a");
        e.pop();
        e.schedule(ms(10), "b");
        let (t, _) = e.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(20));
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut e: Engine<&str> = Engine::new();
        let keep = e.schedule(ms(1), "keep");
        let drop_ = e.schedule(ms(2), "drop");
        assert!(e.cancel(drop_));
        assert!(!e.cancel(drop_), "double cancel returns false");
        assert!(!e.cancel(EventId(999)), "unknown id returns false");
        let got: Vec<&str> = std::iter::from_fn(|| e.pop().map(|(_, v)| v)).collect();
        assert_eq!(got, vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn cancel_of_fired_event_returns_false() {
        let mut e: Engine<u8> = Engine::new();
        let id = e.schedule(ms(1), 1);
        assert_eq!(e.pop().map(|(_, v)| v), Some(1));
        assert!(!e.cancel(id), "fired events cannot be cancelled");
    }

    #[test]
    fn pending_excludes_cancelled() {
        let mut e: Engine<u32> = Engine::new();
        let ids: Vec<_> = (0..100).map(|i| e.schedule(ms(i % 13), i as u32)).collect();
        assert_eq!(e.pending(), 100);
        for id in ids.iter().step_by(2) {
            assert!(e.cancel(*id));
        }
        assert_eq!(e.pending(), 50, "cancelled events leave the queue");
        let survivors = std::iter::from_fn(|| e.pop()).count();
        assert_eq!(survivors, 50);
        assert_eq!(e.pending(), 0);
        e.compact();
    }

    #[test]
    fn heavy_cancel_interleaving_keeps_order() {
        // Deterministic mixed workload: schedule clusters with colliding
        // times, cancel a swath from the middle, and verify global order.
        let mut e: Engine<usize> = Engine::new();
        let mut ids = Vec::new();
        for i in 0..500usize {
            ids.push(e.schedule(ms((i as u64 * 7) % 41), i));
        }
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 1 {
                assert!(e.cancel(*id));
            }
        }
        let mut last: Option<(SimTime, u64)> = None;
        let mut seen = 0;
        while let Some((t, i)) = e.pop() {
            let key = (t, ids[i].0);
            assert!(Some(key) > last, "pop order is strictly (time, seq)");
            last = Some(key);
            assert_ne!(i % 3, 1, "cancelled events never fire");
            seen += 1;
        }
        let cancelled = (0..500).filter(|i| i % 3 == 1).count();
        assert_eq!(seen, 500 - cancelled);
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule(ms(5), 1);
        e.schedule(ms(15), 2);
        assert_eq!(
            e.pop_until(SimTime::from_millis(10)).map(|(_, v)| v),
            Some(1)
        );
        assert_eq!(e.pop_until(SimTime::from_millis(10)), None);
        assert_eq!(e.pending(), 1);
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule(ms(10), 0);
        e.pop();
        e.schedule_at(SimTime::from_millis(1), 9);
        let (t, v) = e.pop().unwrap();
        assert_eq!(v, 9);
        assert_eq!(
            t,
            SimTime::from_millis(10),
            "past events fire now, not earlier"
        );
    }

    #[test]
    fn advance_to_moves_clock_forward_only() {
        let mut e: Engine<u8> = Engine::new();
        e.advance_to(SimTime::from_millis(50));
        assert_eq!(e.now(), SimTime::from_millis(50));
        e.advance_to(SimTime::from_millis(10));
        assert_eq!(e.now(), SimTime::from_millis(50));
    }

    #[test]
    fn counters_track_activity() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule(ms(1), 1);
        e.schedule(ms(2), 2);
        assert_eq!(e.pending(), 2);
        e.pop();
        assert_eq!(e.events_processed(), 1);
    }
}
