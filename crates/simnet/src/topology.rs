//! Network topology: hosts, links, routes, partitions, crashes.
//!
//! The paper's environment is a set of machines (VAX 11/780, VAX 11/750,
//! SUN II) joined by local-area links. Only two topological properties
//! matter to the PPM's measured behaviour: the **hop count** between two
//! hosts (Table 2 and Table 3 are keyed on it) and **reachability** (crash
//! recovery in Section 5 is driven by partitions and host crashes). This
//! module models exactly those.

use std::collections::{HashMap, VecDeque};

// Host identity and hardware class live in the backend-agnostic runtime
// layer; re-exported here so simulation-side code keeps its paths.
pub use ppm_runtime::ids::{CpuClass, HostId};

/// Static description of one host.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Network-unique host name, e.g. `"ucbvax"`.
    pub name: String,
    /// Hardware class.
    pub cpu: CpuClass,
}

impl HostSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cpu: CpuClass) -> Self {
        HostSpec {
            name: name.into(),
            cpu,
        }
    }
}

#[derive(Debug, Clone)]
struct HostEntry {
    spec: HostSpec,
    up: bool,
}

/// The network graph.
///
/// Hosts are vertices; links are undirected edges. Links and hosts can be
/// taken down to model partitions and crashes; routing (`hops`) only
/// traverses live hosts and live links.
///
/// # Examples
///
/// ```
/// use ppm_simnet::topology::{CpuClass, HostSpec, Topology};
///
/// let mut topo = Topology::new();
/// let a = topo.add_host(HostSpec::new("a", CpuClass::Vax780));
/// let b = topo.add_host(HostSpec::new("b", CpuClass::Vax750));
/// let c = topo.add_host(HostSpec::new("c", CpuClass::Sun2));
/// topo.add_link(a, b);
/// topo.add_link(b, c);
/// assert_eq!(topo.hops(a, c), Some(2));
/// topo.set_link_up(a, b, false);
/// assert_eq!(topo.hops(a, c), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    hosts: Vec<HostEntry>,
    by_name: HashMap<String, HostId>,
    // adjacency: for each host, the set of (peer, link_up) entries
    adj: Vec<Vec<(HostId, bool)>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host (initially up) and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a host with the same name already exists.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        assert!(
            !self.by_name.contains_key(&spec.name),
            "duplicate host name {:?}",
            spec.name
        );
        let id = HostId(self.hosts.len() as u32);
        self.by_name.insert(spec.name.clone(), id);
        self.hosts.push(HostEntry { spec, up: true });
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected link between two hosts (initially up).
    ///
    /// Adding an existing link is a no-op. Self-links are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either id is unknown.
    pub fn add_link(&mut self, a: HostId, b: HostId) {
        assert!(a != b, "self-links are not allowed");
        self.check(a);
        self.check(b);
        if !self.adj[a.0 as usize].iter().any(|(p, _)| *p == b) {
            self.adj[a.0 as usize].push((b, true));
            self.adj[b.0 as usize].push((a, true));
        }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the topology has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Iterator over all host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId)
    }

    /// The spec of a host.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn spec(&self, id: HostId) -> &HostSpec {
        &self.hosts[id.0 as usize].spec
    }

    /// Looks a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.by_name.get(name).copied()
    }

    /// Whether the host is currently up.
    pub fn is_up(&self, id: HostId) -> bool {
        self.hosts[id.0 as usize].up
    }

    /// Crashes or restarts a host.
    pub fn set_host_up(&mut self, id: HostId, up: bool) {
        self.check(id);
        self.hosts[id.0 as usize].up = up;
    }

    /// Takes a link down (partition) or brings it back.
    ///
    /// Returns `false` if no such link exists.
    pub fn set_link_up(&mut self, a: HostId, b: HostId, up: bool) -> bool {
        let mut found = false;
        for (p, live) in &mut self.adj[a.0 as usize] {
            if *p == b {
                *live = up;
                found = true;
            }
        }
        for (p, live) in &mut self.adj[b.0 as usize] {
            if *p == a {
                *live = up;
            }
        }
        found
    }

    /// Whether a live link joins `a` and `b` directly.
    pub fn link_up(&self, a: HostId, b: HostId) -> bool {
        self.adj[a.0 as usize]
            .iter()
            .any(|(p, live)| *p == b && *live)
    }

    /// Minimum hop count between two live hosts over live links.
    ///
    /// Returns `Some(0)` when `a == b` (and `a` is up), `None` when
    /// unreachable or either endpoint is down.
    pub fn hops(&self, a: HostId, b: HostId) -> Option<u32> {
        if !self.is_up(a) || !self.is_up(b) {
            return None;
        }
        if a == b {
            return Some(0);
        }
        // Plain BFS; host counts in this system are tens of nodes.
        let mut dist: HashMap<HostId, u32> = HashMap::new();
        dist.insert(a, 0);
        let mut q = VecDeque::new();
        q.push_back(a);
        while let Some(u) = q.pop_front() {
            let du = dist[&u];
            for &(v, live) in &self.adj[u.0 as usize] {
                if !live || !self.is_up(v) || dist.contains_key(&v) {
                    continue;
                }
                if v == b {
                    return Some(du + 1);
                }
                dist.insert(v, du + 1);
                q.push_back(v);
            }
        }
        None
    }

    /// All hosts reachable from `a` (including `a` itself, if up).
    pub fn reachable_from(&self, a: HostId) -> Vec<HostId> {
        if !self.is_up(a) {
            return Vec::new();
        }
        let mut seen = vec![a];
        let mut q = VecDeque::from([a]);
        while let Some(u) = q.pop_front() {
            for &(v, live) in &self.adj[u.0 as usize] {
                if live && self.is_up(v) && !seen.contains(&v) {
                    seen.push(v);
                    q.push_back(v);
                }
            }
        }
        seen
    }

    fn check(&self, id: HostId) {
        assert!((id.0 as usize) < self.hosts.len(), "unknown host {id}");
    }
}

// ---------------------------------------------------------------------------
// Netmodel extension: declarative physical topologies with named,
// capacity-carrying links.
//
// The [`Topology`] above is the *protocol-level* graph — which hosts the
// PPM believes are adjacent, the thing chain search and the broadcast
// cover walk. The netmodel below is the *physical* overlay: hosts plus
// internal switch nodes, joined by named links that carry a capacity
// (bytes/sec), a fixed latency, and optionally a deterministic loss
// probability. The routed delivery path (see `ppm-simos`) prices every
// message by its physical route over this graph instead of the flat
// `hop_base`/`per_byte` law; when no netmodel is installed nothing here
// is ever consulted, which is what keeps the default byte-identical to
// pre-netmodel runs.
// ---------------------------------------------------------------------------

/// One link of a [`NetSpec`]: endpoints are host or switch *names*,
/// resolved against the world when the graph is built.
#[derive(Debug, Clone, PartialEq)]
pub struct NetLinkSpec {
    /// Unique link name (`cut link <name>` in fault plans targets this).
    pub name: String,
    /// Endpoint name: a world host or a declared switch.
    pub a: String,
    /// Other endpoint name.
    pub b: String,
    /// Capacity in bytes per second.
    pub cap_bps: u64,
    /// Fixed one-way latency in microseconds.
    pub lat_us: u64,
    /// Per-traversal drop probability (deterministic, drawn from the
    /// netmodel's own seeded stream).
    pub loss: f64,
    /// Whether this link counts toward the bisection-bytes exhibit
    /// (`net.bisection_bytes`).
    pub core: bool,
}

/// A declarative physical topology: switches plus named links.
///
/// Built either from a `.topo` file ([`NetSpec::parse`]) or from one of
/// the presets ([`NetSpec::preset`]). The graph the world actually routes
/// over is produced by [`NetGraph::build`], which resolves endpoint names
/// against the world's host list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetSpec {
    /// Topology name (shown in traces and the installation line).
    pub name: String,
    /// Internal switch nodes (never protocol-visible hosts).
    pub switches: Vec<String>,
    /// Named links.
    pub links: Vec<NetLinkSpec>,
}

/// Default link capacity: 250 kB/s, i.e. the 4 µs/byte of the flat
/// model's `per_byte`, so an uncontended one-link route prices exactly
/// like a flat one-hop wire.
pub const NET_DEFAULT_CAP_BPS: u64 = 250_000;

/// Default link latency: the flat model's 5 ms `hop_base`.
pub const NET_DEFAULT_LAT_US: u64 = 5_000;

fn parse_net_duration_us(s: &str) -> Result<u64, String> {
    let (num, mult) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000.0)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000.0)
    } else {
        (s, 1.0)
    };
    num.parse::<f64>()
        .map(|v| (v * mult) as u64)
        .map_err(|_| format!("bad duration {s:?}"))
}

fn parse_net_cap_bps(s: &str) -> Result<u64, String> {
    let (num, mult) = if let Some(n) = s.strip_suffix('k') {
        (n, 1_000.0)
    } else if let Some(n) = s.strip_suffix('m') {
        (n, 1_000_000.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num.parse().map_err(|_| format!("bad capacity {s:?}"))?;
    let bps = (v * mult) as u64;
    if bps == 0 {
        return Err(format!("capacity {s:?} must be positive"));
    }
    Ok(bps)
}

impl NetSpec {
    /// Parses a `.topo` file. Grammar, one directive per line
    /// (`#` comments):
    ///
    /// ```text
    /// topo NAME
    /// switch SWITCH
    /// link A B [name=X] [cap=BPS[k|m]] [lat=DUR] [loss=P] [core]
    /// ```
    ///
    /// Unnamed links get `A-B`. `cap` defaults to
    /// [`NET_DEFAULT_CAP_BPS`], `lat` to [`NET_DEFAULT_LAT_US`].
    pub fn parse(text: &str) -> Result<NetSpec, String> {
        let mut spec = NetSpec::default();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |m: String| format!("topo line {}: {m}", ln + 1);
            let mut toks = line.split_whitespace();
            match toks.next().unwrap() {
                "topo" => {
                    spec.name = toks
                        .next()
                        .ok_or_else(|| err("missing name".into()))?
                        .into();
                }
                "switch" => {
                    let s: String = toks
                        .next()
                        .ok_or_else(|| err("missing switch name".into()))?
                        .into();
                    if spec.switches.contains(&s) {
                        return Err(err(format!("duplicate switch {s:?}")));
                    }
                    spec.switches.push(s);
                }
                "link" => {
                    let a: String = toks
                        .next()
                        .ok_or_else(|| err("missing endpoint".into()))?
                        .into();
                    let b: String = toks
                        .next()
                        .ok_or_else(|| err("missing endpoint".into()))?
                        .into();
                    if a == b {
                        return Err(err("self-link".into()));
                    }
                    let mut link = NetLinkSpec {
                        name: format!("{a}-{b}"),
                        a,
                        b,
                        cap_bps: NET_DEFAULT_CAP_BPS,
                        lat_us: NET_DEFAULT_LAT_US,
                        loss: 0.0,
                        core: false,
                    };
                    for t in toks {
                        if let Some(v) = t.strip_prefix("name=") {
                            link.name = v.into();
                        } else if let Some(v) = t.strip_prefix("cap=") {
                            link.cap_bps = parse_net_cap_bps(v).map_err(&err)?;
                        } else if let Some(v) = t.strip_prefix("lat=") {
                            link.lat_us = parse_net_duration_us(v).map_err(&err)?;
                        } else if let Some(v) = t.strip_prefix("loss=") {
                            link.loss = v
                                .parse()
                                .ok()
                                .filter(|p| (0.0..=1.0).contains(p))
                                .ok_or_else(|| err(format!("bad loss {v:?}")))?;
                        } else if t == "core" {
                            link.core = true;
                        } else {
                            return Err(err(format!("unknown link attribute {t:?}")));
                        }
                    }
                    spec.links.push(link);
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
        }
        if spec.name.is_empty() {
            spec.name = "custom".into();
        }
        if spec.links.is_empty() {
            return Err("topo file declares no links".into());
        }
        let mut names: Vec<&str> = spec.links.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("duplicate link name {:?}", w[0]));
        }
        Ok(spec)
    }

    /// Builds a named preset over the given world hosts (in host-id
    /// order). Returns `None` for an unknown preset name.
    ///
    /// * `full-mesh` — every host pair joined directly at default
    ///   capacity/latency: the compatibility topology, pricing an
    ///   uncontended send exactly like the flat model's one hop.
    /// * `fat-tree` — hosts in pods of 4 under a ToR switch, ToRs joined
    ///   to 2 spines; the ToR↔spine links are the (`core`) bisection.
    /// * `wan-hub` — hub-and-spoke: every host on a 20 ms, half-capacity
    ///   WAN link into one hub.
    /// * `last-mile` — hub-and-spoke with slow (30 ms, quarter-capacity)
    ///   access links that drop 2% of traversals.
    pub fn preset(name: &str, hosts: &[String]) -> Option<NetSpec> {
        let mk = |name: &str, a: &String, b: String, cap: u64, lat: u64, loss: f64, core: bool| {
            NetLinkSpec {
                name: name.into(),
                a: a.clone(),
                b,
                cap_bps: cap,
                lat_us: lat,
                loss,
                core,
            }
        };
        let mut spec = NetSpec {
            name: name.into(),
            ..NetSpec::default()
        };
        match name {
            "full-mesh" => {
                for (i, a) in hosts.iter().enumerate() {
                    for b in &hosts[i + 1..] {
                        spec.links.push(mk(
                            &format!("mesh:{a}-{b}"),
                            a,
                            b.clone(),
                            NET_DEFAULT_CAP_BPS,
                            NET_DEFAULT_LAT_US,
                            0.0,
                            false,
                        ));
                    }
                }
            }
            "fat-tree" => {
                let pods = hosts.len().div_ceil(4);
                for p in 0..pods {
                    spec.switches.push(format!("tor{p}"));
                }
                for s in 0..2usize {
                    spec.switches.push(format!("spine{s}"));
                }
                for (i, h) in hosts.iter().enumerate() {
                    spec.links.push(mk(
                        &format!("edge:{h}"),
                        h,
                        format!("tor{}", i / 4),
                        NET_DEFAULT_CAP_BPS,
                        NET_DEFAULT_LAT_US,
                        0.0,
                        false,
                    ));
                }
                for p in 0..pods {
                    for s in 0..2usize {
                        spec.links.push(mk(
                            &format!("core:tor{p}-spine{s}"),
                            &format!("tor{p}"),
                            format!("spine{s}"),
                            NET_DEFAULT_CAP_BPS,
                            NET_DEFAULT_LAT_US,
                            0.0,
                            true,
                        ));
                    }
                }
            }
            "wan-hub" => {
                spec.switches.push("hub".into());
                for h in hosts {
                    spec.links.push(mk(
                        &format!("wan:{h}"),
                        h,
                        "hub".into(),
                        NET_DEFAULT_CAP_BPS / 2,
                        20_000,
                        0.0,
                        true,
                    ));
                }
            }
            "last-mile" => {
                spec.switches.push("hub".into());
                for h in hosts {
                    spec.links.push(mk(
                        &format!("mile:{h}"),
                        h,
                        "hub".into(),
                        NET_DEFAULT_CAP_BPS / 4,
                        30_000,
                        0.02,
                        true,
                    ));
                }
            }
            _ => return None,
        }
        Some(spec)
    }

    /// The preset names [`NetSpec::preset`] understands.
    pub const PRESETS: [&'static str; 4] = ["full-mesh", "fat-tree", "wan-hub", "last-mile"];
}

/// One physical link of a built [`NetGraph`].
#[derive(Debug, Clone)]
pub struct NetLink {
    /// Link name (fault plans target this).
    pub name: String,
    /// Node index of one endpoint.
    pub a: u32,
    /// Node index of the other endpoint.
    pub b: u32,
    /// Capacity in bytes/sec.
    pub cap_bps: u64,
    /// Fixed one-way latency in microseconds.
    pub lat_us: u64,
    /// Per-traversal drop probability.
    pub loss: f64,
    /// Counts toward bisection bytes.
    pub core: bool,
    /// Administratively up (fault plans flip this).
    pub up: bool,
}

/// The physical network graph: world hosts (node index = `HostId.0`)
/// followed by internal switch nodes, joined by [`NetLink`]s.
#[derive(Debug, Clone)]
pub struct NetGraph {
    /// Number of leading nodes that are world hosts.
    pub hosts: u32,
    /// Names of every node: hosts first, then switches.
    pub node_names: Vec<String>,
    /// Host up/down mirror (switches are only ever cut via links).
    pub node_up: Vec<bool>,
    /// All links, in declaration order.
    pub links: Vec<NetLink>,
    /// Adjacency: per node, `(peer node, link index)` sorted by peer.
    pub adj: Vec<Vec<(u32, u32)>>,
    by_link_name: HashMap<String, u32>,
}

impl NetGraph {
    /// Resolves a spec against the world's host names (in host-id order).
    ///
    /// Every link endpoint must name a world host or a declared switch;
    /// switch names must not collide with host names.
    pub fn build(spec: &NetSpec, host_names: &[String]) -> Result<NetGraph, String> {
        let mut node_names: Vec<String> = host_names.to_vec();
        let mut index: HashMap<String, u32> = HashMap::new();
        for (i, h) in node_names.iter().enumerate() {
            index.insert(h.clone(), i as u32);
        }
        for s in &spec.switches {
            if index.contains_key(s) {
                return Err(format!("switch {s:?} collides with a host name"));
            }
            index.insert(s.clone(), node_names.len() as u32);
            node_names.push(s.clone());
        }
        let mut links = Vec::with_capacity(spec.links.len());
        let mut by_link_name = HashMap::new();
        let mut adj = vec![Vec::new(); node_names.len()];
        for l in &spec.links {
            let a = *index
                .get(&l.a)
                .ok_or_else(|| format!("link {:?}: unknown endpoint {:?}", l.name, l.a))?;
            let b = *index
                .get(&l.b)
                .ok_or_else(|| format!("link {:?}: unknown endpoint {:?}", l.name, l.b))?;
            let idx = links.len() as u32;
            if by_link_name.insert(l.name.clone(), idx).is_some() {
                return Err(format!("duplicate link name {:?}", l.name));
            }
            links.push(NetLink {
                name: l.name.clone(),
                a,
                b,
                cap_bps: l.cap_bps,
                lat_us: l.lat_us,
                loss: l.loss,
                core: l.core,
                up: true,
            });
            adj[a as usize].push((b, idx));
            adj[b as usize].push((a, idx));
        }
        for n in &mut adj {
            n.sort_unstable();
        }
        Ok(NetGraph {
            hosts: host_names.len() as u32,
            node_up: vec![true; node_names.len()],
            node_names,
            links,
            adj,
            by_link_name,
        })
    }

    /// Looks a link up by name.
    pub fn link_by_name(&self, name: &str) -> Option<u32> {
        self.by_link_name.get(name).copied()
    }

    /// Flips a link's administrative state. Returns the previous state.
    pub fn set_link_up(&mut self, idx: u32, up: bool) -> bool {
        std::mem::replace(&mut self.links[idx as usize].up, up)
    }

    /// Mirrors a host crash/restart into the physical graph.
    pub fn set_host_up(&mut self, host: u32, up: bool) {
        if (host as usize) < self.node_up.len() {
            self.node_up[host as usize] = up;
        }
    }

    /// Whether a node may carry traffic right now.
    pub fn node_live(&self, n: u32) -> bool {
        self.node_up[n as usize]
    }
}

#[cfg(test)]
mod net_tests {
    use super::*;

    fn hosts(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("h{i}")).collect()
    }

    #[test]
    fn parse_roundtrips_the_grammar() {
        let spec = NetSpec::parse(
            "# test\ntopo t\nswitch s0\nlink h0 s0 name=up0 cap=100k lat=2ms\n\
             link h1 s0 loss=0.5 core\n",
        )
        .unwrap();
        assert_eq!(spec.name, "t");
        assert_eq!(spec.switches, vec!["s0"]);
        assert_eq!(spec.links[0].cap_bps, 100_000);
        assert_eq!(spec.links[0].lat_us, 2_000);
        assert_eq!(spec.links[1].name, "h1-s0");
        assert!(spec.links[1].core);
        assert_eq!(spec.links[1].loss, 0.5);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(NetSpec::parse("link a a").is_err());
        assert!(NetSpec::parse("frobnicate x").is_err());
        assert!(NetSpec::parse("link a b cap=0").is_err());
        assert!(NetSpec::parse("link a b loss=2").is_err());
        assert!(NetSpec::parse("link a b name=x\nlink b c name=x").is_err());
        assert!(NetSpec::parse("topo empty").is_err());
    }

    #[test]
    fn presets_cover_all_hosts() {
        let hs = hosts(6);
        for p in NetSpec::PRESETS {
            let spec = NetSpec::preset(p, &hs).unwrap();
            let g = NetGraph::build(&spec, &hs).unwrap();
            assert_eq!(g.hosts, 6, "{p}");
            for h in 0..6u32 {
                assert!(!g.adj[h as usize].is_empty(), "{p}: h{h} has no links");
            }
        }
        assert!(NetSpec::preset("nope", &hs).is_none());
    }

    #[test]
    fn fat_tree_has_core_bisection_links() {
        let hs = hosts(8);
        let spec = NetSpec::preset("fat-tree", &hs).unwrap();
        let core = spec.links.iter().filter(|l| l.core).count();
        assert_eq!(core, 4, "2 pods x 2 spines");
        let g = NetGraph::build(&spec, &hs).unwrap();
        assert_eq!(g.node_names.len(), 8 + 2 + 2);
    }

    #[test]
    fn build_rejects_unknown_endpoints_and_collisions() {
        let spec = NetSpec::parse("link h0 nowhere").unwrap();
        assert!(NetGraph::build(&spec, &hosts(2)).is_err());
        let spec = NetSpec::parse("switch h0\nlink h0 h1").unwrap();
        assert!(NetGraph::build(&spec, &hosts(2)).is_err());
    }

    #[test]
    fn link_state_flips_by_name() {
        let hs = hosts(4);
        let spec = NetSpec::preset("wan-hub", &hs).unwrap();
        let mut g = NetGraph::build(&spec, &hs).unwrap();
        let idx = g.link_by_name("wan:h2").unwrap();
        assert!(g.set_link_up(idx, false));
        assert!(!g.links[idx as usize].up);
        assert!(g.link_by_name("wan:h9").is_none());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (Topology, Vec<HostId>) {
        let mut t = Topology::new();
        let ids: Vec<HostId> = (0..n)
            .map(|i| t.add_host(HostSpec::new(format!("h{i}"), CpuClass::Vax780)))
            .collect();
        for w in ids.windows(2) {
            t.add_link(w[0], w[1]);
        }
        (t, ids)
    }

    #[test]
    fn hop_counts_on_a_chain() {
        let (t, ids) = chain(4);
        assert_eq!(t.hops(ids[0], ids[0]), Some(0));
        assert_eq!(t.hops(ids[0], ids[1]), Some(1));
        assert_eq!(t.hops(ids[0], ids[3]), Some(3));
    }

    #[test]
    fn bfs_finds_shortest_path_not_any_path() {
        let (mut t, ids) = chain(4);
        t.add_link(ids[0], ids[3]); // shortcut
        assert_eq!(t.hops(ids[0], ids[3]), Some(1));
    }

    #[test]
    fn link_partition_breaks_routing() {
        let (mut t, ids) = chain(3);
        assert!(t.set_link_up(ids[0], ids[1], false));
        assert_eq!(t.hops(ids[0], ids[2]), None);
        assert!(t.set_link_up(ids[0], ids[1], true));
        assert_eq!(t.hops(ids[0], ids[2]), Some(2));
    }

    #[test]
    fn setting_unknown_link_returns_false() {
        let (mut t, ids) = chain(3);
        assert!(!t.set_link_up(ids[0], ids[2], false));
    }

    #[test]
    fn crashed_host_is_not_routable_through() {
        let (mut t, ids) = chain(3);
        t.set_host_up(ids[1], false);
        assert_eq!(t.hops(ids[0], ids[2]), None);
        assert_eq!(t.hops(ids[0], ids[1]), None);
        t.set_host_up(ids[1], true);
        assert_eq!(t.hops(ids[0], ids[2]), Some(2));
    }

    #[test]
    fn reachable_from_respects_partitions() {
        let (mut t, ids) = chain(4);
        t.set_link_up(ids[1], ids[2], false);
        let mut r = t.reachable_from(ids[0]);
        r.sort();
        assert_eq!(r, vec![ids[0], ids[1]]);
        assert_eq!(t.reachable_from(ids[3]).len(), 2);
    }

    #[test]
    fn reachable_from_downed_host_is_empty() {
        let (mut t, ids) = chain(2);
        t.set_host_up(ids[0], false);
        assert!(t.reachable_from(ids[0]).is_empty());
    }

    #[test]
    fn host_lookup_by_name() {
        let (t, ids) = chain(2);
        assert_eq!(t.host_by_name("h1"), Some(ids[1]));
        assert_eq!(t.host_by_name("nope"), None);
        assert_eq!(t.spec(ids[0]).name, "h0");
    }

    #[test]
    #[should_panic(expected = "duplicate host name")]
    fn duplicate_names_panic() {
        let mut t = Topology::new();
        t.add_host(HostSpec::new("x", CpuClass::Vax780));
        t.add_host(HostSpec::new("x", CpuClass::Sun2));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut t = Topology::new();
        let a = t.add_host(HostSpec::new("x", CpuClass::Vax780));
        t.add_link(a, a);
    }

    #[test]
    fn duplicate_link_is_noop() {
        let (mut t, ids) = chain(2);
        t.add_link(ids[0], ids[1]);
        assert_eq!(t.reachable_from(ids[0]).len(), 2);
        // taking the (single) link down severs them even after re-add
        t.set_link_up(ids[0], ids[1], false);
        assert_eq!(t.reachable_from(ids[0]).len(), 1);
    }

    #[test]
    fn cpu_class_display_and_speed() {
        assert_eq!(CpuClass::Sun2.to_string(), "SUN II");
        assert!(CpuClass::Vax780.speed_factor() > CpuClass::Sun2.speed_factor());
    }
}
