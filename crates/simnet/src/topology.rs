//! Network topology: hosts, links, routes, partitions, crashes.
//!
//! The paper's environment is a set of machines (VAX 11/780, VAX 11/750,
//! SUN II) joined by local-area links. Only two topological properties
//! matter to the PPM's measured behaviour: the **hop count** between two
//! hosts (Table 2 and Table 3 are keyed on it) and **reachability** (crash
//! recovery in Section 5 is driven by partitions and host crashes). This
//! module models exactly those.

use std::collections::{HashMap, VecDeque};

// Host identity and hardware class live in the backend-agnostic runtime
// layer; re-exported here so simulation-side code keeps its paths.
pub use ppm_runtime::ids::{CpuClass, HostId};

/// Static description of one host.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Network-unique host name, e.g. `"ucbvax"`.
    pub name: String,
    /// Hardware class.
    pub cpu: CpuClass,
}

impl HostSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, cpu: CpuClass) -> Self {
        HostSpec {
            name: name.into(),
            cpu,
        }
    }
}

#[derive(Debug, Clone)]
struct HostEntry {
    spec: HostSpec,
    up: bool,
}

/// The network graph.
///
/// Hosts are vertices; links are undirected edges. Links and hosts can be
/// taken down to model partitions and crashes; routing (`hops`) only
/// traverses live hosts and live links.
///
/// # Examples
///
/// ```
/// use ppm_simnet::topology::{CpuClass, HostSpec, Topology};
///
/// let mut topo = Topology::new();
/// let a = topo.add_host(HostSpec::new("a", CpuClass::Vax780));
/// let b = topo.add_host(HostSpec::new("b", CpuClass::Vax750));
/// let c = topo.add_host(HostSpec::new("c", CpuClass::Sun2));
/// topo.add_link(a, b);
/// topo.add_link(b, c);
/// assert_eq!(topo.hops(a, c), Some(2));
/// topo.set_link_up(a, b, false);
/// assert_eq!(topo.hops(a, c), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    hosts: Vec<HostEntry>,
    by_name: HashMap<String, HostId>,
    // adjacency: for each host, the set of (peer, link_up) entries
    adj: Vec<Vec<(HostId, bool)>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a host (initially up) and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a host with the same name already exists.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        assert!(
            !self.by_name.contains_key(&spec.name),
            "duplicate host name {:?}",
            spec.name
        );
        let id = HostId(self.hosts.len() as u32);
        self.by_name.insert(spec.name.clone(), id);
        self.hosts.push(HostEntry { spec, up: true });
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected link between two hosts (initially up).
    ///
    /// Adding an existing link is a no-op. Self-links are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either id is unknown.
    pub fn add_link(&mut self, a: HostId, b: HostId) {
        assert!(a != b, "self-links are not allowed");
        self.check(a);
        self.check(b);
        if !self.adj[a.0 as usize].iter().any(|(p, _)| *p == b) {
            self.adj[a.0 as usize].push((b, true));
            self.adj[b.0 as usize].push((a, true));
        }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the topology has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Iterator over all host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId)
    }

    /// The spec of a host.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn spec(&self, id: HostId) -> &HostSpec {
        &self.hosts[id.0 as usize].spec
    }

    /// Looks a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.by_name.get(name).copied()
    }

    /// Whether the host is currently up.
    pub fn is_up(&self, id: HostId) -> bool {
        self.hosts[id.0 as usize].up
    }

    /// Crashes or restarts a host.
    pub fn set_host_up(&mut self, id: HostId, up: bool) {
        self.check(id);
        self.hosts[id.0 as usize].up = up;
    }

    /// Takes a link down (partition) or brings it back.
    ///
    /// Returns `false` if no such link exists.
    pub fn set_link_up(&mut self, a: HostId, b: HostId, up: bool) -> bool {
        let mut found = false;
        for (p, live) in &mut self.adj[a.0 as usize] {
            if *p == b {
                *live = up;
                found = true;
            }
        }
        for (p, live) in &mut self.adj[b.0 as usize] {
            if *p == a {
                *live = up;
            }
        }
        found
    }

    /// Whether a live link joins `a` and `b` directly.
    pub fn link_up(&self, a: HostId, b: HostId) -> bool {
        self.adj[a.0 as usize]
            .iter()
            .any(|(p, live)| *p == b && *live)
    }

    /// Minimum hop count between two live hosts over live links.
    ///
    /// Returns `Some(0)` when `a == b` (and `a` is up), `None` when
    /// unreachable or either endpoint is down.
    pub fn hops(&self, a: HostId, b: HostId) -> Option<u32> {
        if !self.is_up(a) || !self.is_up(b) {
            return None;
        }
        if a == b {
            return Some(0);
        }
        // Plain BFS; host counts in this system are tens of nodes.
        let mut dist: HashMap<HostId, u32> = HashMap::new();
        dist.insert(a, 0);
        let mut q = VecDeque::new();
        q.push_back(a);
        while let Some(u) = q.pop_front() {
            let du = dist[&u];
            for &(v, live) in &self.adj[u.0 as usize] {
                if !live || !self.is_up(v) || dist.contains_key(&v) {
                    continue;
                }
                if v == b {
                    return Some(du + 1);
                }
                dist.insert(v, du + 1);
                q.push_back(v);
            }
        }
        None
    }

    /// All hosts reachable from `a` (including `a` itself, if up).
    pub fn reachable_from(&self, a: HostId) -> Vec<HostId> {
        if !self.is_up(a) {
            return Vec::new();
        }
        let mut seen = vec![a];
        let mut q = VecDeque::from([a]);
        while let Some(u) = q.pop_front() {
            for &(v, live) in &self.adj[u.0 as usize] {
                if live && self.is_up(v) && !seen.contains(&v) {
                    seen.push(v);
                    q.push_back(v);
                }
            }
        }
        seen
    }

    fn check(&self, id: HostId) {
        assert!((id.0 as usize) < self.hosts.len(), "unknown host {id}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> (Topology, Vec<HostId>) {
        let mut t = Topology::new();
        let ids: Vec<HostId> = (0..n)
            .map(|i| t.add_host(HostSpec::new(format!("h{i}"), CpuClass::Vax780)))
            .collect();
        for w in ids.windows(2) {
            t.add_link(w[0], w[1]);
        }
        (t, ids)
    }

    #[test]
    fn hop_counts_on_a_chain() {
        let (t, ids) = chain(4);
        assert_eq!(t.hops(ids[0], ids[0]), Some(0));
        assert_eq!(t.hops(ids[0], ids[1]), Some(1));
        assert_eq!(t.hops(ids[0], ids[3]), Some(3));
    }

    #[test]
    fn bfs_finds_shortest_path_not_any_path() {
        let (mut t, ids) = chain(4);
        t.add_link(ids[0], ids[3]); // shortcut
        assert_eq!(t.hops(ids[0], ids[3]), Some(1));
    }

    #[test]
    fn link_partition_breaks_routing() {
        let (mut t, ids) = chain(3);
        assert!(t.set_link_up(ids[0], ids[1], false));
        assert_eq!(t.hops(ids[0], ids[2]), None);
        assert!(t.set_link_up(ids[0], ids[1], true));
        assert_eq!(t.hops(ids[0], ids[2]), Some(2));
    }

    #[test]
    fn setting_unknown_link_returns_false() {
        let (mut t, ids) = chain(3);
        assert!(!t.set_link_up(ids[0], ids[2], false));
    }

    #[test]
    fn crashed_host_is_not_routable_through() {
        let (mut t, ids) = chain(3);
        t.set_host_up(ids[1], false);
        assert_eq!(t.hops(ids[0], ids[2]), None);
        assert_eq!(t.hops(ids[0], ids[1]), None);
        t.set_host_up(ids[1], true);
        assert_eq!(t.hops(ids[0], ids[2]), Some(2));
    }

    #[test]
    fn reachable_from_respects_partitions() {
        let (mut t, ids) = chain(4);
        t.set_link_up(ids[1], ids[2], false);
        let mut r = t.reachable_from(ids[0]);
        r.sort();
        assert_eq!(r, vec![ids[0], ids[1]]);
        assert_eq!(t.reachable_from(ids[3]).len(), 2);
    }

    #[test]
    fn reachable_from_downed_host_is_empty() {
        let (mut t, ids) = chain(2);
        t.set_host_up(ids[0], false);
        assert!(t.reachable_from(ids[0]).is_empty());
    }

    #[test]
    fn host_lookup_by_name() {
        let (t, ids) = chain(2);
        assert_eq!(t.host_by_name("h1"), Some(ids[1]));
        assert_eq!(t.host_by_name("nope"), None);
        assert_eq!(t.spec(ids[0]).name, "h0");
    }

    #[test]
    #[should_panic(expected = "duplicate host name")]
    fn duplicate_names_panic() {
        let mut t = Topology::new();
        t.add_host(HostSpec::new("x", CpuClass::Vax780));
        t.add_host(HostSpec::new("x", CpuClass::Sun2));
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut t = Topology::new();
        let a = t.add_host(HostSpec::new("x", CpuClass::Vax780));
        t.add_link(a, a);
    }

    #[test]
    fn duplicate_link_is_noop() {
        let (mut t, ids) = chain(2);
        t.add_link(ids[0], ids[1]);
        assert_eq!(t.reachable_from(ids[0]).len(), 2);
        // taking the (single) link down severs them even after re-add
        t.set_link_up(ids[0], ids[1], false);
        assert_eq!(t.reachable_from(ids[0]).len(), 1);
    }

    #[test]
    fn cpu_class_display_and_speed() {
        assert_eq!(CpuClass::Sun2.to_string(), "SUN II");
        assert!(CpuClass::Vax780.speed_factor() > CpuClass::Sun2.speed_factor());
    }
}
