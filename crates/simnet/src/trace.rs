//! Structured simulation trace (re-exported from the runtime layer).
//!
//! The trace vocabulary moved to `ppm-runtime` so that both the simulated
//! and the real backend record entries the figure regenerators and tests
//! can read. This module keeps the historical `ppm_simnet::trace` paths.

pub use ppm_runtime::trace::{TraceCategory, TraceEntry, TraceLog};
