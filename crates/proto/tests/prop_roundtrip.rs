//! Property tests: every generated protocol value survives an
//! encode→decode roundtrip, and the decoder never panics on arbitrary
//! bytes.

use proptest::prelude::*;

use ppm_proto::codec::{decode_batch, encode_batch, frames, Dec, Enc, Wire};
use ppm_proto::msg::{ControlAction, ErrCode, Msg, Op, Reply};
use ppm_proto::triggers::{EventPattern, TriggerAction, TriggerSpec};
use ppm_proto::types::{
    FileRecord, Gpid, HistoryRecord, ProcRecord, Route, RusageRecord, Stamp, WireProcState,
};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,12}"
}

fn arb_gpid() -> impl Strategy<Value = Gpid> {
    (arb_name(), any::<u32>()).prop_map(|(h, p)| Gpid::new(h, p))
}

fn arb_route() -> impl Strategy<Value = Route> {
    prop::collection::vec(arb_name(), 0..5).prop_map(Route)
}

fn arb_stamp() -> impl Strategy<Value = Stamp> {
    (arb_name(), any::<u64>(), any::<u64>(), any::<u64>())
        .prop_map(|(o, s, t, secret)| Stamp::signed(o, s, t, secret))
}

fn arb_state() -> impl Strategy<Value = WireProcState> {
    prop_oneof![
        Just(WireProcState::Running),
        Just(WireProcState::Stopped),
        Just(WireProcState::Dead),
        Just(WireProcState::Embryo),
    ]
}

fn arb_proc_record() -> impl Strategy<Value = ProcRecord> {
    (
        arb_gpid(),
        any::<u32>(),
        prop::option::of(arb_gpid()),
        arb_name(),
        arb_state(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(gpid, ppid, logical_parent, command, state, started_us, cpu_us, adopted)| {
                ProcRecord {
                    gpid,
                    ppid,
                    logical_parent,
                    command,
                    state,
                    started_us,
                    cpu_us,
                    adopted,
                }
            },
        )
}

fn arb_rusage_record() -> impl Strategy<Value = RusageRecord> {
    (
        arb_gpid(),
        arb_name(),
        any::<u64>(),
        any::<i32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(gpid, command, exited_us, status, cpu_us, msgs, bytes, files, forks)| RusageRecord {
                gpid,
                command,
                exited_us,
                status,
                cpu_us,
                msgs,
                bytes,
                files,
                forks,
            },
        )
}

fn arb_action() -> impl Strategy<Value = ControlAction> {
    prop_oneof![
        Just(ControlAction::Stop),
        Just(ControlAction::Foreground),
        Just(ControlAction::Background),
        Just(ControlAction::Kill),
        any::<u8>().prop_map(ControlAction::Signal),
    ]
}

fn arb_trigger() -> impl Strategy<Value = TriggerSpec> {
    let pattern = (
        arb_name(),
        prop::option::of(any::<u32>()),
        prop::option::of(arb_name()),
        prop::option::of(any::<u64>()),
    )
        .prop_map(|(kind, pid, command_prefix, min_cpu_us)| EventPattern {
            kind,
            pid,
            command_prefix,
            min_cpu_us,
        });
    let action = prop_oneof![
        (arb_gpid(), any::<u8>())
            .prop_map(|(target, signal)| TriggerAction::Signal { target, signal }),
        arb_name().prop_map(|note| TriggerAction::Notify { note }),
        arb_gpid().prop_map(|root| TriggerAction::KillTree { root }),
    ];
    (any::<u32>(), pattern, action, any::<bool>()).prop_map(|(id, pattern, action, once)| {
        TriggerSpec {
            id,
            pattern,
            action,
            once,
        }
    })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Ping),
        Just(Op::Status),
        Just(Op::Snapshot),
        Just(Op::ListTriggers),
        (any::<u32>(), arb_action()).prop_map(|(pid, action)| Op::Control { pid, action }),
        (
            arb_name(),
            prop::option::of(arb_gpid()),
            prop::option::of(any::<u64>()),
            any::<u64>(),
            any::<bool>()
        )
            .prop_map(
                |(command, logical_parent, lifetime_us, work_us, cpu_bound)| Op::Spawn {
                    command,
                    logical_parent,
                    lifetime_us,
                    work_us,
                    cpu_bound,
                }
            ),
        prop::option::of(any::<u32>()).prop_map(|pid| Op::Rusage { pid }),
        (any::<u64>(), any::<u16>()).prop_map(|(since_us, max)| Op::History { since_us, max }),
        any::<u32>().prop_map(|pid| Op::OpenFiles { pid }),
        (any::<u32>(), any::<u8>()).prop_map(|(pid, flags)| Op::Adopt { pid, flags }),
        (any::<u32>(), any::<u8>()).prop_map(|(pid, flags)| Op::SetTraceFlags { pid, flags }),
        arb_trigger().prop_map(|spec| Op::AddTrigger { spec }),
        any::<u32>().prop_map(|id| Op::DelTrigger { id }),
    ]
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    let err_code = prop_oneof![
        Just(ErrCode::NoSuchProcess),
        Just(ErrCode::Permission),
        Just(ErrCode::NoRoute),
        Just(ErrCode::HostDown),
        Just(ErrCode::Timeout),
        Just(ErrCode::BadRequest),
        Just(ErrCode::NotFound),
        Just(ErrCode::Internal),
        Just(ErrCode::DeadlineExceeded),
        Just(ErrCode::StaleEpoch),
    ];
    prop_oneof![
        Just(Reply::Ok),
        Just(Reply::Pong),
        (err_code, arb_name()).prop_map(|(code, detail)| Reply::Err { code, detail }),
        arb_gpid().prop_map(|gpid| Reply::Spawned { gpid }),
        (arb_name(), prop::collection::vec(arb_proc_record(), 0..4))
            .prop_map(|(host, procs)| Reply::Snapshot { host, procs }),
        prop::collection::vec(arb_rusage_record(), 0..4)
            .prop_map(|records| Reply::Rusage { records }),
        prop::collection::vec(
            (any::<u64>(), arb_gpid(), arb_name(), arb_name()).prop_map(
                |(at_us, gpid, kind, detail)| HistoryRecord {
                    at_us,
                    gpid,
                    kind,
                    detail
                }
            ),
            0..4
        )
        .prop_map(|events| Reply::History { events }),
        prop::collection::vec(
            (any::<u32>(), arb_name(), arb_name()).prop_map(|(fd, kind, detail)| FileRecord {
                fd,
                kind,
                detail
            }),
            0..4
        )
        .prop_map(|entries| Reply::Files { entries }),
        prop::collection::vec(arb_trigger(), 0..3).prop_map(|entries| Reply::Triggers { entries }),
        (
            arb_name(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(arb_name(), 0..4),
            arb_name(),
            any::<u64>()
        )
            .prop_map(
                |(host, load_milli, managed, siblings, ccs, epoch)| Reply::Status {
                    host,
                    load_milli,
                    managed,
                    siblings,
                    ccs,
                    epoch,
                }
            ),
    ]
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        any::<u32>().prop_map(|user| Msg::CreateLpm { user }),
        any::<u32>().prop_map(|user| Msg::QueryLpm { user }),
        (any::<u32>(), any::<u16>(), any::<bool>()).prop_map(|(user, port, created)| {
            Msg::LpmAddr {
                user,
                port,
                created,
            }
        }),
        any::<u32>().prop_map(|user| Msg::NoLpm { user }),
        (
            any::<u32>(),
            arb_name(),
            any::<bool>(),
            arb_name(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(user, host, is_tool, ccs, epoch, proof)| Msg::Hello {
                user,
                host,
                is_tool,
                ccs,
                epoch,
                proof
            }),
        (arb_name(), any::<bool>(), arb_name(), any::<u64>()).prop_map(|(host, ok, ccs, epoch)| {
            Msg::HelloAck {
                host,
                ok,
                ccs,
                epoch,
            }
        }),
        (
            any::<u64>(),
            any::<u32>(),
            arb_name(),
            arb_op(),
            arb_route(),
            any::<u8>(),
            any::<u64>(),
            any::<u8>(),
            any::<u64>()
        )
            .prop_map(
                |(id, user, dest, op, route, hops_left, deadline_us, attempt, boot)| Msg::Req {
                    id,
                    user,
                    dest,
                    op,
                    route,
                    hops_left,
                    deadline_us,
                    attempt,
                    boot
                }
            ),
        (any::<u64>(), arb_reply(), arb_route()).prop_map(|(id, reply, route)| Msg::Resp {
            id,
            reply,
            route
        }),
        (arb_stamp(), any::<u32>(), arb_op(), arb_route()).prop_map(|(stamp, user, op, route)| {
            Msg::Bcast {
                stamp,
                user,
                op,
                route,
            }
        }),
        (arb_stamp(), arb_name(), arb_reply(), arb_route()).prop_map(
            |(stamp, host, reply, route)| Msg::BcastResp {
                stamp,
                host,
                reply,
                route
            }
        ),
        arb_stamp().prop_map(|stamp| Msg::BcastDone { stamp }),
        (any::<u32>(), arb_name(), any::<u64>()).prop_map(|(user, ccs, epoch)| Msg::CcsAnnounce {
            user,
            ccs,
            epoch
        }),
        (any::<u32>(), arb_name()).prop_map(|(user, from)| Msg::Probe { user, from }),
        (arb_name(), arb_name(), any::<u64>()).prop_map(|(from, ccs, epoch)| Msg::ProbeAck {
            from,
            ccs,
            epoch
        }),
    ]
}

proptest! {
    #[test]
    fn msg_roundtrips(msg in arb_msg()) {
        let bytes = msg.to_bytes();
        let back = Msg::from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn op_roundtrips(op in arb_op()) {
        prop_assert_eq!(Op::from_bytes(&op.to_bytes()).expect("decodes"), op);
    }

    #[test]
    fn reply_roundtrips(reply in arb_reply()) {
        prop_assert_eq!(Reply::from_bytes(&reply.to_bytes()).expect("decodes"), reply);
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Msg::from_bytes(&data);
        let _ = Op::from_bytes(&data);
        let _ = Reply::from_bytes(&data);
    }

    #[test]
    fn wire_len_matches_encoding(msg in arb_msg()) {
        prop_assert_eq!(msg.wire_len(), msg.to_bytes().len());
    }

    /// A length-prefixed batch roundtrips, and the lazy frame iterator
    /// walks exactly the same messages without decoding them eagerly.
    #[test]
    fn batch_roundtrips_and_frames_agree(msgs in prop::collection::vec(arb_msg(), 0..8)) {
        let wire = encode_batch(&msgs);
        prop_assert_eq!(decode_batch::<Msg>(&wire).expect("batch decodes"), msgs.clone());
        let mut walked = Vec::new();
        for frame in frames(&wire).expect("frame header") {
            walked.push(Msg::from_bytes(frame.expect("frame bounds")).expect("frame decodes"));
        }
        prop_assert_eq!(walked, msgs);
    }

    /// The batch decoder and frame iterator reject arbitrary bytes
    /// without panicking, including truncations of valid batches.
    #[test]
    fn batch_decoder_never_panics_on_garbage(
        data in prop::collection::vec(any::<u8>(), 0..512),
        msgs in prop::collection::vec(arb_msg(), 0..4),
        cut in any::<u16>(),
    ) {
        let _ = decode_batch::<Msg>(&data);
        if let Ok(iter) = frames(&data) {
            for frame in iter {
                let _ = frame;
            }
        }
        // Truncated valid batches must error, never panic or hang.
        let wire = encode_batch(&msgs);
        if !wire.is_empty() {
            let cut = usize::from(cut) % wire.len();
            let _ = decode_batch::<Msg>(&wire[..cut]);
        }
    }

    /// The pooled steady-state encoder emits byte-identical output to a
    /// fresh single-use buffer, even when reused back to back.
    #[test]
    fn pooled_encoder_matches_fresh(msgs in prop::collection::vec(arb_msg(), 1..6)) {
        for msg in &msgs {
            let mut fresh = Enc::new();
            msg.encode(&mut fresh);
            let mut pooled = Enc::pooled();
            msg.encode(&mut pooled);
            prop_assert_eq!(pooled.into_bytes(), fresh.into_bytes());
        }
    }

    /// Borrowed string decoding (`str_ref`) sees exactly the bytes the
    /// owned path does, from the same cursor positions.
    #[test]
    fn borrowed_str_decode_matches_owned(strings in prop::collection::vec("[ -~]{0,40}", 0..8)) {
        let mut enc = Enc::new();
        for s in &strings {
            enc.str(s);
        }
        let wire = enc.into_bytes();

        let mut owned = Dec::new(&wire);
        let mut borrowed = Dec::new(&wire);
        for s in &strings {
            prop_assert_eq!(&owned.str().expect("owned decodes"), s);
            prop_assert_eq!(borrowed.str_ref().expect("borrowed decodes"), s.as_str());
        }
        owned.finish().expect("owned consumed all");
        borrowed.finish().expect("borrowed consumed all");
    }

    #[test]
    fn stamp_signatures_bind_origin(origin in arb_name(), seq in any::<u64>(), at in any::<u64>(), secret in any::<u64>(), other in arb_name()) {
        let stamp = Stamp::signed(origin.clone(), seq, at, secret);
        prop_assert!(stamp.verify(secret));
        if other != origin {
            let mut forged = stamp.clone();
            forged.origin = other.into();
            prop_assert!(!forged.verify(secret));
        }
    }

    /// `missing` lists are canonical on the wire: whatever order and
    /// duplication the producer assembled, decoding yields the sorted,
    /// deduplicated list — and re-encoding the decoded value is a fixed
    /// point (byte-identical), so aggregates are reproducible run-to-run.
    #[test]
    fn missing_lists_canonicalize_at_encode(
        stamp in arb_stamp(),
        missing in prop::collection::vec(arb_name(), 0..8),
    ) {
        let mut expect = missing.clone();
        expect.sort_unstable();
        expect.dedup();

        let agg = Msg::BcastAgg { stamp, parts: bytes::Bytes::new(), missing: missing.clone() };
        let wire = agg.to_bytes();
        let Msg::BcastAgg { missing: decoded, .. } = Msg::from_bytes(&wire).expect("decodes") else {
            panic!("wrong variant");
        };
        prop_assert_eq!(&decoded, &expect);
        let reencoded = Msg::from_bytes(&wire).expect("decodes").to_bytes();
        prop_assert_eq!(reencoded, wire);

        let partial = Reply::Partial { missing, inner: Box::new(Reply::Pong) };
        let wire = partial.to_bytes();
        let Reply::Partial { missing: decoded, .. } = Reply::from_bytes(&wire).expect("decodes") else {
            panic!("wrong variant");
        };
        prop_assert_eq!(&decoded, &expect);
        let reencoded = Reply::from_bytes(&wire).expect("decodes").to_bytes();
        prop_assert_eq!(reencoded, wire);
    }
}
