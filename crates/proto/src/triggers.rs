//! History-dependent trigger specifications.
//!
//! The paper (Section 1): "history dependent events can be set by users to
//! trigger process state changes" — and the conclusions list "event driven
//! user defined actions" as a headline capability. A trigger is a pattern
//! over the LPM's event stream plus an action to perform when it matches.

use std::fmt;

use crate::codec::{CodecError, Dec, Enc, Wire};
use crate::types::Gpid;

/// A pattern over kernel/history events. All present fields must match.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventPattern {
    /// Event kind to match ("exit", "stop", "fork", ...); empty = any.
    pub kind: String,
    /// Restrict to one local pid.
    pub pid: Option<u32>,
    /// Restrict to commands with this prefix.
    pub command_prefix: Option<String>,
    /// Only match once the process has consumed at least this much CPU
    /// (µs) — the "history dependent" part.
    pub min_cpu_us: Option<u64>,
}

impl EventPattern {
    /// A pattern matching any event of `kind`.
    pub fn kind(kind: impl Into<String>) -> Self {
        EventPattern {
            kind: kind.into(),
            ..Default::default()
        }
    }

    /// Restricts the pattern to a pid.
    pub fn with_pid(mut self, pid: u32) -> Self {
        self.pid = Some(pid);
        self
    }

    /// Restricts the pattern to a command prefix.
    pub fn with_command_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.command_prefix = Some(prefix.into());
        self
    }

    /// Adds a minimum-CPU condition.
    pub fn with_min_cpu_us(mut self, us: u64) -> Self {
        self.min_cpu_us = Some(us);
        self
    }
}

impl Wire for EventPattern {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.kind);
        enc.opt(&self.pid, |e, v| e.u32(*v));
        enc.opt(&self.command_prefix, |e, v| e.str(v));
        enc.opt(&self.min_cpu_us, |e, v| e.u64(*v));
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(EventPattern {
            kind: dec.str()?,
            pid: dec.opt(|d| d.u32())?,
            command_prefix: dec.opt(|d| d.str())?,
            min_cpu_us: dec.opt(|d| d.u64())?,
        })
    }
}

/// What to do when a trigger fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriggerAction {
    /// Deliver a signal to a (possibly remote) process.
    Signal {
        /// Target process.
        target: Gpid,
        /// BSD signal number.
        signal: u8,
    },
    /// Record a notification in the LPM history (picked up by tools).
    Notify {
        /// Free-form note.
        note: String,
    },
    /// Kill every process of the computation rooted at `root`.
    KillTree {
        /// Root of the subtree.
        root: Gpid,
    },
}

impl fmt::Display for TriggerAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerAction::Signal { target, signal } => write!(f, "signal {signal} -> {target}"),
            TriggerAction::Notify { note } => write!(f, "notify: {note}"),
            TriggerAction::KillTree { root } => write!(f, "kill tree rooted at {root}"),
        }
    }
}

impl Wire for TriggerAction {
    fn encode(&self, enc: &mut Enc) {
        match self {
            TriggerAction::Signal { target, signal } => {
                enc.u8(0);
                target.encode(enc);
                enc.u8(*signal);
            }
            TriggerAction::Notify { note } => {
                enc.u8(1);
                enc.str(note);
            }
            TriggerAction::KillTree { root } => {
                enc.u8(2);
                root.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        match dec.u8()? {
            0 => Ok(TriggerAction::Signal {
                target: Gpid::decode(dec)?,
                signal: dec.u8()?,
            }),
            1 => Ok(TriggerAction::Notify { note: dec.str()? }),
            2 => Ok(TriggerAction::KillTree {
                root: Gpid::decode(dec)?,
            }),
            tag => Err(CodecError::BadTag {
                what: "TriggerAction",
                tag,
            }),
        }
    }
}

/// A complete trigger registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerSpec {
    /// Identifier assigned by the registering tool (unique per user).
    pub id: u32,
    /// When to fire.
    pub pattern: EventPattern,
    /// What to do.
    pub action: TriggerAction,
    /// Remove after first firing?
    pub once: bool,
}

impl Wire for TriggerSpec {
    fn encode(&self, enc: &mut Enc) {
        enc.u32(self.id);
        self.pattern.encode(enc);
        self.action.encode(enc);
        enc.bool(self.once);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(TriggerSpec {
            id: dec.u32()?,
            pattern: EventPattern::decode(dec)?,
            action: TriggerAction::decode(dec)?,
            once: dec.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_builder_and_roundtrip() {
        let p = EventPattern::kind("exit")
            .with_pid(9)
            .with_command_prefix("cc")
            .with_min_cpu_us(1000);
        assert_eq!(EventPattern::from_bytes(&p.to_bytes()).unwrap(), p);
        let empty = EventPattern::default();
        assert_eq!(EventPattern::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn actions_roundtrip() {
        for a in [
            TriggerAction::Signal {
                target: Gpid::new("a", 1),
                signal: 9,
            },
            TriggerAction::Notify {
                note: "make finished".into(),
            },
            TriggerAction::KillTree {
                root: Gpid::new("b", 2),
            },
        ] {
            assert_eq!(TriggerAction::from_bytes(&a.to_bytes()).unwrap(), a);
        }
        assert!(matches!(
            TriggerAction::from_bytes(&[7]),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn spec_roundtrip() {
        let s = TriggerSpec {
            id: 4,
            pattern: EventPattern::kind("stop"),
            action: TriggerAction::Notify {
                note: "stopped".into(),
            },
            once: true,
        };
        assert_eq!(TriggerSpec::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn action_display() {
        let a = TriggerAction::Signal {
            target: Gpid::new("a", 1),
            signal: 9,
        };
        assert_eq!(a.to_string(), "signal 9 -> <a, 1>");
    }
}
