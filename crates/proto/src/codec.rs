//! Binary wire codec.
//!
//! A small, explicit, length-checked binary format. The codec is
//! hand-rolled (rather than derived from a serialization framework) for
//! two reasons: the byte-exact message sizes feed the latency models —
//! Table 1 is about a *112-byte* message — and the decoder must be robust
//! against arbitrary bytes, since LPMs accept connections from the
//! network.
//!
//! Conventions: integers are big-endian; strings are `u16` length-prefixed
//! UTF-8; sequences are `u16` count-prefixed; options are a one-byte tag.

use std::error::Error;
use std::fmt;

use bytes::Bytes;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    Truncated,
    /// A tag byte had no corresponding variant.
    BadTag {
        /// Context description (which type was being decoded).
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Decoding finished with bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("message truncated"),
            CodecError::BadTag { what, tag } => write!(f, "bad tag {tag} decoding {what}"),
            CodecError::BadUtf8 => f.write_str("invalid utf-8 in string field"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl Error for CodecError {}

/// Encoder: accumulates bytes.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Finishes encoding, yielding the bytes.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` big-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a `u32` big-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a `u64` big-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes an `i32` big-endian.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds `u16::MAX` bytes (protocol fields are
    /// short names and paths).
    pub fn str(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("protocol string fits in u16");
        self.u16(len);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes an `Option` with a one-byte presence tag.
    pub fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    /// Writes a count-prefixed sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence exceeds `u16::MAX` entries.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        let len = u16::try_from(items.len()).expect("protocol sequence fits in u16");
        self.u16(len);
        for item in items {
            f(self, item);
        }
    }
}

/// Decoder: a cursor over received bytes.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless all input was consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`].
    pub fn finish(self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `i32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a bool (any nonzero byte is true).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a length-prefixed string.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::BadUtf8`].
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| CodecError::BadUtf8)
    }

    /// Reads an `Option`.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadTag`] for a tag other than 0 or 1, plus whatever
    /// the element decoder returns.
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            tag => Err(CodecError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }

    /// Reads a count-prefixed sequence.
    ///
    /// # Errors
    ///
    /// Whatever the element decoder returns.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let n = self.u16()? as usize;
        // Guard against absurd counts in hostile input: each element needs
        // at least one byte.
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Types that encode to / decode from the wire format.
pub trait Wire: Sized {
    /// Appends this value to the encoder.
    fn encode(&self, enc: &mut Enc);

    /// Reads one value from the decoder.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError>;

    /// Encodes to a standalone byte string.
    fn to_bytes(&self) -> Bytes {
        let mut enc = Enc::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Decodes from a complete byte string (no trailing bytes allowed).
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    fn from_bytes(data: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Dec::new(data);
        let v = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }

    /// Encoded size in bytes.
    fn wire_len(&self) -> usize {
        let mut enc = Enc::new();
        self.encode(&mut enc);
        enc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(300);
        e.u32(70_000);
        e.u64(1 << 40);
        e.i32(-5);
        e.bool(true);
        e.bool(false);
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.i32().unwrap(), -5);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn string_roundtrip_and_utf8_check() {
        let mut e = Enc::new();
        e.str("ucbvax ✓");
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert_eq!(d.str().unwrap(), "ucbvax ✓");

        // corrupt the payload
        let mut bad = b.to_vec();
        let n = bad.len();
        bad[n - 1] = 0xFF;
        bad[n - 2] = 0xFF;
        bad[n - 3] = 0xFF;
        let mut d = Dec::new(&bad);
        assert_eq!(d.str(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn option_roundtrip_and_bad_tag() {
        let mut e = Enc::new();
        e.opt(&Some(9u32), |e, v| e.u32(*v));
        e.opt(&None::<u32>, |e, v| e.u32(*v));
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert_eq!(d.opt(|d| d.u32()).unwrap(), Some(9));
        assert_eq!(d.opt(|d| d.u32()).unwrap(), None);

        let mut d = Dec::new(&[9u8]);
        assert!(matches!(d.opt(|d| d.u32()), Err(CodecError::BadTag { .. })));
    }

    #[test]
    fn seq_roundtrip() {
        let mut e = Enc::new();
        e.seq(&[1u32, 2, 3], |e, v| e.u32(*v));
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert_eq!(d.seq(|d| d.u32()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn hostile_seq_count_is_rejected_early() {
        // count claims 65535 elements but only 2 bytes follow
        let data = [0xFFu8, 0xFF, 1, 2];
        let mut d = Dec::new(&data);
        assert_eq!(d.seq(|d| d.u32()), Err(CodecError::Truncated));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let mut d = Dec::new(&[1u8]);
        assert_eq!(d.u32(), Err(CodecError::Truncated));
        let mut d = Dec::new(&[0u8, 5, b'a']);
        assert_eq!(d.str(), Err(CodecError::Truncated));
    }

    #[test]
    fn trailing_bytes_detected() {
        let d = Dec::new(&[1u8, 2, 3]);
        assert_eq!(d.finish(), Err(CodecError::TrailingBytes(3)));
    }

    #[test]
    fn errors_display() {
        assert_eq!(CodecError::Truncated.to_string(), "message truncated");
        assert!(CodecError::BadTag {
            what: "Msg",
            tag: 9
        }
        .to_string()
        .contains("Msg"));
        assert!(CodecError::TrailingBytes(4).to_string().contains('4'));
    }
}
