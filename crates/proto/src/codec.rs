//! Binary wire codec.
//!
//! A small, explicit, length-checked binary format. The codec is
//! hand-rolled (rather than derived from a serialization framework) for
//! two reasons: the byte-exact message sizes feed the latency models —
//! Table 1 is about a *112-byte* message — and the decoder must be robust
//! against arbitrary bytes, since LPMs accept connections from the
//! network.
//!
//! Conventions: integers are big-endian; strings are `u16` length-prefixed
//! UTF-8; sequences are `u16` count-prefixed; options are a one-byte tag.
//! Batches of messages are `u32` count-prefixed sequences of `u32`
//! length-prefixed frames (see [`encode_batch`] / [`frames`]).
//!
//! # Allocation discipline
//!
//! Encoding is the hottest protocol path — every request, relay, and
//! broadcast fan-out serializes at least one message. [`Enc::pooled`]
//! draws its buffer from a thread-local pool so steady-state encoding
//! never grows a fresh `Vec` through the realloc ladder; the buffer's
//! capacity is recycled when the encoder finishes. On the decode side,
//! [`Dec::str_ref`] borrows string fields straight out of the receive
//! buffer so callers that only inspect (route hops, host-name dispatch)
//! skip the per-field `String` allocation that [`Dec::str`] pays.

use std::cell::RefCell;
use std::error::Error;
use std::fmt;

use bytes::Bytes;

/// Buffers at most this large are returned to the encode pool; anything
/// bigger (a huge snapshot reply) is freed rather than hoarded.
const POOL_MAX_CAPACITY: usize = 16 * 1024;

/// Buffers retained per thread. Encoding rarely nests more than a frame
/// inside a batch, so a small stack suffices.
const POOL_MAX_BUFFERS: usize = 8;

thread_local! {
    /// Recycled encode buffers, cleared but with capacity intact.
    static ENC_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a warm buffer from the pool (or a fresh one).
fn pool_get() -> Vec<u8> {
    ENC_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Returns a buffer to the pool if it is worth keeping.
fn pool_put(mut buf: Vec<u8>) {
    if buf.capacity() == 0 || buf.capacity() > POOL_MAX_CAPACITY {
        return;
    }
    buf.clear();
    ENC_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_MAX_BUFFERS {
            pool.push(buf);
        }
    });
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    Truncated,
    /// A tag byte had no corresponding variant.
    BadTag {
        /// Context description (which type was being decoded).
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Decoding finished with bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => f.write_str("message truncated"),
            CodecError::BadTag { what, tag } => write!(f, "bad tag {tag} decoding {what}"),
            CodecError::BadUtf8 => f.write_str("invalid utf-8 in string field"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl Error for CodecError {}

/// Encoder: accumulates bytes.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
    /// Whether `buf` came from (and returns to) the thread-local pool.
    pooled: bool,
}

impl Enc {
    /// Creates an empty encoder with a fresh buffer.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Creates an encoder backed by a recycled thread-local buffer.
    ///
    /// The buffer's capacity survives across messages, so steady-state
    /// encoding performs no growth reallocations; [`Enc::into_bytes`]
    /// copies the encoding into an exact-size buffer and recycles the
    /// working one.
    pub fn pooled() -> Self {
        Enc {
            buf: pool_get(),
            pooled: true,
        }
    }

    /// Finishes encoding, yielding the bytes.
    pub fn into_bytes(self) -> Bytes {
        if self.pooled {
            let out = Bytes::copy_from_slice(&self.buf);
            pool_put(self.buf);
            out
        } else {
            Bytes::from(self.buf)
        }
    }

    /// Finishes encoding, yielding only the length (recycling the buffer
    /// when pooled). Used for size queries that never need the bytes.
    pub fn into_len(self) -> usize {
        let n = self.buf.len();
        if self.pooled {
            pool_put(self.buf);
        }
        n
    }

    /// Appends `item` as a `u32` length-prefixed frame.
    ///
    /// The length slot is reserved up front and patched after the item
    /// encodes, so framing costs no extra buffer or second encode pass.
    pub fn frame(&mut self, item: &impl Wire) {
        let slot = self.buf.len();
        self.u32(0);
        item.encode(self);
        let len = u32::try_from(self.buf.len() - slot - 4).expect("frame fits in u32");
        self.buf[slot..slot + 4].copy_from_slice(&len.to_be_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` big-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a `u32` big-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a `u64` big-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes an `i32` big-endian.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes an `i64` big-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed string.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds `u16::MAX` bytes (protocol fields are
    /// short names and paths).
    pub fn str(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("protocol string fits in u16");
        self.u16(len);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a `u32` length-prefixed byte blob.
    ///
    /// Blobs carry nested pre-encoded payloads (aggregated reply batches),
    /// so the length prefix is `u32` rather than the string codec's `u16`.
    ///
    /// # Panics
    ///
    /// Panics if the blob exceeds `u32::MAX` bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        let len = u32::try_from(b.len()).expect("protocol blob fits in u32");
        self.u32(len);
        self.buf.extend_from_slice(b);
    }

    /// Writes an `Option` with a one-byte presence tag.
    pub fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    /// Writes a count-prefixed sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence exceeds `u16::MAX` entries.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        let len = u16::try_from(items.len()).expect("protocol sequence fits in u16");
        self.u16(len);
        for item in items {
            f(self, item);
        }
    }
}

/// Decoder: a cursor over received bytes.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless all input was consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`].
    pub fn finish(self) -> Result<(), CodecError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `i32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads an `i64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a bool (any nonzero byte is true).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a length-prefixed string, borrowing it from the input.
    ///
    /// The returned slice lives as long as the receive buffer, so callers
    /// that only inspect the field (dispatch on a host name, compare a
    /// route hop) pay no allocation.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::BadUtf8`].
    pub fn str_ref(&mut self) -> Result<&'a str, CodecError> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw).map_err(|_| CodecError::BadUtf8)
    }

    /// Reads a length-prefixed string into an owned `String`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] or [`CodecError::BadUtf8`].
    pub fn str(&mut self) -> Result<String, CodecError> {
        self.str_ref().map(str::to_owned)
    }

    /// Reads a `u32` length-prefixed byte blob, borrowing it from the
    /// input (the zero-copy mate of [`Enc::bytes`]).
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`].
    pub fn bytes_ref(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads an `Option`.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadTag`] for a tag other than 0 or 1, plus whatever
    /// the element decoder returns.
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            tag => Err(CodecError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }

    /// Reads a count-prefixed sequence.
    ///
    /// # Errors
    ///
    /// Whatever the element decoder returns.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let n = self.u16()? as usize;
        // Guard against absurd counts in hostile input: each element needs
        // at least one byte.
        if n > self.remaining() {
            return Err(CodecError::Truncated);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Types that encode to / decode from the wire format.
pub trait Wire: Sized {
    /// Appends this value to the encoder.
    fn encode(&self, enc: &mut Enc);

    /// Reads one value from the decoder.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError>;

    /// Encodes to a standalone byte string using a pooled buffer.
    fn to_bytes(&self) -> Bytes {
        let mut enc = Enc::pooled();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Decodes from a complete byte string (no trailing bytes allowed).
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    fn from_bytes(data: &[u8]) -> Result<Self, CodecError> {
        let mut dec = Dec::new(data);
        let v = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }

    /// Encoded size in bytes.
    fn wire_len(&self) -> usize {
        let mut enc = Enc::pooled();
        self.encode(&mut enc);
        enc.into_len()
    }
}

/// Encodes `items` as one batch: a `u32` count followed by a `u32`
/// length-prefixed frame per item.
///
/// Batching amortizes per-send overhead when several messages travel to
/// the same destination at once (a broadcast merge relaying queued
/// responses upstream, a snapshot reply carrying many records).
pub fn encode_batch<T: Wire>(items: &[T]) -> Bytes {
    let mut enc = Enc::pooled();
    enc.u32(u32::try_from(items.len()).expect("batch count fits in u32"));
    for item in items {
        enc.frame(item);
    }
    enc.into_bytes()
}

/// Decodes a batch produced by [`encode_batch`].
///
/// # Errors
///
/// Any [`CodecError`] on malformed input, including trailing bytes after
/// the final frame.
pub fn decode_batch<T: Wire>(data: &[u8]) -> Result<Vec<T>, CodecError> {
    let iter = frames(data)?;
    let mut out = Vec::with_capacity(iter.len());
    for frame in iter {
        out.push(T::from_bytes(frame?)?);
    }
    Ok(out)
}

/// Opens a batch for zero-copy iteration: each frame is yielded as a
/// borrowed slice of `data`, so callers can decode lazily, skip frames,
/// or relay them without reserializing.
///
/// # Errors
///
/// [`CodecError::Truncated`] when the header is incomplete or the claimed
/// count cannot fit in the remaining bytes.
pub fn frames(data: &[u8]) -> Result<FrameIter<'_>, CodecError> {
    let mut dec = Dec::new(data);
    let count = dec.u32()? as usize;
    // Each frame needs at least its 4-byte length prefix; reject hostile
    // counts before any allocation happens downstream.
    if count.checked_mul(4).is_none_or(|min| min > dec.remaining()) {
        return Err(CodecError::Truncated);
    }
    Ok(FrameIter {
        data,
        pos: data.len() - dec.remaining(),
        left: count,
    })
}

/// Zero-copy iterator over the frames of a batch. See [`frames`].
#[derive(Debug, Clone)]
pub struct FrameIter<'a> {
    data: &'a [u8],
    pos: usize,
    left: usize,
}

impl<'a> FrameIter<'a> {
    /// Frames not yet yielded.
    pub fn len(&self) -> usize {
        self.left
    }

    /// True when every frame has been yielded.
    pub fn is_empty(&self) -> bool {
        self.left == 0
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = Result<&'a [u8], CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.left == 0 {
            // All frames consumed: any residue is a framing error.
            let trailing = self.data.len() - self.pos;
            if trailing > 0 {
                self.pos = self.data.len();
                return Some(Err(CodecError::TrailingBytes(trailing)));
            }
            return None;
        }
        self.left -= 1;
        let mut dec = Dec::new(&self.data[self.pos..]);
        let frame = (|| {
            let len = dec.u32()? as usize;
            dec.take(len)
        })();
        match frame {
            Ok(slice) => {
                self.pos = self.data.len() - dec.remaining();
                Some(Ok(slice))
            }
            Err(e) => {
                // Poison the iterator: framing is unrecoverable.
                self.left = 0;
                self.pos = self.data.len();
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // +1 covers the possible trailing-bytes error item.
        (self.left, Some(self.left + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(300);
        e.u32(70_000);
        e.u64(1 << 40);
        e.i32(-5);
        e.bool(true);
        e.bool(false);
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.i32().unwrap(), -5);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn string_roundtrip_and_utf8_check() {
        let mut e = Enc::new();
        e.str("ucbvax ✓");
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert_eq!(d.str().unwrap(), "ucbvax ✓");

        // corrupt the payload
        let mut bad = b.to_vec();
        let n = bad.len();
        bad[n - 1] = 0xFF;
        bad[n - 2] = 0xFF;
        bad[n - 3] = 0xFF;
        let mut d = Dec::new(&bad);
        assert_eq!(d.str(), Err(CodecError::BadUtf8));
    }

    #[test]
    fn option_roundtrip_and_bad_tag() {
        let mut e = Enc::new();
        e.opt(&Some(9u32), |e, v| e.u32(*v));
        e.opt(&None::<u32>, |e, v| e.u32(*v));
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert_eq!(d.opt(|d| d.u32()).unwrap(), Some(9));
        assert_eq!(d.opt(|d| d.u32()).unwrap(), None);

        let mut d = Dec::new(&[9u8]);
        assert!(matches!(d.opt(|d| d.u32()), Err(CodecError::BadTag { .. })));
    }

    #[test]
    fn seq_roundtrip() {
        let mut e = Enc::new();
        e.seq(&[1u32, 2, 3], |e, v| e.u32(*v));
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert_eq!(d.seq(|d| d.u32()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn hostile_seq_count_is_rejected_early() {
        // count claims 65535 elements but only 2 bytes follow
        let data = [0xFFu8, 0xFF, 1, 2];
        let mut d = Dec::new(&data);
        assert_eq!(d.seq(|d| d.u32()), Err(CodecError::Truncated));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let mut d = Dec::new(&[1u8]);
        assert_eq!(d.u32(), Err(CodecError::Truncated));
        let mut d = Dec::new(&[0u8, 5, b'a']);
        assert_eq!(d.str(), Err(CodecError::Truncated));
    }

    #[test]
    fn trailing_bytes_detected() {
        let d = Dec::new(&[1u8, 2, 3]);
        assert_eq!(d.finish(), Err(CodecError::TrailingBytes(3)));
    }

    #[test]
    fn pooled_encoder_matches_fresh_encoder() {
        let encode_all = |mut e: Enc| {
            e.u8(1);
            e.str("host-name");
            e.seq(&[10u64, 20, 30], |e, v| e.u64(*v));
            e.into_bytes()
        };
        let fresh = encode_all(Enc::new());
        let pooled = encode_all(Enc::pooled());
        assert_eq!(fresh, pooled);
        // A second pooled encode reuses the recycled buffer and must not
        // leak bytes from the first.
        let again = encode_all(Enc::pooled());
        assert_eq!(fresh, again);
    }

    #[test]
    fn into_len_matches_into_bytes() {
        let mut a = Enc::pooled();
        a.str("abc");
        a.u32(7);
        let mut b = Enc::pooled();
        b.str("abc");
        b.u32(7);
        assert_eq!(a.into_len(), b.into_bytes().len());
    }

    #[test]
    fn str_ref_borrows_from_input() {
        let mut e = Enc::new();
        e.str("borrowed");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let s = d.str_ref().unwrap();
        assert_eq!(s, "borrowed");
        // Pointer identity: the slice is inside the receive buffer.
        let range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(range.contains(&(s.as_ptr() as usize)));
        d.finish().unwrap();
    }

    #[test]
    fn batch_roundtrip_and_zero_copy_frames() {
        // u32 wrapper lacks a Wire impl here; encode strings via a tiny
        // local type instead.
        struct S(String);
        impl Wire for S {
            fn encode(&self, enc: &mut Enc) {
                enc.str(&self.0);
            }
            fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
                Ok(S(dec.str()?))
            }
        }
        let items: Vec<S> = ["a", "bb", "ccc"]
            .iter()
            .map(|s| S(s.to_string()))
            .collect();
        let bytes = encode_batch(&items);
        let back: Vec<S> = decode_batch(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[1].0, "bb");

        let mut it = frames(&bytes).unwrap();
        assert_eq!(it.len(), 3);
        let first = it.next().unwrap().unwrap();
        // Frame payload is a borrowed slice of the batch buffer.
        let range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(range.contains(&(first.as_ptr() as usize)));
        assert!(it.by_ref().all(|f| f.is_ok()));
    }

    #[test]
    fn empty_batch_roundtrips() {
        let bytes = encode_batch::<crate::types::Route>(&[]);
        assert_eq!(decode_batch::<crate::types::Route>(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn hostile_batch_rejected() {
        // Claims 1 billion frames in 8 bytes.
        let mut data = Vec::new();
        data.extend_from_slice(&1_000_000_000u32.to_be_bytes());
        data.extend_from_slice(&[0u8; 4]);
        assert_eq!(frames(&data).err(), Some(CodecError::Truncated));

        // Frame length runs past the end.
        let mut data = Vec::new();
        data.extend_from_slice(&1u32.to_be_bytes());
        data.extend_from_slice(&100u32.to_be_bytes());
        data.push(0);
        let mut it = frames(&data).unwrap();
        assert_eq!(it.next(), Some(Err(CodecError::Truncated)));
        assert_eq!(it.next(), None, "errors poison the iterator");

        // Trailing garbage after the final frame.
        let mut data = Vec::new();
        data.extend_from_slice(&1u32.to_be_bytes());
        data.extend_from_slice(&1u32.to_be_bytes());
        data.push(9);
        data.push(0xEE);
        let mut it = frames(&data).unwrap();
        assert!(it.next().unwrap().is_ok());
        assert_eq!(it.next(), Some(Err(CodecError::TrailingBytes(1))));
    }

    #[test]
    fn errors_display() {
        assert_eq!(CodecError::Truncated.to_string(), "message truncated");
        assert!(CodecError::BadTag {
            what: "Msg",
            tag: 9
        }
        .to_string()
        .contains("Msg"));
        assert!(CodecError::TrailingBytes(4).to_string().contains('4'));
    }
}
