//! The PPM message vocabulary.
//!
//! Three protocol families share one [`Msg`] enum (they flow over the same
//! kinds of stream connections):
//!
//! * the **pmd protocol** — LPM creation ab initio, Figure 2;
//! * the **sibling/tool protocol** — authenticated `Hello` handshakes,
//!   then request/reply ([`Msg::Req`]/[`Msg::Resp`]) and the broadcast
//!   echo wave ([`Msg::Bcast`]/[`Msg::BcastResp`]/[`Msg::BcastDone`]);
//! * the **recovery protocol** — CCS announcements and probes, Section 5.

use crate::codec::{CodecError, Dec, Enc, Wire};
use crate::triggers::TriggerSpec;
use crate::types::{
    FileRecord, Gpid, HistoryRecord, MetricRow, ProcRecord, Route, RusageRecord, Stamp,
};

/// Sorts and dedups a `missing`-hosts list for the wire: aggregate
/// relays build these from per-hop sets and re-flushes, so the raw order
/// (and cross-hop duplicates) is not canonical. Encoding always emits
/// the normalized form, keeping same-seed runs byte-identical.
fn canonical_missing(missing: &[String]) -> Vec<&str> {
    let mut v: Vec<&str> = missing.iter().map(String::as_str).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Process-control verbs of the snapshot tool: "stop a process, execute it
/// in the foreground, execute it in the background, kill it".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlAction {
    /// Stop (SIGSTOP).
    Stop,
    /// Continue in the foreground.
    Foreground,
    /// Continue in the background.
    Background,
    /// Kill (SIGKILL).
    Kill,
    /// Deliver an arbitrary signal by number.
    Signal(u8),
}

impl Wire for ControlAction {
    fn encode(&self, enc: &mut Enc) {
        match self {
            ControlAction::Stop => enc.u8(0),
            ControlAction::Foreground => enc.u8(1),
            ControlAction::Background => enc.u8(2),
            ControlAction::Kill => enc.u8(3),
            ControlAction::Signal(n) => {
                enc.u8(4);
                enc.u8(*n);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        match dec.u8()? {
            0 => Ok(ControlAction::Stop),
            1 => Ok(ControlAction::Foreground),
            2 => Ok(ControlAction::Background),
            3 => Ok(ControlAction::Kill),
            4 => Ok(ControlAction::Signal(dec.u8()?)),
            tag => Err(CodecError::BadTag {
                what: "ControlAction",
                tag,
            }),
        }
    }
}

/// Error codes carried in [`Reply::Err`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrCode {
    /// Target process does not exist.
    NoSuchProcess,
    /// Permission denied (cross-user request).
    Permission,
    /// No route to the target host.
    NoRoute,
    /// Target host is down.
    HostDown,
    /// The responsible handler timed out.
    Timeout,
    /// Request malformed or inapplicable.
    BadRequest,
    /// Named entity not found.
    NotFound,
    /// Internal failure in the manager.
    Internal,
    /// The request's propagated deadline expired while it was in flight
    /// (distinct from [`ErrCode::Timeout`], which means the local timer
    /// fired with no reply).
    DeadlineExceeded,
    /// The request carries a correlation id stamped by a dead LPM
    /// incarnation (its boot epoch is older than the fence learned from
    /// the respawn's [`Msg::ForestPull`]). Such requests are answered
    /// replay-only — never executed fresh — because the predecessor's
    /// dedup window was purged and re-execution could double-apply.
    StaleEpoch,
}

impl Wire for ErrCode {
    fn encode(&self, enc: &mut Enc) {
        let tag = match self {
            ErrCode::NoSuchProcess => 0,
            ErrCode::Permission => 1,
            ErrCode::NoRoute => 2,
            ErrCode::HostDown => 3,
            ErrCode::Timeout => 4,
            ErrCode::BadRequest => 5,
            ErrCode::NotFound => 6,
            ErrCode::Internal => 7,
            ErrCode::DeadlineExceeded => 8,
            ErrCode::StaleEpoch => 9,
        };
        enc.u8(tag);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match dec.u8()? {
            0 => ErrCode::NoSuchProcess,
            1 => ErrCode::Permission,
            2 => ErrCode::NoRoute,
            3 => ErrCode::HostDown,
            4 => ErrCode::Timeout,
            5 => ErrCode::BadRequest,
            6 => ErrCode::NotFound,
            7 => ErrCode::Internal,
            8 => ErrCode::DeadlineExceeded,
            9 => ErrCode::StaleEpoch,
            tag => {
                return Err(CodecError::BadTag {
                    what: "ErrCode",
                    tag,
                })
            }
        })
    }
}

/// Operations a tool (or a sibling acting for a tool) asks an LPM to
/// perform on its host.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Liveness check.
    Ping,
    /// LPM status: load, managed process count, sibling set.
    Status,
    /// Control a local process.
    Control {
        /// Target pid on the receiving LPM's host.
        pid: u32,
        /// What to do.
        action: ControlAction,
    },
    /// Create a process on the receiving LPM's host (the LPM is "the
    /// process creation server for a user's remote processes").
    Spawn {
        /// Command name.
        command: String,
        /// Logical parent in the user's computation tree.
        logical_parent: Option<Gpid>,
        /// Synthetic workload: lifetime before voluntary exit (µs);
        /// `None` runs until signalled.
        lifetime_us: Option<u64>,
        /// Synthetic workload: CPU burst at start (µs).
        work_us: u64,
        /// Whether the process is CPU-bound while alive.
        cpu_bound: bool,
    },
    /// Report all managed processes on this host (one snapshot slice).
    Snapshot,
    /// Report resource statistics of exited processes (all, or one pid).
    Rusage {
        /// Restrict to one pid.
        pid: Option<u32>,
    },
    /// Report history events at or after `since_us`, newest last.
    History {
        /// Lower time bound (µs).
        since_us: u64,
        /// Maximum entries.
        max: u16,
    },
    /// Report open descriptors of a local process.
    OpenFiles {
        /// Target pid.
        pid: u32,
    },
    /// Adopt a local process (and descendants) with tracing flags.
    Adopt {
        /// Target pid.
        pid: u32,
        /// [`TraceFlags`](https://en.wikipedia.org/wiki/Ptrace)-style bits
        /// (see `ppm-simos::events::TraceFlags`).
        flags: u8,
    },
    /// Change the tracing granularity of an adopted process.
    SetTraceFlags {
        /// Target pid.
        pid: u32,
        /// New flag bits.
        flags: u8,
    },
    /// Register a history-dependent trigger.
    AddTrigger {
        /// The trigger.
        spec: TriggerSpec,
    },
    /// Remove a trigger by id.
    DelTrigger {
        /// Trigger id.
        id: u32,
    },
    /// List registered triggers.
    ListTriggers,
    /// Report the LPM's internal counters (requests, broadcasts, relays,
    /// handler pool activity) — introspection for tools and experiments.
    Stats,
    /// Pull the LPM's observability registry: every counter, gauge and
    /// histogram it keeps, answered with [`Reply::Metrics`] (delivered to
    /// tools as [`Msg::MetricsSnapshot`]).
    Metrics,
}

impl Op {
    /// Short name for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Status => "status",
            Op::Control { .. } => "control",
            Op::Spawn { .. } => "spawn",
            Op::Snapshot => "snapshot",
            Op::Rusage { .. } => "rusage",
            Op::History { .. } => "history",
            Op::OpenFiles { .. } => "files",
            Op::Adopt { .. } => "adopt",
            Op::SetTraceFlags { .. } => "traceflags",
            Op::AddTrigger { .. } => "add-trigger",
            Op::DelTrigger { .. } => "del-trigger",
            Op::ListTriggers => "list-triggers",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
        }
    }
}

impl Wire for Op {
    fn encode(&self, enc: &mut Enc) {
        match self {
            Op::Ping => enc.u8(0),
            Op::Status => enc.u8(1),
            Op::Control { pid, action } => {
                enc.u8(2);
                enc.u32(*pid);
                action.encode(enc);
            }
            Op::Spawn {
                command,
                logical_parent,
                lifetime_us,
                work_us,
                cpu_bound,
            } => {
                enc.u8(3);
                enc.str(command);
                enc.opt(logical_parent, |e, g| g.encode(e));
                enc.opt(lifetime_us, |e, v| e.u64(*v));
                enc.u64(*work_us);
                enc.bool(*cpu_bound);
            }
            Op::Snapshot => enc.u8(4),
            Op::Rusage { pid } => {
                enc.u8(5);
                enc.opt(pid, |e, v| e.u32(*v));
            }
            Op::History { since_us, max } => {
                enc.u8(6);
                enc.u64(*since_us);
                enc.u16(*max);
            }
            Op::OpenFiles { pid } => {
                enc.u8(7);
                enc.u32(*pid);
            }
            Op::Adopt { pid, flags } => {
                enc.u8(8);
                enc.u32(*pid);
                enc.u8(*flags);
            }
            Op::SetTraceFlags { pid, flags } => {
                enc.u8(9);
                enc.u32(*pid);
                enc.u8(*flags);
            }
            Op::AddTrigger { spec } => {
                enc.u8(10);
                spec.encode(enc);
            }
            Op::DelTrigger { id } => {
                enc.u8(11);
                enc.u32(*id);
            }
            Op::ListTriggers => enc.u8(12),
            Op::Stats => enc.u8(13),
            Op::Metrics => enc.u8(14),
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match dec.u8()? {
            0 => Op::Ping,
            1 => Op::Status,
            2 => Op::Control {
                pid: dec.u32()?,
                action: ControlAction::decode(dec)?,
            },
            3 => Op::Spawn {
                command: dec.str()?,
                logical_parent: dec.opt(Gpid::decode)?,
                lifetime_us: dec.opt(|d| d.u64())?,
                work_us: dec.u64()?,
                cpu_bound: dec.bool()?,
            },
            4 => Op::Snapshot,
            5 => Op::Rusage {
                pid: dec.opt(|d| d.u32())?,
            },
            6 => Op::History {
                since_us: dec.u64()?,
                max: dec.u16()?,
            },
            7 => Op::OpenFiles { pid: dec.u32()? },
            8 => Op::Adopt {
                pid: dec.u32()?,
                flags: dec.u8()?,
            },
            9 => Op::SetTraceFlags {
                pid: dec.u32()?,
                flags: dec.u8()?,
            },
            10 => Op::AddTrigger {
                spec: TriggerSpec::decode(dec)?,
            },
            11 => Op::DelTrigger { id: dec.u32()? },
            12 => Op::ListTriggers,
            13 => Op::Stats,
            14 => Op::Metrics,
            tag => return Err(CodecError::BadTag { what: "Op", tag }),
        })
    }
}

/// Replies to [`Op`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Success with no payload.
    Ok,
    /// Failure.
    Err {
        /// Machine-readable code.
        code: ErrCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Ping answer.
    Pong,
    /// [`Op::Spawn`] result.
    Spawned {
        /// Identity of the new process.
        gpid: Gpid,
    },
    /// One host's slice of a distributed snapshot.
    Snapshot {
        /// Reporting host.
        host: String,
        /// Managed processes on that host.
        procs: Vec<ProcRecord>,
    },
    /// Exited-process statistics.
    Rusage {
        /// Records, oldest first.
        records: Vec<RusageRecord>,
    },
    /// History slice.
    History {
        /// Events, oldest first.
        events: Vec<HistoryRecord>,
    },
    /// Open descriptors of a process.
    Files {
        /// Entries in descriptor order.
        entries: Vec<FileRecord>,
    },
    /// Registered triggers.
    Triggers {
        /// Entries in id order.
        entries: Vec<TriggerSpec>,
    },
    /// LPM internal counters.
    Stats {
        /// Requests that entered the pipeline.
        requests: u64,
        /// Broadcasts originated / forwarded / suppressed.
        bcasts: (u64, u64, u64),
        /// Directed requests relayed for other LPMs.
        relays: u64,
        /// Requests answered via a learned route instead of a new channel.
        route_cache_hits: u64,
        /// Hello authentication failures.
        auth_failures: u64,
        /// Handler forks / reuses / reaped.
        handlers: (u64, u64, u64),
    },
    /// LPM status.
    Status {
        /// Reporting host.
        host: String,
        /// Load average × 1000.
        load_milli: u32,
        /// Managed (adopted or created) live processes.
        managed: u32,
        /// Hosts with live sibling connections.
        siblings: Vec<String>,
        /// Current CCS host as this LPM believes it.
        ccs: String,
        /// CCS epoch (bumps on re-election).
        epoch: u64,
    },
    /// A sweep result assembled without every host: `inner` carries what
    /// was gathered, `missing` names the hosts whose slices never arrived
    /// (straggler timeout or partition during the wave).
    Partial {
        /// Hosts whose contributions are absent from `inner`.
        missing: Vec<String>,
        /// The combined result of the hosts that did answer.
        inner: Box<Reply>,
    },
    /// [`Op::Metrics`] result: one LPM's observability registry.
    Metrics {
        /// Reporting host.
        host: String,
        /// Simulated instant the registry was sampled (µs).
        at_us: u64,
        /// Registry contents, sorted by name.
        rows: Vec<MetricRow>,
    },
}

impl Reply {
    /// True for [`Reply::Err`].
    pub fn is_err(&self) -> bool {
        matches!(self, Reply::Err { .. })
    }
}

impl Wire for Reply {
    fn encode(&self, enc: &mut Enc) {
        match self {
            Reply::Ok => enc.u8(0),
            Reply::Err { code, detail } => {
                enc.u8(1);
                code.encode(enc);
                enc.str(detail);
            }
            Reply::Pong => enc.u8(2),
            Reply::Spawned { gpid } => {
                enc.u8(3);
                gpid.encode(enc);
            }
            Reply::Snapshot { host, procs } => {
                enc.u8(4);
                enc.str(host);
                enc.seq(procs, |e, p| p.encode(e));
            }
            Reply::Rusage { records } => {
                enc.u8(5);
                enc.seq(records, |e, r| r.encode(e));
            }
            Reply::History { events } => {
                enc.u8(6);
                enc.seq(events, |e, r| r.encode(e));
            }
            Reply::Files { entries } => {
                enc.u8(7);
                enc.seq(entries, |e, r| r.encode(e));
            }
            Reply::Triggers { entries } => {
                enc.u8(8);
                enc.seq(entries, |e, r| r.encode(e));
            }
            Reply::Stats {
                requests,
                bcasts,
                relays,
                route_cache_hits,
                auth_failures,
                handlers,
            } => {
                enc.u8(10);
                enc.u64(*requests);
                enc.u64(bcasts.0);
                enc.u64(bcasts.1);
                enc.u64(bcasts.2);
                enc.u64(*relays);
                enc.u64(*route_cache_hits);
                enc.u64(*auth_failures);
                enc.u64(handlers.0);
                enc.u64(handlers.1);
                enc.u64(handlers.2);
            }
            Reply::Status {
                host,
                load_milli,
                managed,
                siblings,
                ccs,
                epoch,
            } => {
                enc.u8(9);
                enc.str(host);
                enc.u32(*load_milli);
                enc.u32(*managed);
                enc.seq(siblings, |e, s| e.str(s));
                enc.str(ccs);
                enc.u64(*epoch);
            }
            Reply::Partial { missing, inner } => {
                enc.u8(11);
                enc.seq(&canonical_missing(missing), |e, s| e.str(s));
                inner.encode(enc);
            }
            Reply::Metrics { host, at_us, rows } => {
                enc.u8(12);
                enc.str(host);
                enc.u64(*at_us);
                enc.seq(rows, |e, r| r.encode(e));
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match dec.u8()? {
            0 => Reply::Ok,
            1 => Reply::Err {
                code: ErrCode::decode(dec)?,
                detail: dec.str()?,
            },
            2 => Reply::Pong,
            3 => Reply::Spawned {
                gpid: Gpid::decode(dec)?,
            },
            4 => Reply::Snapshot {
                host: dec.str()?,
                procs: dec.seq(ProcRecord::decode)?,
            },
            5 => Reply::Rusage {
                records: dec.seq(RusageRecord::decode)?,
            },
            6 => Reply::History {
                events: dec.seq(HistoryRecord::decode)?,
            },
            7 => Reply::Files {
                entries: dec.seq(FileRecord::decode)?,
            },
            8 => Reply::Triggers {
                entries: dec.seq(TriggerSpec::decode)?,
            },
            9 => Reply::Status {
                host: dec.str()?,
                load_milli: dec.u32()?,
                managed: dec.u32()?,
                siblings: dec.seq(|d| d.str())?,
                ccs: dec.str()?,
                epoch: dec.u64()?,
            },
            10 => Reply::Stats {
                requests: dec.u64()?,
                bcasts: (dec.u64()?, dec.u64()?, dec.u64()?),
                relays: dec.u64()?,
                route_cache_hits: dec.u64()?,
                auth_failures: dec.u64()?,
                handlers: (dec.u64()?, dec.u64()?, dec.u64()?),
            },
            11 => Reply::Partial {
                missing: dec.seq(|d| d.str())?,
                inner: Box::new(Reply::decode(dec)?),
            },
            12 => Reply::Metrics {
                host: dec.str()?,
                at_us: dec.u64()?,
                rows: dec.seq(MetricRow::decode)?,
            },
            tag => return Err(CodecError::BadTag { what: "Reply", tag }),
        })
    }
}

/// One host's contribution inside a [`Msg::BcastAgg`] batch: what a
/// [`Msg::BcastResp`] carries, minus the per-message stamp (the aggregate
/// frame carries it once for the whole batch).
#[derive(Debug, Clone, PartialEq)]
pub struct BcastPart {
    /// Answering host.
    pub host: String,
    /// The host's reply.
    pub reply: Reply,
    /// Route the host's slice of the wave had taken.
    pub route: Route,
}

impl Wire for BcastPart {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.host);
        self.reply.encode(enc);
        self.route.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(BcastPart {
            host: dec.str()?,
            reply: Reply::decode(dec)?,
            route: Route::decode(dec)?,
        })
    }
}

/// Everything that flows between tools, LPMs and pmds.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // ---- pmd protocol (Figure 2) ----------------------------------------
    /// Step 3: create (or find) the user's LPM on this host.
    CreateLpm {
        /// Owning user.
        user: u32,
    },
    /// Query without creating.
    QueryLpm {
        /// Owning user.
        user: u32,
    },
    /// Step 4: the accept address of the user's LPM.
    LpmAddr {
        /// Owning user.
        user: u32,
        /// Accept port of the LPM.
        port: u16,
        /// True when the LPM was created by this request.
        created: bool,
    },
    /// Negative answer to [`Msg::QueryLpm`].
    NoLpm {
        /// Owning user.
        user: u32,
    },

    // ---- handshake on an LPM accept socket -------------------------------
    /// First message on any connection to an LPM: who is calling.
    Hello {
        /// The user the caller claims to act for.
        user: u32,
        /// Caller's host name.
        host: String,
        /// True for tools, false for sibling LPMs.
        is_tool: bool,
        /// The caller's current CCS view (siblings propagate it).
        ccs: String,
        /// CCS epoch.
        epoch: u64,
        /// Keyed proof derived from the user's network secret.
        proof: u64,
    },
    /// Handshake answer.
    HelloAck {
        /// Responder's host name.
        host: String,
        /// Whether authentication succeeded.
        ok: bool,
        /// Responder's CCS view.
        ccs: String,
        /// Responder's CCS epoch.
        epoch: u64,
    },

    // ---- request / reply --------------------------------------------------
    /// A directed request, possibly relayed along `route`.
    Req {
        /// Request id, unique at the origin.
        id: u64,
        /// Acting user.
        user: u32,
        /// Final destination host.
        dest: String,
        /// The operation.
        op: Op,
        /// Hosts traversed so far.
        route: Route,
        /// Remaining relay budget.
        hops_left: u8,
        /// Absolute deadline (simulated µs since epoch); `0` means none.
        /// Relays decay it in lockstep with `hops_left` and refuse
        /// expired requests with [`ErrCode::DeadlineExceeded`].
        deadline_us: u64,
        /// Zero-based attempt counter; retries reuse the same `id` so
        /// receivers can deduplicate on `(origin, id)`.
        attempt: u8,
        /// Boot epoch of the origin LPM's incarnation (its start instant
        /// in µs, never 0 for an LPM; `0` means unstamped, e.g. a tool).
        /// Relays carry it unchanged. Executors that have learned a newer
        /// epoch for the origin (via [`Msg::ForestPull`]) treat older
        /// stamps as replay-only and refuse with [`ErrCode::StaleEpoch`]
        /// instead of executing fresh.
        boot: u64,
    },
    /// Reply to [`Msg::Req`], relayed back along the reverse route.
    Resp {
        /// Request id.
        id: u64,
        /// The reply.
        reply: Reply,
        /// Full source→destination route the request took.
        route: Route,
    },

    // ---- broadcast (graph-cover echo wave) ---------------------------------
    /// A broadcast request propagating over the sibling graph.
    Bcast {
        /// Signed timestamp (dedup + authenticity).
        stamp: Stamp,
        /// Acting user.
        user: u32,
        /// Operation every LPM performs.
        op: Op,
        /// Hosts traversed so far.
        route: Route,
    },
    /// One LPM's answer, relayed upstream toward the originator.
    BcastResp {
        /// Stamp of the request being answered.
        stamp: Stamp,
        /// Answering host.
        host: String,
        /// The reply.
        reply: Reply,
        /// Route the answer's request had taken.
        route: Route,
    },
    /// Subtree-complete marker of the echo wave.
    BcastDone {
        /// Stamp of the completed request.
        stamp: Stamp,
    },
    /// A relay's whole subtree of answers in one frame: in-network
    /// aggregation of the echo wave. `parts` is a length-prefixed batch
    /// (see [`crate::codec::encode_batch`]) of [`BcastPart`] frames;
    /// relays concatenate child batches without re-encoding them, so a
    /// chain of `n` hosts moves each record once instead of once per hop.
    BcastAgg {
        /// Stamp of the wave being answered.
        stamp: Stamp,
        /// Batch-framed [`BcastPart`]s from this subtree.
        parts: bytes::Bytes,
        /// Hosts of this subtree that never answered (lost children or
        /// stragglers cut off by the wave timeout). Canonical on the
        /// wire: encoding sorts and dedups.
        missing: Vec<String>,
    },
    /// A pulled observability registry on its way back to a tool — the
    /// terminal form [`Reply::Metrics`] takes at the tool edge, keeping
    /// the (potentially large) registry out of the generic `Resp` path.
    MetricsSnapshot {
        /// The tool's request id (as in [`Msg::Resp`]).
        id: u64,
        /// Reporting host.
        host: String,
        /// Simulated sample instant (µs).
        at_us: u64,
        /// Registry contents, sorted by name.
        rows: Vec<MetricRow>,
        /// Full source→destination route the request took.
        route: Route,
    },

    // ---- recovery (Section 5) ----------------------------------------------
    /// CCS announcement / adoption of a new coordinator.
    CcsAnnounce {
        /// Acting user.
        user: u32,
        /// The coordinator host.
        ccs: String,
        /// Election epoch.
        epoch: u64,
    },
    /// Liveness probe toward a (suspected) CCS.
    Probe {
        /// Acting user.
        user: u32,
        /// Prober's host.
        from: String,
    },
    /// Probe answer.
    ProbeAck {
        /// Responder's host.
        from: String,
        /// Responder's CCS view.
        ccs: String,
        /// Responder's epoch.
        epoch: u64,
    },

    // ---- name-server CCS assignment (Section 5's alternative) --------------
    /// Ask the name-serving pmd for the user's CCS. `claimant` is the
    /// querying LPM's host (assigned as CCS when none exists);
    /// `dead` reports a CCS the querier observed failing, prompting
    /// reassignment.
    CcsQuery {
        /// Acting user.
        user: u32,
        /// The querying LPM's host.
        claimant: String,
        /// A CCS host observed dead, if any.
        dead: Option<String>,
    },
    /// The name server's answer.
    CcsInfo {
        /// Acting user.
        user: u32,
        /// Assigned coordinator host.
        ccs: String,
        /// Assignment epoch.
        epoch: u64,
    },

    // ---- adoption gossip (crash recovery) ----------------------------------
    /// A respawned LPM asking a sibling which of its re-adopted local
    /// processes the sibling knows remote parents for. `live` lists the
    /// survivors' local pids on `host`.
    ForestPull {
        /// Acting user.
        user: u32,
        /// The respawned LPM's host.
        host: String,
        /// Local pids of the re-adopted survivors.
        live: Vec<u32>,
        /// The respawned incarnation's boot epoch. Receivers fence the
        /// predecessor's correlation ids at this value when they purge
        /// its dedup entries, so a late in-flight retry stamped by the
        /// dead incarnation can never re-execute.
        boot: u64,
    },
    /// The sibling's answer: logical-parent edges it recorded when it
    /// originated remote spawns onto `host`. The respawned LPM grafts
    /// these onto its rebuilt forest, undoing the degeneration the crash
    /// caused.
    ForestInfo {
        /// Acting user.
        user: u32,
        /// The host the edges are for (the respawned LPM's host).
        host: String,
        /// `(local pid, remote logical parent)` pairs.
        edges: Vec<(u32, Gpid)>,
    },
}

impl Msg {
    /// Short name for traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::CreateLpm { .. } => "create-lpm",
            Msg::QueryLpm { .. } => "query-lpm",
            Msg::LpmAddr { .. } => "lpm-addr",
            Msg::NoLpm { .. } => "no-lpm",
            Msg::Hello { .. } => "hello",
            Msg::HelloAck { .. } => "hello-ack",
            Msg::Req { .. } => "req",
            Msg::Resp { .. } => "resp",
            Msg::Bcast { .. } => "bcast",
            Msg::BcastResp { .. } => "bcast-resp",
            Msg::BcastDone { .. } => "bcast-done",
            Msg::BcastAgg { .. } => "bcast-agg",
            Msg::MetricsSnapshot { .. } => "metrics-snapshot",
            Msg::CcsAnnounce { .. } => "ccs-announce",
            Msg::Probe { .. } => "probe",
            Msg::ProbeAck { .. } => "probe-ack",
            Msg::CcsQuery { .. } => "ccs-query",
            Msg::CcsInfo { .. } => "ccs-info",
            Msg::ForestPull { .. } => "forest-pull",
            Msg::ForestInfo { .. } => "forest-info",
        }
    }
}

impl Wire for Msg {
    fn encode(&self, enc: &mut Enc) {
        match self {
            Msg::CreateLpm { user } => {
                enc.u8(0);
                enc.u32(*user);
            }
            Msg::QueryLpm { user } => {
                enc.u8(1);
                enc.u32(*user);
            }
            Msg::LpmAddr {
                user,
                port,
                created,
            } => {
                enc.u8(2);
                enc.u32(*user);
                enc.u16(*port);
                enc.bool(*created);
            }
            Msg::NoLpm { user } => {
                enc.u8(3);
                enc.u32(*user);
            }
            Msg::Hello {
                user,
                host,
                is_tool,
                ccs,
                epoch,
                proof,
            } => {
                enc.u8(4);
                enc.u32(*user);
                enc.str(host);
                enc.bool(*is_tool);
                enc.str(ccs);
                enc.u64(*epoch);
                enc.u64(*proof);
            }
            Msg::HelloAck {
                host,
                ok,
                ccs,
                epoch,
            } => {
                enc.u8(5);
                enc.str(host);
                enc.bool(*ok);
                enc.str(ccs);
                enc.u64(*epoch);
            }
            Msg::Req {
                id,
                user,
                dest,
                op,
                route,
                hops_left,
                deadline_us,
                attempt,
                boot,
            } => {
                enc.u8(6);
                enc.u64(*id);
                enc.u32(*user);
                enc.str(dest);
                op.encode(enc);
                route.encode(enc);
                enc.u8(*hops_left);
                enc.u64(*deadline_us);
                enc.u8(*attempt);
                enc.u64(*boot);
            }
            Msg::Resp { id, reply, route } => {
                enc.u8(7);
                enc.u64(*id);
                reply.encode(enc);
                route.encode(enc);
            }
            Msg::Bcast {
                stamp,
                user,
                op,
                route,
            } => {
                enc.u8(8);
                stamp.encode(enc);
                enc.u32(*user);
                op.encode(enc);
                route.encode(enc);
            }
            Msg::BcastResp {
                stamp,
                host,
                reply,
                route,
            } => {
                enc.u8(9);
                stamp.encode(enc);
                enc.str(host);
                reply.encode(enc);
                route.encode(enc);
            }
            Msg::BcastDone { stamp } => {
                enc.u8(10);
                stamp.encode(enc);
            }
            Msg::BcastAgg {
                stamp,
                parts,
                missing,
            } => {
                enc.u8(16);
                stamp.encode(enc);
                enc.bytes(parts);
                enc.seq(&canonical_missing(missing), |e, s| e.str(s));
            }
            Msg::MetricsSnapshot {
                id,
                host,
                at_us,
                rows,
                route,
            } => {
                enc.u8(17);
                enc.u64(*id);
                enc.str(host);
                enc.u64(*at_us);
                enc.seq(rows, |e, r| r.encode(e));
                route.encode(enc);
            }
            Msg::CcsAnnounce { user, ccs, epoch } => {
                enc.u8(11);
                enc.u32(*user);
                enc.str(ccs);
                enc.u64(*epoch);
            }
            Msg::Probe { user, from } => {
                enc.u8(12);
                enc.u32(*user);
                enc.str(from);
            }
            Msg::ProbeAck { from, ccs, epoch } => {
                enc.u8(13);
                enc.str(from);
                enc.str(ccs);
                enc.u64(*epoch);
            }
            Msg::CcsQuery {
                user,
                claimant,
                dead,
            } => {
                enc.u8(14);
                enc.u32(*user);
                enc.str(claimant);
                enc.opt(dead, |e, d| e.str(d));
            }
            Msg::CcsInfo { user, ccs, epoch } => {
                enc.u8(15);
                enc.u32(*user);
                enc.str(ccs);
                enc.u64(*epoch);
            }
            Msg::ForestPull {
                user,
                host,
                live,
                boot,
            } => {
                enc.u8(18);
                enc.u32(*user);
                enc.str(host);
                enc.seq(live, |e, p| e.u32(*p));
                enc.u64(*boot);
            }
            Msg::ForestInfo { user, host, edges } => {
                enc.u8(19);
                enc.u32(*user);
                enc.str(host);
                enc.seq(edges, |e, (pid, parent)| {
                    e.u32(*pid);
                    parent.encode(e);
                });
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match dec.u8()? {
            0 => Msg::CreateLpm { user: dec.u32()? },
            1 => Msg::QueryLpm { user: dec.u32()? },
            2 => Msg::LpmAddr {
                user: dec.u32()?,
                port: dec.u16()?,
                created: dec.bool()?,
            },
            3 => Msg::NoLpm { user: dec.u32()? },
            4 => Msg::Hello {
                user: dec.u32()?,
                host: dec.str()?,
                is_tool: dec.bool()?,
                ccs: dec.str()?,
                epoch: dec.u64()?,
                proof: dec.u64()?,
            },
            5 => Msg::HelloAck {
                host: dec.str()?,
                ok: dec.bool()?,
                ccs: dec.str()?,
                epoch: dec.u64()?,
            },
            6 => Msg::Req {
                id: dec.u64()?,
                user: dec.u32()?,
                dest: dec.str()?,
                op: Op::decode(dec)?,
                route: Route::decode(dec)?,
                hops_left: dec.u8()?,
                deadline_us: dec.u64()?,
                attempt: dec.u8()?,
                boot: dec.u64()?,
            },
            7 => Msg::Resp {
                id: dec.u64()?,
                reply: Reply::decode(dec)?,
                route: Route::decode(dec)?,
            },
            8 => Msg::Bcast {
                stamp: Stamp::decode(dec)?,
                user: dec.u32()?,
                op: Op::decode(dec)?,
                route: Route::decode(dec)?,
            },
            9 => Msg::BcastResp {
                stamp: Stamp::decode(dec)?,
                host: dec.str()?,
                reply: Reply::decode(dec)?,
                route: Route::decode(dec)?,
            },
            10 => Msg::BcastDone {
                stamp: Stamp::decode(dec)?,
            },
            11 => Msg::CcsAnnounce {
                user: dec.u32()?,
                ccs: dec.str()?,
                epoch: dec.u64()?,
            },
            12 => Msg::Probe {
                user: dec.u32()?,
                from: dec.str()?,
            },
            13 => Msg::ProbeAck {
                from: dec.str()?,
                ccs: dec.str()?,
                epoch: dec.u64()?,
            },
            14 => Msg::CcsQuery {
                user: dec.u32()?,
                claimant: dec.str()?,
                dead: dec.opt(|d| d.str())?,
            },
            15 => Msg::CcsInfo {
                user: dec.u32()?,
                ccs: dec.str()?,
                epoch: dec.u64()?,
            },
            16 => Msg::BcastAgg {
                stamp: Stamp::decode(dec)?,
                parts: bytes::Bytes::copy_from_slice(dec.bytes_ref()?),
                missing: dec.seq(|d| d.str())?,
            },
            17 => Msg::MetricsSnapshot {
                id: dec.u64()?,
                host: dec.str()?,
                at_us: dec.u64()?,
                rows: dec.seq(MetricRow::decode)?,
                route: Route::decode(dec)?,
            },
            18 => Msg::ForestPull {
                user: dec.u32()?,
                host: dec.str()?,
                live: dec.seq(|d| d.u32())?,
                boot: dec.u64()?,
            },
            19 => Msg::ForestInfo {
                user: dec.u32()?,
                host: dec.str()?,
                edges: dec.seq(|d| Ok((d.u32()?, Gpid::decode(d)?)))?,
            },
            tag => return Err(CodecError::BadTag { what: "Msg", tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triggers::{EventPattern, TriggerAction};

    fn sample_msgs() -> Vec<Msg> {
        let stamp = Stamp::signed("origin", 5, 999, 7);
        let mut route = Route::from_origin("a");
        route.push("b");
        vec![
            Msg::CreateLpm { user: 100 },
            Msg::QueryLpm { user: 100 },
            Msg::LpmAddr {
                user: 100,
                port: 1099,
                created: true,
            },
            Msg::NoLpm { user: 100 },
            Msg::Hello {
                user: 100,
                host: "a".into(),
                is_tool: false,
                ccs: "home".into(),
                epoch: 2,
                proof: 0xABCD,
            },
            Msg::HelloAck {
                host: "b".into(),
                ok: true,
                ccs: "home".into(),
                epoch: 2,
            },
            Msg::Req {
                id: 9,
                user: 100,
                dest: "c".into(),
                op: Op::Control {
                    pid: 33,
                    action: ControlAction::Stop,
                },
                route: route.clone(),
                hops_left: 4,
                deadline_us: 30_000_000,
                attempt: 1,
                boot: 1_500_000,
            },
            Msg::Resp {
                id: 9,
                reply: Reply::Ok,
                route: route.clone(),
            },
            Msg::Bcast {
                stamp: stamp.clone(),
                user: 100,
                op: Op::Snapshot,
                route: route.clone(),
            },
            Msg::BcastResp {
                stamp: stamp.clone(),
                host: "b".into(),
                reply: Reply::Snapshot {
                    host: "b".into(),
                    procs: vec![ProcRecord {
                        gpid: Gpid::new("b", 8),
                        ppid: 1,
                        logical_parent: None,
                        command: "cc".into(),
                        state: crate::types::WireProcState::Running,
                        started_us: 5,
                        cpu_us: 6,
                        adopted: true,
                    }],
                },
                route: route.clone(),
            },
            Msg::BcastAgg {
                stamp: stamp.clone(),
                parts: crate::codec::encode_batch(&[
                    BcastPart {
                        host: "b".into(),
                        reply: Reply::Pong,
                        route: route.clone(),
                    },
                    BcastPart {
                        host: "c".into(),
                        reply: Reply::Ok,
                        route: route.clone(),
                    },
                ]),
                missing: vec!["d".into()],
            },
            Msg::BcastDone { stamp },
            Msg::CcsAnnounce {
                user: 100,
                ccs: "home".into(),
                epoch: 3,
            },
            Msg::Probe {
                user: 100,
                from: "b".into(),
            },
            Msg::ProbeAck {
                from: "home".into(),
                ccs: "home".into(),
                epoch: 3,
            },
            Msg::CcsQuery {
                user: 100,
                claimant: "b".into(),
                dead: Some("home".into()),
            },
            Msg::CcsQuery {
                user: 100,
                claimant: "b".into(),
                dead: None,
            },
            Msg::CcsInfo {
                user: 100,
                ccs: "b".into(),
                epoch: 4,
            },
            Msg::MetricsSnapshot {
                id: 12,
                host: "b".into(),
                at_us: 5_000_000,
                rows: vec![
                    MetricRow {
                        name: "rpc.retries".into(),
                        kind: 0,
                        value: 3,
                        sum: 0,
                        buckets: vec![],
                    },
                    MetricRow {
                        name: "recov.probe_rtt_us".into(),
                        kind: 2,
                        value: 2,
                        sum: 9_000,
                        buckets: vec![0, 0, 1, 1],
                    },
                ],
                route: route.clone(),
            },
            Msg::ForestPull {
                user: 100,
                host: "b".into(),
                live: vec![4, 9, 17],
                boot: 2_250_000,
            },
            Msg::ForestInfo {
                user: 100,
                host: "b".into(),
                edges: vec![(9, Gpid::new("a", 3)), (17, Gpid::new("c", 5))],
            },
            Msg::ForestInfo {
                user: 100,
                host: "b".into(),
                edges: vec![],
            },
        ]
    }

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Ping,
            Op::Status,
            Op::Control {
                pid: 1,
                action: ControlAction::Signal(15),
            },
            Op::Spawn {
                command: "troff".into(),
                logical_parent: Some(Gpid::new("a", 2)),
                lifetime_us: Some(1_000_000),
                work_us: 5_000,
                cpu_bound: true,
            },
            Op::Snapshot,
            Op::Rusage { pid: Some(4) },
            Op::Rusage { pid: None },
            Op::History {
                since_us: 0,
                max: 100,
            },
            Op::OpenFiles { pid: 7 },
            Op::Adopt {
                pid: 7,
                flags: 0b1111,
            },
            Op::SetTraceFlags {
                pid: 7,
                flags: 0b0001,
            },
            Op::AddTrigger {
                spec: TriggerSpec {
                    id: 1,
                    pattern: EventPattern::kind("exit").with_pid(9),
                    action: TriggerAction::Notify {
                        note: "done".into(),
                    },
                    once: true,
                },
            },
            Op::DelTrigger { id: 1 },
            Op::ListTriggers,
            Op::Stats,
            Op::Metrics,
        ]
    }

    #[test]
    fn every_msg_roundtrips() {
        for m in sample_msgs() {
            let b = m.to_bytes();
            assert_eq!(Msg::from_bytes(&b).unwrap(), m, "{}", m.kind());
        }
    }

    #[test]
    fn every_op_roundtrips() {
        for op in sample_ops() {
            let b = op.to_bytes();
            assert_eq!(Op::from_bytes(&b).unwrap(), op, "{}", op.kind());
        }
    }

    #[test]
    fn every_reply_roundtrips() {
        let replies = vec![
            Reply::Ok,
            Reply::Err {
                code: ErrCode::Permission,
                detail: "cross-user".into(),
            },
            Reply::Pong,
            Reply::Spawned {
                gpid: Gpid::new("a", 3),
            },
            Reply::Rusage { records: vec![] },
            Reply::History { events: vec![] },
            Reply::Files { entries: vec![] },
            Reply::Triggers { entries: vec![] },
            Reply::Stats {
                requests: 10,
                bcasts: (1, 2, 3),
                relays: 4,
                route_cache_hits: 5,
                auth_failures: 6,
                handlers: (7, 8, 9),
            },
            Reply::Status {
                host: "a".into(),
                load_milli: 1500,
                managed: 7,
                siblings: vec!["b".into(), "c".into()],
                ccs: "home".into(),
                epoch: 1,
            },
            Reply::Partial {
                missing: vec!["b".into(), "d".into()],
                inner: Box::new(Reply::Snapshot {
                    host: "*".into(),
                    procs: vec![],
                }),
            },
            Reply::Metrics {
                host: "a".into(),
                at_us: 42,
                rows: vec![MetricRow {
                    name: "bcast.partial_flushes".into(),
                    kind: 1,
                    value: -1,
                    sum: 0,
                    buckets: vec![],
                }],
            },
        ];
        for r in replies {
            let b = r.to_bytes();
            assert_eq!(Reply::from_bytes(&b).unwrap(), r);
        }
    }

    #[test]
    fn missing_lists_are_canonical_on_the_wire() {
        // Unsorted, duplicated producers still encode one sorted list.
        let m = Msg::BcastAgg {
            stamp: Stamp::signed("a", 1, 10, 3),
            parts: bytes::Bytes::new(),
            missing: vec!["d".into(), "b".into(), "d".into(), "a".into()],
        };
        let Msg::BcastAgg { missing, .. } = Msg::from_bytes(&m.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(missing, vec!["a", "b", "d"]);

        let r = Reply::Partial {
            missing: vec!["z".into(), "b".into(), "b".into()],
            inner: Box::new(Reply::Pong),
        };
        let Reply::Partial { missing, .. } = Reply::from_bytes(&r.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(missing, vec!["b", "z"]);
    }

    #[test]
    fn bcast_agg_parts_decode_as_a_batch() {
        // The aggregate's payload must survive the Msg roundtrip intact:
        // relays concatenate these batches byte-for-byte.
        let parts = vec![
            BcastPart {
                host: "b".into(),
                reply: Reply::Snapshot {
                    host: "b".into(),
                    procs: vec![],
                },
                route: Route::from_origin("a"),
            },
            BcastPart {
                host: "c".into(),
                reply: Reply::Pong,
                route: Route::from_origin("a"),
            },
        ];
        let m = Msg::BcastAgg {
            stamp: Stamp::signed("a", 1, 10, 3),
            parts: crate::codec::encode_batch(&parts),
            missing: vec![],
        };
        let b = m.to_bytes();
        let Msg::BcastAgg { parts: wire, .. } = Msg::from_bytes(&b).unwrap() else {
            panic!("wrong variant");
        };
        let decoded: Vec<BcastPart> = crate::codec::decode_batch(&wire).unwrap();
        assert_eq!(decoded, parts);
    }

    #[test]
    fn reply_is_err() {
        assert!(Reply::Err {
            code: ErrCode::Timeout,
            detail: String::new()
        }
        .is_err());
        assert!(!Reply::Ok.is_err());
    }

    #[test]
    fn err_code_bad_tag() {
        assert!(matches!(
            ErrCode::from_bytes(&[99]),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        // No input derived from these bytes should panic.
        for len in 0..64usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let _ = Msg::from_bytes(&data);
        }
    }

    #[test]
    fn control_messages_are_paper_scale_small() {
        // Table 2's control round trip assumes small messages; keep the
        // wire format in that regime (~100-200 bytes for a routed stop).
        let mut route = Route::from_origin("calder");
        route.push("ucbarpa");
        let m = Msg::Req {
            id: 1,
            user: 100,
            dest: "ucbarpa".into(),
            op: Op::Control {
                pid: 99,
                action: ControlAction::Stop,
            },
            route,
            hops_left: 8,
            deadline_us: 30_000_000,
            attempt: 0,
            boot: 1_000_000,
        };
        let n = m.wire_len();
        assert!(n < 200, "routed control request is {n} bytes");
    }

    #[test]
    fn deadline_exceeded_is_distinct_from_timeout() {
        // Both codes roundtrip and stay distinguishable on the wire, so
        // callers can tell "expired in flight" from "no reply in time".
        for code in [ErrCode::DeadlineExceeded, ErrCode::Timeout] {
            let b = code.to_bytes();
            assert_eq!(ErrCode::from_bytes(&b).unwrap(), code);
        }
        assert_ne!(
            ErrCode::DeadlineExceeded.to_bytes(),
            ErrCode::Timeout.to_bytes()
        );
    }

    #[test]
    fn boot_epochs_ride_requests_and_pulls() {
        // The incarnation stamp survives the roundtrip on both carriers,
        // and 0 (unstamped) is representable.
        for boot in [0u64, 1, 7_500_000] {
            let m = Msg::Req {
                id: 3,
                user: 100,
                dest: "b".into(),
                op: Op::Ping,
                route: Route::from_origin("a"),
                hops_left: 8,
                deadline_us: 0,
                attempt: 0,
                boot,
            };
            let Msg::Req { boot: got, .. } = Msg::from_bytes(&m.to_bytes()).unwrap() else {
                panic!("wrong variant");
            };
            assert_eq!(got, boot);
        }
        let p = Msg::ForestPull {
            user: 100,
            host: "a".into(),
            live: vec![2],
            boot: 9_000_001,
        };
        let Msg::ForestPull { boot, .. } = Msg::from_bytes(&p.to_bytes()).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(boot, 9_000_001);
        let b = ErrCode::StaleEpoch.to_bytes();
        assert_eq!(ErrCode::from_bytes(&b).unwrap(), ErrCode::StaleEpoch);
    }
}
