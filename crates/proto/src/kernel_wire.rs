//! Wire encoding for kernel event messages.
//!
//! The kernel coalesces event messages headed for the same LPM wakeup
//! into one batch frame (`[u32 count][u32 len][frame]...`, the protocol's
//! standard batch layout). Each frame is one [`KernelMsg`]. The batch is
//! decoded with the zero-copy frame iterator and the borrowed-str path,
//! so a burst of fork/exec/exit events costs one delivery, not one per
//! event.

use crate::codec::{CodecError, Dec, Enc, Wire};
use ppm_runtime::time::{SimDuration, SimTime};

use ppm_runtime::events::KernelEvent;
use ppm_runtime::ids::Pid;
use ppm_runtime::process::Rusage;
use ppm_runtime::program::KernelMsg;
use ppm_runtime::signal::{ExitStatus, Signal};

fn enc_signal(enc: &mut Enc, s: Signal) {
    enc.u8(s.number());
}

fn dec_signal(dec: &mut Dec<'_>) -> Result<Signal, CodecError> {
    let n = dec.u8()?;
    Signal::from_number(n).ok_or(CodecError::BadTag {
        what: "signal",
        tag: n,
    })
}

fn enc_status(enc: &mut Enc, st: &ExitStatus) {
    match st {
        ExitStatus::Code(c) => {
            enc.u8(0);
            enc.i32(*c);
        }
        ExitStatus::Signaled(s) => {
            enc.u8(1);
            enc_signal(enc, *s);
        }
    }
}

fn dec_status(dec: &mut Dec<'_>) -> Result<ExitStatus, CodecError> {
    match dec.u8()? {
        0 => Ok(ExitStatus::Code(dec.i32()?)),
        1 => Ok(ExitStatus::Signaled(dec_signal(dec)?)),
        t => Err(CodecError::BadTag {
            what: "exit status",
            tag: t,
        }),
    }
}

fn enc_rusage(enc: &mut Enc, r: &Rusage) {
    enc.u64(r.cpu.as_micros());
    enc.u64(r.msgs_sent);
    enc.u64(r.msgs_received);
    enc.u64(r.bytes_sent);
    enc.u64(r.bytes_received);
    enc.u64(r.files_opened);
    enc.u64(r.signals_received);
    enc.u64(r.forks);
}

fn dec_rusage(dec: &mut Dec<'_>) -> Result<Rusage, CodecError> {
    Ok(Rusage {
        cpu: SimDuration::from_micros(dec.u64()?),
        msgs_sent: dec.u64()?,
        msgs_received: dec.u64()?,
        bytes_sent: dec.u64()?,
        bytes_received: dec.u64()?,
        files_opened: dec.u64()?,
        signals_received: dec.u64()?,
        forks: dec.u64()?,
    })
}

impl Wire for KernelEvent {
    fn encode(&self, enc: &mut Enc) {
        match self {
            KernelEvent::Fork { parent, child } => {
                enc.u8(0);
                enc.u32(parent.0);
                enc.u32(child.0);
            }
            KernelEvent::Exec { pid, command } => {
                enc.u8(1);
                enc.u32(pid.0);
                enc.str(command);
            }
            KernelEvent::Exit {
                pid,
                status,
                rusage,
            } => {
                enc.u8(2);
                enc.u32(pid.0);
                enc_status(enc, status);
                enc_rusage(enc, rusage);
            }
            KernelEvent::SignalDelivered { pid, signal } => {
                enc.u8(3);
                enc.u32(pid.0);
                enc_signal(enc, *signal);
            }
            KernelEvent::Stopped { pid } => {
                enc.u8(4);
                enc.u32(pid.0);
            }
            KernelEvent::Continued { pid } => {
                enc.u8(5);
                enc.u32(pid.0);
            }
            KernelEvent::MsgSent { pid, bytes } => {
                enc.u8(6);
                enc.u32(pid.0);
                enc.u64(*bytes as u64);
            }
            KernelEvent::MsgReceived { pid, bytes } => {
                enc.u8(7);
                enc.u32(pid.0);
                enc.u64(*bytes as u64);
            }
            KernelEvent::FileOpened { pid, path } => {
                enc.u8(8);
                enc.u32(pid.0);
                enc.str(path);
            }
            KernelEvent::FileClosed { pid, path } => {
                enc.u8(9);
                enc.u32(pid.0);
                enc.str(path);
            }
        }
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(match dec.u8()? {
            0 => KernelEvent::Fork {
                parent: Pid(dec.u32()?),
                child: Pid(dec.u32()?),
            },
            1 => KernelEvent::Exec {
                pid: Pid(dec.u32()?),
                command: dec.str_ref()?.to_owned(),
            },
            2 => KernelEvent::Exit {
                pid: Pid(dec.u32()?),
                status: dec_status(dec)?,
                rusage: dec_rusage(dec)?,
            },
            3 => KernelEvent::SignalDelivered {
                pid: Pid(dec.u32()?),
                signal: dec_signal(dec)?,
            },
            4 => KernelEvent::Stopped {
                pid: Pid(dec.u32()?),
            },
            5 => KernelEvent::Continued {
                pid: Pid(dec.u32()?),
            },
            6 => KernelEvent::MsgSent {
                pid: Pid(dec.u32()?),
                bytes: dec.u64()? as usize,
            },
            7 => KernelEvent::MsgReceived {
                pid: Pid(dec.u32()?),
                bytes: dec.u64()? as usize,
            },
            8 => KernelEvent::FileOpened {
                pid: Pid(dec.u32()?),
                path: dec.str_ref()?.to_owned(),
            },
            9 => KernelEvent::FileClosed {
                pid: Pid(dec.u32()?),
                path: dec.str_ref()?.to_owned(),
            },
            t => {
                return Err(CodecError::BadTag {
                    what: "kernel event",
                    tag: t,
                })
            }
        })
    }
}

impl Wire for KernelMsg {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.queued_at.as_micros());
        self.event.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        let queued_at = SimTime::from_micros(dec.u64()?);
        let event = KernelEvent::decode(dec)?;
        Ok(KernelMsg { queued_at, event })
    }
}

/// Decodes a coalesced kernel batch frame with the zero-copy iterator
/// and feeds each message to `f` in queue order; malformed frames are
/// dropped. Tracer programs (the LPM) call this from their
/// `on_kernel_batch` override — the runtime layer's default ignores
/// batches because the codec is a protocol-layer concern.
pub fn for_each_kernel_msg(data: &[u8], mut f: impl FnMut(KernelMsg)) {
    let Ok(iter) = crate::codec::frames(data) else {
        return;
    };
    for frame in iter {
        let Ok(frame) = frame else { return };
        if let Ok(msg) = KernelMsg::from_bytes(frame) {
            f(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_batch, encode_batch};

    fn sample_events() -> Vec<KernelEvent> {
        vec![
            KernelEvent::Fork {
                parent: Pid(4),
                child: Pid(9),
            },
            KernelEvent::Exec {
                pid: Pid(9),
                command: "simulate".into(),
            },
            KernelEvent::Exit {
                pid: Pid(9),
                status: ExitStatus::Signaled(Signal::Kill),
                rusage: Rusage {
                    cpu: SimDuration::from_micros(1234),
                    msgs_sent: 1,
                    msgs_received: 2,
                    bytes_sent: 3,
                    bytes_received: 4,
                    files_opened: 5,
                    signals_received: 6,
                    forks: 7,
                },
            },
            KernelEvent::SignalDelivered {
                pid: Pid(9),
                signal: Signal::Usr1,
            },
            KernelEvent::Stopped { pid: Pid(9) },
            KernelEvent::Continued { pid: Pid(9) },
            KernelEvent::MsgSent {
                pid: Pid(9),
                bytes: 112,
            },
            KernelEvent::MsgReceived {
                pid: Pid(9),
                bytes: 48,
            },
            KernelEvent::FileOpened {
                pid: Pid(9),
                path: "/tmp/x".into(),
            },
            KernelEvent::FileClosed {
                pid: Pid(9),
                path: "/tmp/x".into(),
            },
        ]
    }

    #[test]
    fn every_kernel_event_roundtrips() {
        for ev in sample_events() {
            let msg = KernelMsg {
                event: ev.clone(),
                queued_at: SimTime::from_micros(42),
            };
            let back = KernelMsg::from_bytes(&msg.to_bytes()).expect("roundtrip");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn kernel_msgs_batch_roundtrips() {
        let msgs: Vec<KernelMsg> = sample_events()
            .into_iter()
            .enumerate()
            .map(|(i, event)| KernelMsg {
                event,
                queued_at: SimTime::from_micros(i as u64),
            })
            .collect();
        let batch = encode_batch(&msgs);
        let back: Vec<KernelMsg> = decode_batch(&batch).expect("batch roundtrip");
        assert_eq!(back, msgs);
    }

    #[test]
    fn garbage_does_not_decode() {
        assert!(KernelMsg::from_bytes(&[0xFF; 6]).is_err());
        let mut good = KernelMsg {
            event: KernelEvent::Stopped { pid: Pid(1) },
            queued_at: SimTime::ZERO,
        }
        .to_bytes()
        .to_vec();
        good[8] = 0xEE; // corrupt the event tag
        assert!(KernelMsg::from_bytes(&good).is_err());
    }
}
