//! # ppm-proto — the PPM wire protocol
//!
//! Message types and a hand-rolled, length-checked binary codec for
//! everything that flows between tools, local process managers (LPMs) and
//! process manager daemons (pmds): the LPM-creation protocol of Figure 2,
//! the authenticated sibling handshake of Figure 3, directed
//! request/reply with source-destination routes, the broadcast echo wave
//! with signed timestamps of Section 4, and the crash-recovery probes of
//! Section 5.
//!
//! The codec is deliberately byte-exact: message sizes drive the
//! simulation's latency models, and the paper's measurements are keyed to
//! specific sizes (the 112-byte kernel message of Table 1).
//!
//! ## Example
//!
//! ```
//! use ppm_proto::codec::Wire;
//! use ppm_proto::msg::{ControlAction, Msg, Op};
//! use ppm_proto::types::Route;
//!
//! let msg = Msg::Req {
//!     id: 1,
//!     user: 100,
//!     dest: "ucbarpa".into(),
//!     op: Op::Control { pid: 42, action: ControlAction::Stop },
//!     route: Route::from_origin("ucbvax"),
//!     hops_left: 8,
//!     deadline_us: 0,
//!     attempt: 0,
//!     boot: 0,
//! };
//! let bytes = msg.to_bytes();
//! assert_eq!(Msg::from_bytes(&bytes)?, msg);
//! # Ok::<(), ppm_proto::codec::CodecError>(())
//! ```

pub mod codec;
pub mod kernel_wire;
pub mod msg;
pub mod triggers;
pub mod types;

pub use codec::{CodecError, Dec, Enc, Wire};
pub use msg::{ControlAction, ErrCode, Msg, Op, Reply};
pub use triggers::{EventPattern, TriggerAction, TriggerSpec};
pub use types::{
    FileRecord, Gpid, HistoryRecord, ProcRecord, Route, RusageRecord, Stamp, WireProcState,
};
