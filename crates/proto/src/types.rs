//! Protocol data types: global pids, signed timestamps, routes, and the
//! record types carried in replies.

use std::fmt;
use std::sync::Arc;

use crate::codec::{CodecError, Dec, Enc, Wire};

/// A network-global process identity, written `<host name, pid>` as in the
/// paper ("Processes are identified in the network by `<host name, pid>`").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gpid {
    /// Host name.
    pub host: String,
    /// Pid on that host.
    pub pid: u32,
}

impl Gpid {
    /// Convenience constructor.
    pub fn new(host: impl Into<String>, pid: u32) -> Self {
        Gpid {
            host: host.into(),
            pid,
        }
    }
}

impl fmt::Display for Gpid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.host, self.pid)
    }
}

impl Wire for Gpid {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.host);
        enc.u32(self.pid);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Gpid {
            host: dec.str()?,
            pid: dec.u32()?,
        })
    }
}

/// The signed timestamp carried by broadcast requests.
///
/// Per Section 4: "A scheme for not retransmitting old broadcast requests
/// has been implemented using a signed timestamp in which the name of the
/// originating host appears." The signature is an FNV-1a keyed hash over
/// the other fields — a stand-in for the paper-era shared-secret signing
/// (host-level masquerade was explicitly out of scope there too).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Stamp {
    /// Originating host name. Shared (`Arc<str>`) because a stamp is
    /// cloned on every hop of the echo wave and keyed into the
    /// seen/active maps — the hot paths clone a pointer, not the string.
    pub origin: Arc<str>,
    /// Per-origin sequence number.
    pub seq: u64,
    /// Origination time, microseconds of simulated time.
    pub at_us: u64,
    /// Keyed hash over `(origin, seq, at_us)`.
    pub sig: u64,
}

/// FNV-1a 64-bit.
fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Stamp {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

    /// Creates a stamp signed with `secret`.
    pub fn signed(origin: impl Into<Arc<str>>, seq: u64, at_us: u64, secret: u64) -> Self {
        let origin = origin.into();
        let sig = Self::compute_sig(&origin, seq, at_us, secret);
        Stamp {
            origin,
            seq,
            at_us,
            sig,
        }
    }

    fn compute_sig(origin: &str, seq: u64, at_us: u64, secret: u64) -> u64 {
        let mut h = fnv1a(origin.as_bytes(), Self::FNV_OFFSET);
        h = fnv1a(&seq.to_be_bytes(), h);
        h = fnv1a(&at_us.to_be_bytes(), h);
        fnv1a(&secret.to_be_bytes(), h)
    }

    /// Verifies the signature against `secret`.
    pub fn verify(&self, secret: u64) -> bool {
        self.sig == Self::compute_sig(&self.origin, self.seq, self.at_us, secret)
    }

    /// The deduplication key (origin, seq) — `at_us` only drives window
    /// expiry. Cloning the key is a reference-count bump.
    pub fn key(&self) -> (Arc<str>, u64) {
        (Arc::clone(&self.origin), self.seq)
    }
}

impl Wire for Stamp {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.origin);
        enc.u64(self.seq);
        enc.u64(self.at_us);
        enc.u64(self.sig);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Stamp {
            origin: dec.str()?.into(),
            seq: dec.u64()?,
            at_us: dec.u64()?,
            sig: dec.u64()?,
        })
    }
}

/// The hosts a message traversed, in order. "All data returned to the
/// originator of a broadcast request includes the message's
/// source-destination route. This allows quick routing of messages
/// affecting processes in topologically distant hosts."
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Route(pub Vec<String>);

impl Route {
    /// A route starting at `origin`.
    pub fn from_origin(origin: impl Into<String>) -> Self {
        Route(vec![origin.into()])
    }

    /// Appends a hop (no-op if it is already the last entry).
    pub fn push(&mut self, host: impl Into<String>) {
        let host = host.into();
        if self.0.last() != Some(&host) {
            self.0.push(host);
        }
    }

    /// Whether the route already visits `host` (loop prevention).
    pub fn contains(&self, host: &str) -> bool {
        self.0.iter().any(|h| h == host)
    }

    /// Number of hops (edges) traversed.
    pub fn hops(&self) -> usize {
        self.0.len().saturating_sub(1)
    }

    /// The host the route started from.
    pub fn origin(&self) -> Option<&str> {
        self.0.first().map(String::as_str)
    }

    /// The host the route last visited.
    pub fn last(&self) -> Option<&str> {
        self.0.last().map(String::as_str)
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join(" -> "))
    }
}

impl Wire for Route {
    fn encode(&self, enc: &mut Enc) {
        enc.seq(&self.0, |e, h| e.str(h));
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(Route(dec.seq(|d| d.str())?))
    }
}

/// Process state on the wire (the paper's running / stopped / dead, plus
/// embryonic creations in flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireProcState {
    /// Runnable or running.
    Running,
    /// Stopped by signal.
    Stopped,
    /// Exited; retained in the tree while children are alive.
    Dead,
    /// Creation in progress.
    Embryo,
}

impl WireProcState {
    fn tag(self) -> u8 {
        match self {
            WireProcState::Running => 0,
            WireProcState::Stopped => 1,
            WireProcState::Dead => 2,
            WireProcState::Embryo => 3,
        }
    }
}

impl fmt::Display for WireProcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WireProcState::Running => "running",
            WireProcState::Stopped => "stopped",
            WireProcState::Dead => "dead",
            WireProcState::Embryo => "embryo",
        })
    }
}

impl Wire for WireProcState {
    fn encode(&self, enc: &mut Enc) {
        enc.u8(self.tag());
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        match dec.u8()? {
            0 => Ok(WireProcState::Running),
            1 => Ok(WireProcState::Stopped),
            2 => Ok(WireProcState::Dead),
            3 => Ok(WireProcState::Embryo),
            tag => Err(CodecError::BadTag {
                what: "WireProcState",
                tag,
            }),
        }
    }
}

/// One process in a snapshot reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcRecord {
    /// Where the process runs.
    pub gpid: Gpid,
    /// Local parent pid (1 when parentless on its host).
    pub ppid: u32,
    /// The *logical* parent when the process was created remotely on
    /// behalf of a process on another host.
    pub logical_parent: Option<Gpid>,
    /// Command name.
    pub command: String,
    /// State.
    pub state: WireProcState,
    /// Creation time (µs, simulated).
    pub started_us: u64,
    /// CPU consumed so far (µs).
    pub cpu_us: u64,
    /// Whether the LPM adopted it.
    pub adopted: bool,
}

impl Wire for ProcRecord {
    fn encode(&self, enc: &mut Enc) {
        self.gpid.encode(enc);
        enc.u32(self.ppid);
        enc.opt(&self.logical_parent, |e, g| g.encode(e));
        enc.str(&self.command);
        self.state.encode(enc);
        enc.u64(self.started_us);
        enc.u64(self.cpu_us);
        enc.bool(self.adopted);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(ProcRecord {
            gpid: Gpid::decode(dec)?,
            ppid: dec.u32()?,
            logical_parent: dec.opt(Gpid::decode)?,
            command: dec.str()?,
            state: WireProcState::decode(dec)?,
            started_us: dec.u64()?,
            cpu_us: dec.u64()?,
            adopted: dec.bool()?,
        })
    }
}

/// Resource statistics of one exited process (the paper's second tool).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RusageRecord {
    /// Identity.
    pub gpid: Gpid,
    /// Command name.
    pub command: String,
    /// Exit time (µs, simulated).
    pub exited_us: u64,
    /// Exit code, or the signal number that killed it (negated - 1000).
    pub status: i32,
    /// CPU consumed (µs).
    pub cpu_us: u64,
    /// Messages sent / received.
    pub msgs: u64,
    /// Bytes sent / received.
    pub bytes: u64,
    /// Files opened.
    pub files: u64,
    /// Children forked.
    pub forks: u64,
}

impl Wire for RusageRecord {
    fn encode(&self, enc: &mut Enc) {
        self.gpid.encode(enc);
        enc.str(&self.command);
        enc.u64(self.exited_us);
        enc.i32(self.status);
        enc.u64(self.cpu_us);
        enc.u64(self.msgs);
        enc.u64(self.bytes);
        enc.u64(self.files);
        enc.u64(self.forks);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(RusageRecord {
            gpid: Gpid::decode(dec)?,
            command: dec.str()?,
            exited_us: dec.u64()?,
            status: dec.i32()?,
            cpu_us: dec.u64()?,
            msgs: dec.u64()?,
            bytes: dec.u64()?,
            files: dec.u64()?,
            forks: dec.u64()?,
        })
    }
}

/// One entry of an LPM's history log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryRecord {
    /// When (µs, simulated).
    pub at_us: u64,
    /// Which process.
    pub gpid: Gpid,
    /// Event kind ("fork", "exec", "exit", "signal", ...).
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

impl Wire for HistoryRecord {
    fn encode(&self, enc: &mut Enc) {
        enc.u64(self.at_us);
        self.gpid.encode(enc);
        enc.str(&self.kind);
        enc.str(&self.detail);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(HistoryRecord {
            at_us: dec.u64()?,
            gpid: Gpid::decode(dec)?,
            kind: dec.str()?,
            detail: dec.str()?,
        })
    }
}

/// One open descriptor of a process (for the files/fd tools of Section 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRecord {
    /// Descriptor number.
    pub fd: u32,
    /// Kind: "file", "socket", "listener", "kernel".
    pub kind: String,
    /// Path or peer description.
    pub detail: String,
}

impl Wire for FileRecord {
    fn encode(&self, enc: &mut Enc) {
        enc.u32(self.fd);
        enc.str(&self.kind);
        enc.str(&self.detail);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(FileRecord {
            fd: dec.u32()?,
            kind: dec.str()?,
            detail: dec.str()?,
        })
    }
}

/// One metric of an LPM's observability registry, as pulled over the wire
/// by `Op::Metrics` / `Msg::MetricsSnapshot`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRow {
    /// Registry name, e.g. `"rpc.retries"`.
    pub name: String,
    /// `0` counter, `1` gauge, `2` log2 histogram.
    pub kind: u8,
    /// Counter or gauge value; for histograms, the sample count.
    pub value: i64,
    /// Histogram sum (zero for counters and gauges).
    pub sum: u64,
    /// Histogram buckets, trimmed after the last occupied one (empty for
    /// counters and gauges); bucket `i` counts values of bit length `i`.
    pub buckets: Vec<u64>,
}

impl Wire for MetricRow {
    fn encode(&self, enc: &mut Enc) {
        enc.str(&self.name);
        enc.u8(self.kind);
        enc.i64(self.value);
        enc.u64(self.sum);
        enc.seq(&self.buckets, |e, b| e.u64(*b));
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, CodecError> {
        Ok(MetricRow {
            name: dec.str()?,
            kind: dec.u8()?,
            value: dec.i64()?,
            sum: dec.u64()?,
            buckets: dec.seq(|d| d.u64())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpid_displays_like_the_paper() {
        assert_eq!(Gpid::new("ucbvax", 42).to_string(), "<ucbvax, 42>");
    }

    #[test]
    fn gpid_roundtrip() {
        let g = Gpid::new("calder", 7);
        assert_eq!(Gpid::from_bytes(&g.to_bytes()).unwrap(), g);
    }

    #[test]
    fn stamp_signature_verifies_with_right_secret_only() {
        let s = Stamp::signed("ucbvax", 3, 1_000_000, 0xDEAD);
        assert!(s.verify(0xDEAD));
        assert!(!s.verify(0xBEEF));
        let mut forged = s.clone();
        forged.origin = "evil".into();
        assert!(!forged.verify(0xDEAD));
        let mut replayed = s.clone();
        replayed.seq = 4;
        assert!(!replayed.verify(0xDEAD));
    }

    #[test]
    fn stamp_roundtrip_and_key() {
        let s = Stamp::signed("a", 9, 55, 1);
        assert_eq!(Stamp::from_bytes(&s.to_bytes()).unwrap(), s);
        assert_eq!(s.key(), ("a".into(), 9));
    }

    #[test]
    fn route_grows_without_duplicate_tail() {
        let mut r = Route::from_origin("a");
        r.push("b");
        r.push("b");
        r.push("c");
        assert_eq!(r.to_string(), "a -> b -> c");
        assert_eq!(r.hops(), 2);
        assert!(r.contains("b"));
        assert!(!r.contains("z"));
        assert_eq!(r.origin(), Some("a"));
        assert_eq!(r.last(), Some("c"));
    }

    #[test]
    fn route_roundtrip() {
        let mut r = Route::from_origin("x");
        r.push("y");
        assert_eq!(Route::from_bytes(&r.to_bytes()).unwrap(), r);
        let empty = Route::default();
        assert_eq!(empty.hops(), 0);
        assert_eq!(empty.origin(), None);
    }

    #[test]
    fn proc_state_roundtrip_and_bad_tag() {
        for s in [
            WireProcState::Running,
            WireProcState::Stopped,
            WireProcState::Dead,
            WireProcState::Embryo,
        ] {
            assert_eq!(WireProcState::from_bytes(&s.to_bytes()).unwrap(), s);
        }
        assert!(matches!(
            WireProcState::from_bytes(&[9]),
            Err(CodecError::BadTag { .. })
        ));
    }

    #[test]
    fn proc_record_roundtrip() {
        let r = ProcRecord {
            gpid: Gpid::new("a", 10),
            ppid: 1,
            logical_parent: Some(Gpid::new("b", 77)),
            command: "cc".into(),
            state: WireProcState::Stopped,
            started_us: 123,
            cpu_us: 456,
            adopted: true,
        };
        assert_eq!(ProcRecord::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn rusage_and_history_and_file_roundtrip() {
        let r = RusageRecord {
            gpid: Gpid::new("a", 10),
            command: "troff".into(),
            exited_us: 1,
            status: -1009,
            cpu_us: 2,
            msgs: 3,
            bytes: 4,
            files: 5,
            forks: 6,
        };
        assert_eq!(RusageRecord::from_bytes(&r.to_bytes()).unwrap(), r);
        let h = HistoryRecord {
            at_us: 9,
            gpid: Gpid::new("b", 2),
            kind: "exit".into(),
            detail: "code 0".into(),
        };
        assert_eq!(HistoryRecord::from_bytes(&h.to_bytes()).unwrap(), h);
        let f = FileRecord {
            fd: 3,
            kind: "file".into(),
            detail: "/etc/passwd".into(),
        };
        assert_eq!(FileRecord::from_bytes(&f.to_bytes()).unwrap(), f);
    }
}
