//! The sweep determinism gates.
//!
//! 1. The checked-in smoke grid renders **byte-identical** reports at
//!    worker counts 1, 4 and 8 — merge order never leaks into the output.
//! 2. A pooled cell's digest equals a standalone run of the same spec —
//!    the repro command line really replays the cell.
//! 3. Two worlds on two threads behave exactly like two worlds run
//!    serially — the Send audit's regression test: no thread-local or
//!    shared mutable state couples concurrently-running simulations.

use std::path::Path;

use ppm_bench::sweep::{render_report, run_spec, run_specs, Grid};

fn smoke_grid() -> Grid {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    Grid::load(&root.join("scenarios/smoke.sweep")).expect("smoke grid loads")
}

#[test]
fn smoke_report_is_byte_identical_across_worker_counts() {
    let grid = smoke_grid();
    let specs = grid.expand();
    assert_eq!(specs.len(), 8, "2 scenarios x 1 plan x 4 seeds");
    let r1 = render_report(&grid, &run_specs(&specs, 1));
    let r4 = render_report(&grid, &run_specs(&specs, 4));
    let r8 = render_report(&grid, &run_specs(&specs, 8));
    assert_eq!(r1, r4, "1 worker vs 4 workers");
    assert_eq!(r4, r8, "4 workers vs 8 workers");
    assert!(
        r1.contains("summary runs=8 ok=8 fail=0"),
        "smoke grid passes"
    );
}

#[test]
fn pooled_cell_digest_equals_standalone_run() {
    let grid = smoke_grid();
    let specs = grid.expand();
    let pooled = run_specs(&specs, 4);
    // One cell per scenario variant is enough: the digest covers the
    // full observable surface, so equality means total replay.
    for spec in [&specs[0], &specs[specs.len() - 1]] {
        let pooled = pooled
            .iter()
            .find(|r| r.id == spec.id)
            .expect("cell present");
        let solo = run_spec(spec);
        assert_eq!(solo.digest, pooled.digest, "{}", spec.id);
        assert_eq!(solo.sim_end_us, pooled.sim_end_us, "{}", spec.id);
        assert_eq!(solo.mttr, pooled.mttr, "{}", spec.id);
    }
}

#[test]
fn two_worlds_on_two_threads_match_serial_reference() {
    let grid = smoke_grid();
    let specs = grid.expand();
    // Two *different* specs so the worlds are not in lockstep: any
    // cross-thread coupling (thread-local pools, shared statics, id
    // allocators) would skew at least one digest.
    let (a, b) = (&specs[0], &specs[specs.len() - 1]);
    let serial = (run_spec(a), run_spec(b));
    let threaded = std::thread::scope(|s| {
        let ta = s.spawn(|| run_spec(a));
        let tb = s.spawn(|| run_spec(b));
        (ta.join().expect("thread a"), tb.join().expect("thread b"))
    });
    assert_eq!(serial.0.digest, threaded.0.digest, "{}", a.id);
    assert_eq!(serial.1.digest, threaded.1.digest, "{}", b.id);
}
