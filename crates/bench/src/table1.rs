//! Table 1 — estimated 112-byte kernel→LPM message delivery time (ms)
//! as a function of host type and load average.
//!
//! Method: one host of the given CPU class; the load average is pinned
//! into each bucket with duty-cycled CPU spinners; a probe process
//! registers a kernel socket, adopts an emitter child, and measures the
//! queue→delivery latency of the kernel event messages generated when the
//! emitter receives signals (112-byte messages, like the paper's
//! reference).

use ppm_runtime::sys::Sys;
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::{CpuClass, HostSpec};
use ppm_simos::events::TraceFlags;
use ppm_simos::ids::{Pid, Uid};
use ppm_simos::program::{KernelMsg, Program, SpawnSpec};
use ppm_simos::signal::Signal;
use ppm_simos::workload::DutyCycle;
use ppm_simos::world::World;

use std::sync::{Arc, Mutex};

/// Samples collected by the probe.
#[derive(Debug, Default)]
pub struct Samples {
    /// Delivery latencies (µs).
    pub latencies_us: Vec<u64>,
}

/// A minimal LPM-like program measuring kernel message delivery.
struct KernelMsgProbe {
    emitter: Option<Pid>,
    samples: Arc<Mutex<Samples>>,
    interval: SimDuration,
    rounds: u32,
    fired: u32,
}

impl Program for KernelMsgProbe {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.register_kernel_socket();
        let pid = sys
            .spawn(SpawnSpec::inert("emitter"))
            .expect("spawn emitter");
        sys.adopt(pid, TraceFlags::SIGNALS).expect("adopt emitter");
        self.emitter = Some(pid);
        sys.set_timer(self.interval, 0);
    }

    fn on_timer(&mut self, sys: &mut dyn Sys, _token: u64) {
        if self.fired >= self.rounds {
            return;
        }
        self.fired += 1;
        if let Some(pid) = self.emitter {
            // Each delivered signal produces one ~112-byte kernel event.
            let _ = sys.kill(pid, Signal::Usr1);
        }
        sys.set_timer(self.interval, 0);
    }

    fn on_kernel_batch(&mut self, sys: &mut dyn Sys, data: bytes::Bytes) {
        ppm_proto::kernel_wire::for_each_kernel_msg(&data, |m| self.on_kernel_event(sys, m));
    }

    fn on_kernel_event(&mut self, sys: &mut dyn Sys, msg: KernelMsg) {
        let latency = sys.now().saturating_since(msg.queued_at);
        self.samples
            .lock()
            .unwrap()
            .latencies_us
            .push(latency.as_micros());
    }

    fn name(&self) -> &str {
        "kmsg-probe"
    }
}

/// Result of one Table 1 cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Achieved load average during the measurement.
    pub load_avg: f64,
    /// Mean delivery time in milliseconds.
    pub mean_ms: f64,
    /// Number of samples.
    pub samples: usize,
}

/// Measures one cell: host class × target load-average bucket midpoint.
pub fn measure_cell(cpu: CpuClass, la_target: f64, seed: u64) -> Cell {
    let mut world = World::new(seed);
    let host = world.add_host(HostSpec::new("m", cpu));

    // Pin the load: n spinners with duty d give la ≈ n·d.
    let spinners = (la_target * 2.0).round() as usize;
    let duty = if spinners > 0 {
        la_target / spinners as f64
    } else {
        0.0
    };
    for i in 0..spinners {
        world
            .spawn_user(
                host,
                Uid(1),
                SpawnSpec::new(
                    format!("spin{i}"),
                    Box::new(DutyCycle::new(duty, SimDuration::from_millis(400))),
                ),
            )
            .expect("spawn spinner");
    }
    // Let the 60-second EWMA converge.
    world.run_for(SimDuration::from_secs(300));

    let samples = Arc::new(Mutex::new(Samples::default()));
    let probe = KernelMsgProbe {
        emitter: None,
        samples: Arc::clone(&samples),
        interval: SimDuration::from_millis(500),
        rounds: 120,
        fired: 0,
    };
    world
        .spawn_user(host, Uid(100), SpawnSpec::new("probe", Box::new(probe)))
        .expect("spawn probe");
    world.run_for(SimDuration::from_secs(90));

    let load_avg = world.core().kernel(host).load_avg();
    let s = samples.lock().unwrap();
    let n = s.latencies_us.len();
    let mean_ms = if n == 0 {
        f64::NAN
    } else {
        s.latencies_us.iter().sum::<u64>() as f64 / n as f64 / 1000.0
    };
    Cell {
        load_avg,
        mean_ms,
        samples: n,
    }
}

/// The paper's Table 1, as (class, bucket label, midpoint, value-ms).
/// Cells the paper left blank are `None`.
pub const PAPER: &[(CpuClass, &str, f64, Option<f64>)] = &[
    (CpuClass::Vax780, "0 < la <= 1", 0.5, Some(7.2)),
    (CpuClass::Vax780, "1 < la <= 2", 1.5, Some(9.8)),
    (CpuClass::Vax780, "2 < la <= 3", 2.5, Some(13.6)),
    (CpuClass::Vax780, "3 < la <= 4", 3.5, None),
    (CpuClass::Vax750, "0 < la <= 1", 0.5, Some(7.2)),
    (CpuClass::Vax750, "1 < la <= 2", 1.5, Some(9.6)),
    (CpuClass::Vax750, "2 < la <= 3", 2.5, Some(12.8)),
    (CpuClass::Vax750, "3 < la <= 4", 3.5, Some(18.9)),
    (CpuClass::Sun2, "0 < la <= 1", 0.5, Some(8.31)),
    (CpuClass::Sun2, "1 < la <= 2", 1.5, Some(14.13)),
    (CpuClass::Sun2, "2 < la <= 3", 2.5, Some(22.0)),
    (CpuClass::Sun2, "3 < la <= 4", 3.5, Some(42.7)),
];

/// Runs the whole table.
pub fn run(seed: u64) -> Vec<(CpuClass, &'static str, Option<f64>, Cell)> {
    PAPER
        .iter()
        .map(|&(cpu, label, mid, paper)| (cpu, label, paper, measure_cell(cpu, mid, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_vax_is_near_paper() {
        let cell = measure_cell(CpuClass::Vax780, 0.5, 42);
        assert!(cell.samples > 100, "enough samples: {}", cell.samples);
        assert!(
            (0.2..0.9).contains(&cell.load_avg),
            "la pinned: {}",
            cell.load_avg
        );
        let rel = (cell.mean_ms - 7.2).abs() / 7.2;
        assert!(rel < 0.25, "measured {:.2}ms vs paper 7.2ms", cell.mean_ms);
    }

    #[test]
    fn sun_degrades_much_faster_than_vax() {
        let sun_hi = measure_cell(CpuClass::Sun2, 3.5, 7);
        let sun_lo = measure_cell(CpuClass::Sun2, 0.5, 7);
        let vax_hi = measure_cell(CpuClass::Vax750, 3.5, 7);
        let vax_lo = measure_cell(CpuClass::Vax750, 0.5, 7);
        let sun_ratio = sun_hi.mean_ms / sun_lo.mean_ms;
        let vax_ratio = vax_hi.mean_ms / vax_lo.mean_ms;
        assert!(
            sun_ratio > vax_ratio * 1.3,
            "SUN ratio {sun_ratio:.2} vs VAX ratio {vax_ratio:.2}"
        );
    }
}
