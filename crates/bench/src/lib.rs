//! # ppm-bench — regenerating the paper's evaluation
//!
//! One module per table plus the figure renderers and ablations:
//!
//! * [`table1`] — kernel→LPM message delivery vs load and CPU class;
//! * [`table2`] — create/stop/terminate vs topological distance;
//! * [`table3`] — snapshot gathering over the four Figure 5 topologies;
//! * [`figures`] — textual regenerations of Figures 1–5;
//! * [`ablate`] — ablations of the design choices DESIGN.md calls out;
//! * [`hotpath`] — paired new-vs-seed workloads for the optimised hot paths;
//! * [`multi_tenant`] — the sharded-arena storm world vs a per-record
//!   allocation baseline, digest-checked;
//! * [`netmodel`] — the identical end-to-end workload on the flat wire
//!   vs under the full-mesh topology model (the pricing tax);
//! * [`scale`] — the tens-of-nodes stress test the paper deferred;
//! * [`sweep`] — the parallel experiment harness: declarative grids of
//!   (seed × scenario × fault plan × topology) fanned out over a
//!   work-stealing worker pool, merged into a deterministic report
//!   (see the `ppm-sweep` binary).
//!
//! Every measurement is *simulated* milliseconds from the calibrated
//! substrate, directly comparable in shape to the paper's tables.

pub mod ablate;
pub mod figures;
pub mod hotpath;
pub mod multi_tenant;
pub mod netmodel;
pub mod scale;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;

/// Formats a measured-vs-paper pair with relative error.
pub fn vs(paper: Option<f64>, measured: f64) -> String {
    match paper {
        Some(p) if p > 0.0 => {
            let rel = (measured - p) / p * 100.0;
            format!("{measured:>8.1}  (paper {p:>6.1}, {rel:+5.1}%)")
        }
        _ => format!("{measured:>8.1}  (paper     N/A)"),
    }
}
