//! Emits `BENCH_PR10.json`: median ns/op for each optimised hot path and
//! its bench-local seed copy, measured in the same process and run. The
//! pairs recorded in the checked-in `BENCH_PR8.json` are re-measured,
//! the PR 8 medians are carried into the output's `previous` section so
//! the perf trajectory stays one file per PR, and a `sweep_scaling`
//! section records the parallel experiment harness on the 64-run
//! `scenarios/chaos_mttr.sweep` grid: runs/sec at 1 worker vs 8, with
//! the two reports asserted byte-identical and the grid digest pinned.
//! Wall-clock speedup is machine-dependent — `host_cpus` records how
//! many cores the measuring box actually had (a 1-CPU container cannot
//! show a parallel speedup, the report-equality assert still bites).
//!
//! This PR adds the `netmodel_overhead` pair: the identical end-to-end
//! workload on the flat wire vs under the full-mesh topology model.
//! Its ratio is the network model's pricing tax and is bounded
//! *absolutely* by [`NETMODEL_OVERHEAD_MAX_RATIO`], like
//! `obs_overhead`'s ceiling.
//!
//! Usage:
//!
//! * `cargo run --release -p ppm-bench --bin emit_bench`
//!   (from the repository root; `BENCH_PR10.json` is written to the
//!   working directory)
//! * `... --bin emit_bench -- --gate`
//!   re-measures every pair and exits non-zero if any workload regressed
//!   more than [`GATE_TOLERANCE_PCT`] against the checked-in
//!   `BENCH_PR10.json` — the CI perf-regression smoke gate.
//!
//! Absolute nanoseconds are not comparable across machines (or even
//! across runs on a loaded CI box), so the gate normalises each
//! workload by its bench-local seed copy measured in the same run: what
//! is compared against the checked-in JSON is the optimised/seed ratio
//! of best-epoch times, which only moves when the optimised code itself
//! changes.
//!
//! The `obs_overhead` pair gets one extra, *absolute* bound: its ratio
//! is instrumented/plain — the cost of the metrics registry on the hot
//! path — and must stay at or under [`OBS_OVERHEAD_MAX_RATIO`]
//! regardless of what the checked-in file says.

use std::time::Instant;

use ppm_bench::{hotpath, multi_tenant, netmodel, sweep};

/// Sampling epochs per pair; median ns are reported, best-epoch ns feed
/// the gate ratio. Each epoch times the optimised and seed sides back to
/// back, so slow machine drift (frequency scaling, CI throttling) hits
/// both sides equally.
const SAMPLES: usize = 15;

/// Runs `work` until it has consumed roughly this much wall time per
/// sample, so fast workloads are timed over many iterations.
const TARGET_SAMPLE_MS: u128 = 25;

/// How much a workload's optimised/seed ratio may regress against the
/// checked-in ratio before the gate fails. Generous because CI machines
/// are noisy; real regressions from the structural changes this guards
/// against are integer factors, not percents.
const GATE_TOLERANCE_PCT: f64 = 10.0;

/// Absolute slack added on top of the relative tolerance. For workloads
/// whose optimised side is an order of magnitude faster than seed the
/// ratio sits near zero (`genealogy_scale` ≈ 0.07), where ±10% relative
/// is smaller than run-to-run scheduler noise; a flat floor keeps the
/// gate conditioned across the whole ratio range while an integer-factor
/// regression still fails by a mile.
const GATE_ABS_SLACK: f64 = 0.02;

/// The checked-in results the gate compares against.
const BASELINE_JSON: &str = "BENCH_PR10.json";

/// The PR 8 results carried into the emitted file's `previous` section.
const PREV_JSON: &str = "BENCH_PR8.json";

/// The sweep grid timed for the `sweep_scaling` section: 64 independent
/// runs (2 scenarios x 2 fault plans x 16 seeds).
const SWEEP_GRID: &str = "scenarios/chaos_mttr.sweep";

/// Wide worker count for the scaling measurement.
const SWEEP_WORKERS: usize = 8;

/// Timing epochs per worker count; best epoch is reported (noise only
/// ever adds time).
const SWEEP_EPOCHS: usize = 5;

/// `multi_tenant_scale` workload shape: users, hosts, storm seed, and
/// forks per workload call. Sized so one call fits a sampling epoch
/// while the live population still ramps into the thousands.
const MT_USERS: u32 = 256;
const MT_HOSTS: u16 = 8;
const MT_SEED: u64 = 11;
const MT_PROCS: u64 = 50_000;

/// Hard ceiling on the `obs_overhead` instrumented/plain ratio, on any
/// machine, against any baseline. 1.12 rather than the historical 1.05:
/// the denominator (the plain wheel) got ~40% faster in PR 8, so the
/// observability layer's unchanged absolute cost is now a larger
/// fraction of each step; the ceiling bounds the same ~65ns/step it
/// always did.
const OBS_OVERHEAD_MAX_RATIO: f64 = 1.12;

/// Hard ceiling on the `netmodel_overhead` routed/flat ratio, on any
/// machine, against any baseline: opting into the topology model may
/// cost at most 5% of end-to-end wall time on an uncontended full mesh
/// (where it prices every send identically to the flat law, so the
/// whole ratio is pricing machinery — route lookup, fair-share
/// ledgers, stats).
const NETMODEL_OVERHEAD_MAX_RATIO: f64 = 1.05;

/// How many calls of `work` fill roughly one sampling epoch.
fn calibrate(work: &mut dyn FnMut() -> u64, sink: &mut u64) -> u64 {
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_millis() < TARGET_SAMPLE_MS / 5 {
        *sink = sink.wrapping_add(work());
        calls += 1;
    }
    calls.max(1) * 5
}

/// Median ns per call over one side of an epoch.
fn time_side(work: &mut dyn FnMut() -> u64, calls: u64, sink: &mut u64) -> f64 {
    let t = Instant::now();
    for _ in 0..calls {
        *sink = sink.wrapping_add(work());
    }
    t.elapsed().as_nanos() as f64 / calls as f64
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    v[v.len() / 2]
}

fn min_of(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::INFINITY, f64::min)
}

struct Pair {
    name: &'static str,
    new_ns: f64,
    seed_ns: f64,
    /// Best-epoch optimised ns over best-epoch seed ns — the
    /// machine-independent quantity the gate compares. Scheduler and
    /// frequency noise only ever add time, so the per-side minimum is the
    /// low-variance estimate of each implementation's true cost; a median
    /// of per-epoch ratios wobbles several percent run to run, which the
    /// gate's tolerance then has to absorb.
    ratio: f64,
}

impl Pair {
    fn improvement_pct(&self) -> f64 {
        (self.seed_ns - self.new_ns) / self.seed_ns * 100.0
    }
}

/// Measures one optimised/seed pair in interleaved epochs.
fn measure_pair(
    name: &'static str,
    new: &mut dyn FnMut() -> u64,
    seed: &mut dyn FnMut() -> u64,
) -> Pair {
    let mut sink = 0u64;
    let new_calls = calibrate(new, &mut sink);
    let seed_calls = calibrate(seed, &mut sink);
    let mut new_s = Vec::with_capacity(SAMPLES);
    let mut seed_s = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        new_s.push(time_side(new, new_calls, &mut sink));
        seed_s.push(time_side(seed, seed_calls, &mut sink));
    }
    std::hint::black_box(sink);
    let ratio = min_of(&new_s) / min_of(&seed_s);
    Pair {
        name,
        new_ns: median(new_s),
        seed_ns: median(seed_s),
        ratio,
    }
}

/// Measures every pair: PR 1's three, PR 3/4's two, and this PR's
/// multi-tenant storm.
fn measure_all() -> Vec<Pair> {
    let msgs = hotpath::fanout_msgs(32);
    let mt_spec = multi_tenant::bench_spec(MT_USERS, MT_HOSTS, MT_SEED);
    vec![
        measure_pair(
            "engine_hotpath",
            &mut || hotpath::engine_new(4_000),
            &mut || hotpath::engine_seed(4_000),
        ),
        measure_pair(
            "codec_roundtrip",
            &mut || hotpath::codec_new(&msgs),
            &mut || hotpath::codec_seed(&msgs),
        ),
        measure_pair(
            "genealogy_scale",
            &mut || hotpath::genealogy_new(1_000),
            &mut || hotpath::genealogy_seed(1_000),
        ),
        measure_pair(
            "gather_chain32",
            &mut || hotpath::gather_new(32),
            &mut || hotpath::gather_seed(32),
        ),
        // The wheel's baseline is the PR 1 indexed heap driven with the
        // identical retransmit workload.
        measure_pair(
            "timer_wheel_retransmit",
            &mut || hotpath::wheel_retransmit(4_000),
            &mut || hotpath::engine_new(4_000),
        ),
        // Instrumented vs plain: this pair's ratio is the observability
        // overhead itself, bounded absolutely by the gate.
        measure_pair(
            "obs_overhead",
            &mut || hotpath::obs_instrumented(4_000),
            &mut || hotpath::wheel_retransmit(4_000),
        ),
        // The multi-tenant storm: sharded arena world vs the
        // per-record-allocation baseline over the identical seeded
        // decision stream (digest-checked in the module tests).
        measure_pair(
            "multi_tenant_scale",
            &mut || multi_tenant::tenant_new(mt_spec, MT_PROCS),
            &mut || multi_tenant::tenant_seed(mt_spec, MT_PROCS),
        ),
        // Routed vs flat: the same end-to-end workload with and without
        // the full-mesh topology model — the pricing tax, bounded
        // absolutely by the gate.
        measure_pair(
            "netmodel_overhead",
            &mut || netmodel::routed_run(),
            &mut || netmodel::flat_run(),
        ),
    ]
}

/// Measured sweep-harness scaling on [`SWEEP_GRID`].
struct SweepScaling {
    runs: usize,
    runs_per_sec_w1: f64,
    runs_per_sec_wide: f64,
    host_cpus: usize,
    /// The grid digest from the report's summary line — pinned so a
    /// future change to any cell's behaviour shows up in the JSON diff.
    grid_digest: String,
}

/// Times the full grid at 1 worker and at [`SWEEP_WORKERS`], asserting
/// the two reports byte-identical (the merge-determinism contract), and
/// returns best-epoch runs/sec for both.
fn measure_sweep_scaling() -> SweepScaling {
    let grid = sweep::Grid::load(std::path::Path::new(SWEEP_GRID))
        .unwrap_or_else(|e| panic!("load {SWEEP_GRID}: {e}"));
    let specs = grid.expand();
    let time_at = |workers: usize| -> (f64, String) {
        let mut best = f64::INFINITY;
        let mut report = String::new();
        for _ in 0..SWEEP_EPOCHS {
            let t = Instant::now();
            let results = sweep::run_specs(&specs, workers);
            best = best.min(t.elapsed().as_secs_f64());
            report = sweep::render_report(&grid, &results);
        }
        (specs.len() as f64 / best, report)
    };
    let (rps1, report1) = time_at(1);
    let (rps_wide, report_wide) = time_at(SWEEP_WORKERS);
    assert_eq!(
        report1, report_wide,
        "sweep report must be byte-identical across worker counts"
    );
    let grid_digest = report1
        .lines()
        .last()
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, d)| d.to_string())
        .expect("summary digest line");
    SweepScaling {
        runs: specs.len(),
        runs_per_sec_w1: rps1,
        runs_per_sec_wide: rps_wide,
        host_cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        grid_digest,
    }
}

/// Extracts `"<field>": <number>` for `bench` from the hand-written JSON
/// this tool emits (and PR 1 emitted).
fn json_field(json: &str, bench: &str, field: &str) -> Option<f64> {
    let obj = &json[json.find(&format!("\"{bench}\""))?..];
    let val = &obj[obj.find(&format!("\"{field}\":"))? + field.len() + 3..];
    let num: String = val
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

/// CI smoke gate: fail on a >[`GATE_TOLERANCE_PCT`] regression of any
/// workload's optimised/seed ratio against the checked-in numbers.
fn gate() -> ! {
    let baseline = std::fs::read_to_string(BASELINE_JSON)
        .unwrap_or_else(|e| panic!("read {BASELINE_JSON}: {e}"));
    let mut failed = false;
    for p in measure_all() {
        if p.name == "obs_overhead" && p.ratio > OBS_OVERHEAD_MAX_RATIO {
            failed = true;
            println!(
                "{:22} instrumented/plain {:>5.3}  exceeds the absolute \
                 ceiling {OBS_OVERHEAD_MAX_RATIO}  REGRESSED",
                p.name, p.ratio,
            );
            continue;
        }
        if p.name == "netmodel_overhead" && p.ratio > NETMODEL_OVERHEAD_MAX_RATIO {
            failed = true;
            println!(
                "{:22} routed/flat {:>5.3}  exceeds the absolute \
                 ceiling {NETMODEL_OVERHEAD_MAX_RATIO}  REGRESSED",
                p.name, p.ratio,
            );
            continue;
        }
        let Some(prev_ratio) = json_field(&baseline, p.name, "ratio") else {
            println!("{:22} missing from {BASELINE_JSON}; skipped", p.name);
            continue;
        };
        let delta_pct = (p.ratio / prev_ratio - 1.0) * 100.0;
        let allowed = prev_ratio * (1.0 + GATE_TOLERANCE_PCT / 100.0) + GATE_ABS_SLACK;
        let verdict = if p.ratio > allowed {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:22} new/seed {:>5.3}  checked-in {:>5.3}  ({:+.1}%)  {}",
            p.name, p.ratio, prev_ratio, delta_pct, verdict,
        );
    }
    if failed {
        println!(
            "perf gate FAILED: a workload regressed more than {GATE_TOLERANCE_PCT}% \
             (+{GATE_ABS_SLACK} absolute slack) against {BASELINE_JSON}"
        );
        std::process::exit(1);
    }
    println!("perf gate passed (tolerance {GATE_TOLERANCE_PCT}% + {GATE_ABS_SLACK} absolute)");
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--gate") {
        gate();
    }

    let pairs = measure_all();
    let mut json = String::from("{\n  \"benches\": {\n");
    for (i, p) in pairs.iter().enumerate() {
        let comma = if i + 1 < pairs.len() { "," } else { "" };
        // The scale pair also records its absolute throughput: forks
        // per wall-clock second of the arena world's side.
        let extras = if p.name == "multi_tenant_scale" {
            let procs_per_sec = MT_PROCS as f64 / (p.new_ns * 1e-9);
            format!(
                ", \"users\": {MT_USERS}, \"hosts\": {MT_HOSTS}, \"procs_per_call\": {MT_PROCS}, \
                 \"procs_per_sec\": {procs_per_sec:.0}"
            )
        } else {
            String::new()
        };
        json.push_str(&format!(
            "    \"{}\": {{ \"new_median_ns\": {:.0}, \"seed_median_ns\": {:.0}, \
             \"ratio\": {:.4}, \"improvement_pct\": {:.1}{} }}{}\n",
            p.name,
            p.new_ns,
            p.seed_ns,
            p.ratio,
            p.improvement_pct(),
            extras,
            comma,
        ));
        println!(
            "{:22} new {:>12.0} ns  seed {:>12.0} ns  ({:+.1}%)",
            p.name,
            p.new_ns,
            p.seed_ns,
            p.improvement_pct(),
        );
    }
    json.push_str("  },\n  \"previous\": {\n");
    if let Ok(prev) = std::fs::read_to_string(PREV_JSON) {
        let carried: Vec<String> = [
            "engine_hotpath",
            "codec_roundtrip",
            "genealogy_scale",
            "gather_chain32",
            "timer_wheel_retransmit",
            "obs_overhead",
            "multi_tenant_scale",
            "netmodel_overhead",
        ]
        .iter()
        .filter_map(|name| {
            let new = json_field(&prev, name, "new_median_ns")?;
            let seed = json_field(&prev, name, "seed_median_ns")?;
            let ratio = json_field(&prev, name, "ratio")?;
            Some(format!(
                "    \"{name}\": {{ \"new_median_ns\": {new:.0}, \"seed_median_ns\": {seed:.0}, \
                 \"ratio\": {ratio:.4} }}"
            ))
        })
        .collect();
        json.push_str(&carried.join(",\n"));
        json.push('\n');
    }
    let sw = measure_sweep_scaling();
    println!(
        "sweep_scaling          {} runs  {:>7.1} runs/sec @1 worker  {:>7.1} @{} workers  \
         ({} cpus, digest {})",
        sw.runs,
        sw.runs_per_sec_w1,
        sw.runs_per_sec_wide,
        SWEEP_WORKERS,
        sw.host_cpus,
        sw.grid_digest,
    );
    json.push_str(&format!(
        "  }},\n  \"sweep_scaling\": {{ \"grid\": \"{SWEEP_GRID}\", \"runs\": {}, \
         \"workers_wide\": {SWEEP_WORKERS}, \"runs_per_sec_w1\": {:.1}, \
         \"runs_per_sec_w{SWEEP_WORKERS}\": {:.1}, \"speedup\": {:.2}, \"host_cpus\": {}, \
         \"report_digest\": \"{}\" }},\n  \"samples\": ",
        sw.runs,
        sw.runs_per_sec_w1,
        sw.runs_per_sec_wide,
        sw.runs_per_sec_wide / sw.runs_per_sec_w1,
        sw.host_cpus,
        sw.grid_digest,
    ));
    json.push_str(&SAMPLES.to_string());
    if let Some(kb) = multi_tenant::peak_rss_kb() {
        json.push_str(&format!(",\n  \"peak_rss_kb\": {kb}"));
    }
    json.push_str(
        ",\n  \"note\": \"median ns per workload call, ratio is best-epoch new over \
         best-epoch seed; seed_* are bench-local copies of \
         the pre-PR implementations, measured in the same run;timer_wheel_retransmit's \
         seed is the PR 1 indexed heap; obs_overhead's seed is the plain wheel and its \
         ratio is the observability overhead (absolute gate ceiling 1.12, rebased \
         against the PR 8 wheel which is ~40% faster than the PR 6 denominator); \
         multi_tenant_scale's seed is a per-record-allocation map world running the \
         identical storm (digest-checked) and procs_per_sec is its arena side's \
         absolute fork throughput; netmodel_overhead's seed is the same end-to-end \
         workload on the flat wire and its ratio is the full-mesh topology model's \
         pricing tax (absolute gate ceiling 1.05); peak_rss_kb is the bench process's \
         VmHWM; previous carries the checked-in PR 8 medians and ratios; \
         sweep_scaling times the 64-run chaos_mttr grid through the parallel sweep \
         harness at 1 and 8 workers with the two reports asserted byte-identical \
         (speedup is wall-clock and host_cpus-bound; report_digest pins every \
         cell)\"\n}\n",
    );

    std::fs::write("BENCH_PR10.json", &json).expect("write BENCH_PR10.json");
    println!("wrote BENCH_PR10.json");
}
