//! Emits `BENCH_PR1.json`: median ns/op for each optimised hot path and
//! its bench-local seed copy, measured in the same process and run.
//!
//! Usage: `cargo run --release -p ppm-bench --bin emit_bench`
//! (from the repository root; the file is written to the working
//! directory).

use std::time::Instant;

use ppm_bench::hotpath;

/// Samples per benchmark; the median is reported.
const SAMPLES: usize = 15;

/// Runs `work` until it has consumed roughly this much wall time per
/// sample, so fast workloads are timed over many iterations.
const TARGET_SAMPLE_MS: u128 = 25;

/// Median ns per call of `work`, over [`SAMPLES`] samples.
fn median_ns(work: &mut dyn FnMut() -> u64) -> f64 {
    // Calibrate: how many calls fill one sample?
    let mut sink = 0u64;
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed().as_millis() < TARGET_SAMPLE_MS / 5 {
        sink = sink.wrapping_add(work());
        calls += 1;
    }
    let per_sample = calls.max(1) * 5;

    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..per_sample {
                sink = sink.wrapping_add(work());
            }
            t.elapsed().as_nanos() as f64 / per_sample as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    std::hint::black_box(sink);
    samples[samples.len() / 2]
}

struct Pair {
    name: &'static str,
    new_ns: f64,
    seed_ns: f64,
}

impl Pair {
    fn improvement_pct(&self) -> f64 {
        (self.seed_ns - self.new_ns) / self.seed_ns * 100.0
    }
}

fn main() {
    let msgs = hotpath::fanout_msgs(32);
    let pairs = [
        Pair {
            name: "engine_hotpath",
            new_ns: median_ns(&mut || hotpath::engine_new(4_000)),
            seed_ns: median_ns(&mut || hotpath::engine_seed(4_000)),
        },
        Pair {
            name: "codec_roundtrip",
            new_ns: median_ns(&mut || hotpath::codec_new(&msgs)),
            seed_ns: median_ns(&mut || hotpath::codec_seed(&msgs)),
        },
        Pair {
            name: "genealogy_scale",
            new_ns: median_ns(&mut || hotpath::genealogy_new(1_000)),
            seed_ns: median_ns(&mut || hotpath::genealogy_seed(1_000)),
        },
    ];

    let mut json = String::from("{\n  \"benches\": {\n");
    for (i, p) in pairs.iter().enumerate() {
        let comma = if i + 1 < pairs.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{}\": {{ \"new_median_ns\": {:.0}, \"seed_median_ns\": {:.0}, \
             \"improvement_pct\": {:.1} }}{}\n",
            p.name,
            p.new_ns,
            p.seed_ns,
            p.improvement_pct(),
            comma,
        ));
        println!(
            "{:22} new {:>12.0} ns  seed {:>12.0} ns  ({:+.1}%)",
            p.name,
            p.new_ns,
            p.seed_ns,
            p.improvement_pct(),
        );
    }
    json.push_str("  },\n  \"samples\": ");
    json.push_str(&SAMPLES.to_string());
    json.push_str(",\n  \"note\": \"median ns per workload call; seed_* are bench-local copies of the pre-PR implementations, measured in the same run\"\n}\n");

    std::fs::write("BENCH_PR1.json", &json).expect("write BENCH_PR1.json");
    println!("wrote BENCH_PR1.json");
}
