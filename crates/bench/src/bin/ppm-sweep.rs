//! `ppm-sweep` — run a declarative sweep grid across every core.
//!
//! ```console
//! $ cargo run --release -p ppm-bench --bin ppm-sweep -- scenarios/smoke.sweep
//! $ cargo run --release -p ppm-bench --bin ppm-sweep -- scenarios/chaos_mttr.sweep --workers 8
//! $ cargo run --release -p ppm-bench --bin ppm-sweep -- scenarios/smoke.sweep \
//!       --repro 'scenario:chaos.ppm|fault:crash_heal.fault|seed=3'
//! ```
//!
//! The grid (see `ppm_bench::sweep` for the grammar) expands into
//! independent runs; `--workers N` (default: every core) fans them out
//! over a work-stealing thread pool, one private simulated world per
//! run. The report on stdout is byte-identical for any worker count —
//! CI runs the same grid twice at different widths and diffs the bytes.
//! Wall-clock and runs/sec go to stderr. `--out <path>` also writes the
//! report to a file; `--repro <spec-id>` prints the single-run `ppm-sim`
//! command line that replays one cell (digest and all) and exits.
//!
//! Exit status is nonzero when any cell fails its predicates, so the
//! grid doubles as a batch acceptance gate.

use std::path::PathBuf;
use std::process::ExitCode;

use ppm_bench::sweep::{render_report, render_timing, run_specs, Grid};

fn usage() -> ExitCode {
    eprintln!("usage: ppm-sweep <grid.sweep> [--workers N] [--out <path>] [--repro <spec-id>]");
    eprintln!("see scenarios/*.sweep for examples and ppm_bench::sweep for the grammar");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut grid_path: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut out_path: Option<String> = None;
    let mut repro_id: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()).filter(|n| *n >= 1) else {
                    eprintln!("ppm-sweep: --workers needs a count of at least 1");
                    return ExitCode::FAILURE;
                };
                workers = Some(n);
            }
            "--out" => {
                let Some(p) = args.next() else {
                    eprintln!("ppm-sweep: --out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = Some(p);
            }
            "--repro" => {
                let Some(id) = args.next() else {
                    eprintln!("ppm-sweep: --repro needs a spec id (variant|plan|seed=N)");
                    return ExitCode::FAILURE;
                };
                repro_id = Some(id);
            }
            _ => grid_path = Some(PathBuf::from(arg)),
        }
    }
    let Some(grid_path) = grid_path else {
        return usage();
    };
    let grid = match Grid::load(&grid_path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ppm-sweep: {}: {e}", grid_path.display());
            return ExitCode::FAILURE;
        }
    };
    let specs = grid.expand();
    if let Some(id) = repro_id {
        return match specs.iter().find(|s| s.id == id) {
            Some(spec) => {
                println!("{}", spec.repro());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("ppm-sweep: no spec {id:?} in this grid; cells are:");
                for s in &specs {
                    eprintln!("  {}", s.id);
                }
                ExitCode::FAILURE
            }
        };
    }
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    let started = std::time::Instant::now();
    let results = run_specs(&specs, workers);
    let elapsed = started.elapsed();
    let report = render_report(&grid, &results);
    print!("{report}");
    eprintln!("{}", render_timing(results.len(), workers, elapsed));
    if let Some(p) = out_path {
        if let Err(e) = std::fs::write(&p, &report) {
            eprintln!("ppm-sweep: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if results.iter().any(|r| !r.failures.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
