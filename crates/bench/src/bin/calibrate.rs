use ppm_bench::{table1, table2, table3, vs};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    if which.is_empty() || which == "t2" {
        println!("== Table 2 ==");
        for (action, hops, paper, cell) in table2::run(3, 1986) {
            println!(
                "{:<10} {} hops: {}",
                action.label(),
                hops,
                vs(paper, cell.mean_ms)
            );
        }
    }
    if which.is_empty() || which == "t3" {
        println!("== Table 3 ==");
        for (id, paper, cell) in table3::run(3, 1986) {
            println!(
                "topology {id}: {} ({} procs)",
                vs(Some(paper), cell.mean_ms),
                cell.procs
            );
        }
    }
    if which == "t1" {
        println!("== Table 1 ==");
        for (cpu, label, paper, cell) in table1::run(1986) {
            println!(
                "{cpu:?} {label}: {} (la={:.2}, n={})",
                vs(paper, cell.mean_ms),
                cell.load_avg,
                cell.samples
            );
        }
    }
}
