//! The `netmodel_overhead` workload pair: the identical end-to-end PPM
//! workload run twice, once on the flat wire law and once with the
//! full-mesh topology model installed. Full-mesh prices an uncontended
//! send exactly like the flat model's one hop, so the pair's ratio is
//! the *pricing machinery's* cost — route lookup, per-link fair-share
//! ledgers, stats — on every delivery, not a change in simulated
//! behaviour. The bench gate bounds it absolutely (see `emit_bench`):
//! the network model must stay a ≤5% tax even for worlds that opt in.

use ppm::core::config::PpmConfig;
use ppm::harness::harness::PpmHarness;
use ppm::simnet::topology::{CpuClass, NetSpec};
use ppm::simos::ids::Uid;

const HOSTS: [&str; 4] = ["n0", "n1", "n2", "n3"];
const USER: Uid = Uid(100);

/// One full workload: boot a 4-host world, fan a computation out over
/// every host, and sweep six global snapshots through it — enough
/// routed deliveries that per-send pricing, not the world build,
/// dominates the call. Returns a checksum (records seen + simulated
/// end time) so the optimiser keeps the run honest.
fn world_run(routed: bool) -> u64 {
    let mut b = PpmHarness::builder();
    for h in HOSTS {
        b = b.host(h, CpuClass::Vax780);
    }
    for (i, a) in HOSTS.iter().enumerate() {
        for b2 in &HOSTS[i + 1..] {
            b = b.link(*a, *b2);
        }
    }
    b = b.user(USER, 0xBE, &["n0"], PpmConfig::default());
    if routed {
        let names: Vec<String> = HOSTS.iter().map(|s| (*s).to_string()).collect();
        b = b.topology(NetSpec::preset("full-mesh", &names).expect("preset builds"));
    }
    let mut ppm = b.build();
    let root = ppm
        .spawn_remote("n0", USER, "n0", "master", None, None)
        .expect("root spawns");
    for h in &HOSTS[1..] {
        ppm.spawn_remote("n0", USER, h, "worker", Some(root.clone()), None)
            .expect("worker spawns");
    }
    let mut seen = 0u64;
    for _ in 0..6 {
        let (recs, missing) = ppm.snapshot_partial("n0", USER, "*").expect("snapshot");
        assert!(missing.is_empty(), "all hosts answer");
        seen += recs.len() as u64;
    }
    seen + ppm.now().as_micros()
}

/// The instrumented side: full-mesh model installed.
#[must_use]
pub fn routed_run() -> u64 {
    world_run(true)
}

/// The plain side: flat wire law.
#[must_use]
pub fn flat_run() -> u64 {
    world_run(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sides_do_the_same_work() {
        // Same spawns, same snapshot record counts — only the wire
        // pricing differs, so the checksums' record component agrees
        // (timing components differ once contention prices in).
        let flat = flat_run();
        let routed = routed_run();
        assert!(flat > 0 && routed > 0);
    }
}
