//! Scale stress test — beyond the paper.
//!
//! "The PPM's algorithms were designed to scale well into the tens of
//! nodes, but we have yet to stress test our implementation." Here we run
//! the stress test the authors could not: global snapshots and directed
//! control as the PPM grows to tens of hosts, under star and chain
//! sibling graphs.

use ppm_core::client::ToolStep;
use ppm_core::config::PpmConfig;
use ppm_harness::harness::PpmHarness;
use ppm_proto::msg::{ControlAction, Op, Reply};
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::Uid;

const USER: Uid = Uid(100);

/// Sibling-graph shape for the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// The originator is connected to every other LPM directly.
    Star,
    /// LPMs form a line; the wave relays hop by hop.
    Chain,
}

impl Shape {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Shape::Star => "star",
            Shape::Chain => "chain",
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Total hosts (originator included).
    pub hosts: usize,
    /// Global snapshot elapsed ms.
    pub snapshot_ms: f64,
    /// Processes gathered.
    pub procs: usize,
    /// Directed stop of a process on the farthest host, elapsed ms.
    pub control_far_ms: f64,
}

/// Builds an `n`-host PPM with the given sibling shape (one managed
/// process per non-origin host) and measures a global snapshot plus a
/// directed control of the farthest process.
pub fn measure(n: usize, shape: Shape, seed: u64) -> ScalePoint {
    assert!(n >= 2, "need at least two hosts");
    let mut b = PpmHarness::builder().seed(seed);
    for i in 0..n {
        b = b.host(
            format!("h{i}"),
            if i % 3 == 2 {
                CpuClass::Vax750
            } else {
                CpuClass::Vax780
            },
        );
    }
    match shape {
        Shape::Star => {
            for i in 1..n {
                b = b.link("h0".to_string(), format!("h{i}"));
            }
        }
        Shape::Chain => {
            for i in 1..n {
                b = b.link(format!("h{}", i - 1), format!("h{i}"));
            }
        }
    }
    // Deep chains take several sequential wave legs; give the echo wave
    // room before its safety timeout.
    let cfg = PpmConfig {
        bcast_timeout: SimDuration::from_secs(60),
        req_timeout: SimDuration::from_secs(60),
        ..PpmConfig::default()
    };
    let mut ppm = b.user(USER, 0x1986, &["h0"], cfg).build();

    // Build the sibling graph by creating one process per remote host
    // from the right creator.
    let mut far = None;
    for i in 1..n {
        let creator = match shape {
            Shape::Star => "h0".to_string(),
            Shape::Chain => format!("h{}", i - 1),
        };
        let g = ppm
            .spawn_remote(
                &creator,
                USER,
                &format!("h{i}"),
                &format!("p{i}"),
                None,
                None,
            )
            .expect("populate");
        far = Some(g);
    }
    let far = far.expect("n >= 2");
    ppm.run_for(SimDuration::from_secs(25));

    let outcome = ppm
        .run_tool(
            "h0",
            USER,
            vec![ToolStep::new("*", Op::Snapshot)],
            SimDuration::from_secs(120),
        )
        .expect("snapshot tool");
    assert!(outcome.error.is_none(), "{:?}", outcome.error);
    let snapshot_ms = outcome.elapsed(0).expect("reply").as_millis_f64();
    let procs = match outcome.reply(0) {
        Some(Reply::Snapshot { procs, .. }) => procs.len(),
        _ => 0,
    };

    ppm.run_for(SimDuration::from_secs(25));
    let outcome = ppm
        .run_tool(
            "h0",
            USER,
            vec![ToolStep::new(
                far.host.clone(),
                Op::Control {
                    pid: far.pid,
                    action: ControlAction::Stop,
                },
            )],
            SimDuration::from_secs(120),
        )
        .expect("control tool");
    assert!(outcome.error.is_none(), "{:?}", outcome.error);
    let control_far_ms = outcome.elapsed(0).expect("reply").as_millis_f64();

    ScalePoint {
        hosts: n,
        snapshot_ms,
        procs,
        control_far_ms,
    }
}

/// The sweep used by the bench target.
pub fn sweep(shape: Shape, sizes: &[usize], seed: u64) -> Vec<ScalePoint> {
    sizes.iter().map(|&n| measure(n, shape, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_snapshot_scales_gently_into_tens_of_nodes() {
        let small = measure(4, Shape::Star, 31);
        let big = measure(16, Shape::Star, 31);
        assert_eq!(small.procs, 3);
        assert_eq!(big.procs, 15, "every host contributed");
        // 4x the hosts must cost far less than 4x the time (parallel wave;
        // only the serialized merges grow).
        assert!(
            big.snapshot_ms < small.snapshot_ms * 3.0,
            "small {:.0}ms big {:.0}ms",
            small.snapshot_ms,
            big.snapshot_ms
        );
    }

    #[test]
    fn chain_snapshot_grows_linearly_with_depth() {
        let d4 = measure(4, Shape::Chain, 32);
        let d8 = measure(8, Shape::Chain, 32);
        assert_eq!(d8.procs, 7);
        let per_leg_4 = d4.snapshot_ms / 3.0;
        let per_leg_8 = d8.snapshot_ms / 7.0;
        // Per-leg cost is roughly constant: the wave is sequential.
        let ratio = per_leg_8 / per_leg_4;
        assert!((0.6..1.6).contains(&ratio), "per-leg ratio {ratio:.2}");
        assert!(d8.snapshot_ms > d4.snapshot_ms * 1.7);
    }

    #[test]
    fn directed_control_cost_is_flat_in_a_star() {
        let small = measure(4, Shape::Star, 33);
        let big = measure(12, Shape::Star, 33);
        // Controlling one remote process does not get more expensive as
        // the PPM grows: on-demand design, "overhead proportional to the
        // amount of service provided".
        let ratio = big.control_far_ms / small.control_far_ms;
        assert!(
            (0.7..1.4).contains(&ratio),
            "{:.0}ms vs {:.0}ms",
            small.control_far_ms,
            big.control_far_ms
        );
    }
}
