//! The parallel experiment harness: deterministic sweep grids.
//!
//! A `.sweep` grid file declares a cross product of run dimensions —
//! seeds × variants (scenario files, generated chains, tenant storms) ×
//! fault plans — plus pass/fail predicates. [`Grid::parse`] expands the
//! product into independent [`RunSpec`]s; [`run_specs`] fans them out
//! over a pool of worker threads, each of which builds its *own*
//! simulated world (one engine per run — the engine itself stays
//! single-threaded and deterministic, parallelism lives strictly
//! *between* runs); [`render_report`] folds the results into a
//! [`SweepReport`] rendering that is **byte-identical regardless of
//! worker count or completion order**, because results land in
//! spec-indexed slots and every section is sorted by spec id — arrival
//! order never reaches the output. Wall-clock numbers are observational
//! and live in [`render_timing`], which callers send to stderr.
//!
//! ## Grid grammar
//!
//! ```text
//! sweep chaos-mttr              # required header, names the grid
//! seeds 1..8                    # inclusive range, or: seeds 1,5,9
//! scenario chaos.ppm            # variant: scenario file (grid-relative)
//! chain 12                      # variant: generated chain topology
//! storm 8x4 procs=4000          # variant: U users x H hosts storm
//! faults crash_heal.fault       # fault plan (grid-relative), or: faults none
//! topology fat-tree             # net model: preset, spec file, or: topology none
//! expect scenario complete      # substring the run output must contain
//! expect-metric lpm.restarts    # substring the metrics text must contain
//! ```
//!
//! Every `scenario`/`chain` variant runs under every fault plan and every
//! topology; storm variants have no fault-plan or topology hook and
//! always run with `fault:none` on the flat wire. Grids that never say
//! `topology` keep their pre-netmodel ids and report bytes — the
//! `net:<arg>` id segment appears only once the axis is declared.
//! Each (variant, plan, topology) triple runs once per seed. A run's digest is the
//! FNV-1a fold of exactly the strings `ppm-sim --digest` hashes, so any
//! cell — failed or not — can be re-derived standalone from the repro
//! command line carried in its result.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ppm::digest::{fnv1a, fnv1a_fold, hex};

/// One axis-point of the variant dimension.
#[derive(Debug, Clone)]
pub enum VariantKind {
    /// A scenario file, preloaded so workers never touch the filesystem.
    Scenario { text: Arc<str> },
    /// A generated chain-topology scale scenario (`ppm-sim --hosts N`).
    Chain { hosts: usize },
    /// A multi-tenant fork/exec/exit storm (`ppm-sim --users U --hosts H`).
    Storm { users: u32, hosts: u16, procs: u64 },
}

/// A variant with its stable label (`scenario:chaos.ppm`, `chain:12`,
/// `storm:8x4`). Labels use the path *as written* in the grid so report
/// bytes do not depend on where the grid file itself lives.
#[derive(Debug, Clone)]
pub struct Variant {
    pub label: String,
    /// Resolved path for repro command lines (scenario variants only).
    pub repro_path: Option<String>,
    pub kind: VariantKind,
}

/// A fault-plan axis point; `text == None` is the no-faults plan.
#[derive(Debug, Clone)]
pub struct Plan {
    pub label: String,
    pub repro_path: Option<String>,
    pub text: Option<Arc<str>>,
}

impl Plan {
    fn none() -> Self {
        Plan {
            label: "fault:none".into(),
            repro_path: None,
            text: None,
        }
    }
}

/// A topology axis point; `arg == None` is the flat wire (no net model).
/// Presets carry only their name (they are instantiated over each
/// variant's own host list at run time); spec files are preloaded like
/// fault plans so workers never touch the filesystem.
#[derive(Debug, Clone)]
pub struct Topo {
    pub label: String,
    /// The preset name or path *as written* in the grid (repro lines).
    pub arg: Option<String>,
    pub repro_path: Option<String>,
    /// Preloaded spec-file text (file-based topologies only).
    pub text: Option<Arc<str>>,
}

impl Topo {
    fn flat() -> Self {
        Topo {
            label: "net:flat".into(),
            arg: None,
            repro_path: None,
            text: None,
        }
    }
}

/// A parsed sweep grid: the declared axes plus the pass predicates.
#[derive(Debug, Clone)]
pub struct Grid {
    pub name: String,
    pub seeds: Vec<u64>,
    pub variants: Vec<Variant>,
    pub plans: Vec<Plan>,
    /// Topology axis; empty means the axis was never declared (flat wire,
    /// and the `net:` id segment is omitted for report-byte stability).
    pub topos: Vec<Topo>,
    /// Substrings the run output (scenario output / storm report) must contain.
    pub expects: Vec<String>,
    /// Substrings the metrics text must contain.
    pub expects_metric: Vec<String>,
}

/// One fully-specified independent run: a cell of the expanded grid.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// `variant|plan|seed=N` — the sort key for every report section.
    pub id: String,
    pub variant: Variant,
    pub plan: Plan,
    pub topo: Topo,
    pub seed: u64,
    pub expects: Vec<String>,
    pub expects_metric: Vec<String>,
}

/// The compact result a worker sends back: strings and integers only —
/// no world state ever crosses a thread boundary.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub id: String,
    /// FNV-1a digest of the run's observable surface (identical to
    /// `ppm-sim --digest` for the same spec).
    pub digest: u64,
    pub sim_end_us: u64,
    /// Pooled (`count`, `sum`) of every `lpm.mttr_us` histogram in the
    /// metrics text, when any LPM recovered during the run.
    pub mttr: Option<(u64, u64)>,
    /// Unmet predicates and execution errors; empty means the run passed.
    pub failures: Vec<String>,
    /// The exact `cargo run … ppm-sim` command line reproducing this cell.
    pub repro: String,
}

impl Grid {
    /// Parses a grid file. `base` is the directory paths are resolved
    /// against (the grid file's parent). Scenario and fault files are
    /// read and fault grammars validated here, so workers start from
    /// in-memory text and grammar errors fail fast, not per-cell.
    pub fn parse(text: &str, base: &Path) -> Result<Grid, String> {
        let mut name = None;
        let mut seeds = Vec::new();
        let mut variants = Vec::new();
        let mut plans = Vec::new();
        let mut topos = Vec::new();
        let mut expects = Vec::new();
        let mut expects_metric = Vec::new();
        for (lno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("line {}: {msg}", lno + 1);
            let (key, rest) = match line.split_once(char::is_whitespace) {
                Some((k, r)) => (k, r.trim()),
                None => (line, ""),
            };
            match key {
                "sweep" => {
                    if rest.is_empty() {
                        return Err(err("sweep needs a name".into()));
                    }
                    name = Some(rest.to_string());
                }
                "seeds" => seeds.extend(parse_seeds(rest).map_err(err)?),
                "scenario" => {
                    let resolved = base.join(rest);
                    let text = std::fs::read_to_string(&resolved)
                        .map_err(|e| err(format!("cannot read {}: {e}", resolved.display())))?;
                    variants.push(Variant {
                        label: format!("scenario:{rest}"),
                        repro_path: Some(resolved.display().to_string()),
                        kind: VariantKind::Scenario { text: text.into() },
                    });
                }
                "chain" => {
                    let hosts: usize = rest
                        .parse()
                        .ok()
                        .filter(|&n| n >= 2)
                        .ok_or_else(|| err("chain needs a host count of at least 2".into()))?;
                    variants.push(Variant {
                        label: format!("chain:{hosts}"),
                        repro_path: None,
                        kind: VariantKind::Chain { hosts },
                    });
                }
                "storm" => {
                    let mut parts = rest.split_whitespace();
                    let shape = parts.next().unwrap_or("");
                    let (u, h) = shape
                        .split_once('x')
                        .and_then(|(u, h)| Some((u.parse().ok()?, h.parse().ok()?)))
                        .filter(|&(u, h): &(u32, u16)| u >= 1 && h >= 2)
                        .ok_or_else(|| err(format!("bad storm shape {shape:?} (want UxH)")))?;
                    let mut procs = u64::from(u).saturating_mul(2_000);
                    for p in parts {
                        let v = p
                            .strip_prefix("procs=")
                            .and_then(|v| v.parse().ok())
                            .filter(|&v: &u64| v >= 1)
                            .ok_or_else(|| err(format!("bad storm option {p:?}")))?;
                        procs = v;
                    }
                    variants.push(Variant {
                        label: format!("storm:{u}x{h}"),
                        repro_path: None,
                        kind: VariantKind::Storm {
                            users: u,
                            hosts: h,
                            procs,
                        },
                    });
                }
                "faults" => {
                    if rest == "none" {
                        plans.push(Plan::none());
                    } else {
                        let resolved = base.join(rest);
                        let text = std::fs::read_to_string(&resolved)
                            .map_err(|e| err(format!("cannot read {}: {e}", resolved.display())))?;
                        ppm::simnet::fault::FaultPlan::parse(&text)
                            .map_err(|e| err(format!("{rest}: {e}")))?;
                        plans.push(Plan {
                            label: format!("fault:{rest}"),
                            repro_path: Some(resolved.display().to_string()),
                            text: Some(text.into()),
                        });
                    }
                }
                "topology" => {
                    if rest == "none" {
                        topos.push(Topo::flat());
                    } else if ppm::simnet::topology::NetSpec::PRESETS.contains(&rest) {
                        topos.push(Topo {
                            label: format!("net:{rest}"),
                            arg: Some(rest.to_string()),
                            repro_path: None,
                            text: None,
                        });
                    } else {
                        let resolved = base.join(rest);
                        let text = std::fs::read_to_string(&resolved)
                            .map_err(|e| err(format!("cannot read {}: {e}", resolved.display())))?;
                        ppm::simnet::topology::NetSpec::parse(&text)
                            .map_err(|e| err(format!("{rest}: {e}")))?;
                        topos.push(Topo {
                            label: format!("net:{rest}"),
                            arg: Some(rest.to_string()),
                            repro_path: Some(resolved.display().to_string()),
                            text: Some(text.into()),
                        });
                    }
                }
                "expect" => {
                    if rest.is_empty() {
                        return Err(err("expect needs a substring".into()));
                    }
                    expects.push(rest.to_string());
                }
                "expect-metric" => {
                    if rest.is_empty() {
                        return Err(err("expect-metric needs a substring".into()));
                    }
                    expects_metric.push(rest.to_string());
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
        }
        let name = name.ok_or("missing `sweep NAME` header")?;
        if variants.is_empty() {
            return Err("grid declares no variants (scenario/chain/storm)".into());
        }
        if seeds.is_empty() {
            seeds.push(1986);
        }
        if plans.is_empty() {
            plans.push(Plan::none());
        }
        Ok(Grid {
            name,
            seeds,
            variants,
            plans,
            topos,
            expects,
            expects_metric,
        })
    }

    /// Reads and parses a grid file; paths resolve against its parent dir.
    pub fn load(path: &Path) -> Result<Grid, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Grid::parse(&text, path.parent().unwrap_or(Path::new(".")))
    }

    /// Expands the cross product into independent run specs, in the
    /// deterministic grid order (variant-major, then plan, then seed).
    #[must_use]
    pub fn expand(&self) -> Vec<RunSpec> {
        let none = [Plan::none()];
        let flat = [Topo::flat()];
        let mut specs = Vec::new();
        for v in &self.variants {
            // Storms have no fault-plan or topology hook: the storm world
            // drives its engine directly, so only the no-faults plan on
            // the flat wire applies.
            let is_storm = matches!(v.kind, VariantKind::Storm { .. });
            let plans: &[Plan] = if is_storm { &none } else { &self.plans };
            let topos: &[Topo] = if is_storm || self.topos.is_empty() {
                &flat
            } else {
                &self.topos
            };
            for p in plans {
                for t in topos {
                    // The `net:` segment appears only when the grid
                    // declares the axis, so pre-netmodel grids keep
                    // their exact ids and report bytes. Storms pin
                    // `net:flat`, mirroring their `fault:none` pin.
                    let id = if self.topos.is_empty() {
                        format!("{}|{}|seed=", v.label, p.label)
                    } else {
                        format!("{}|{}|{}|seed=", v.label, p.label, t.label)
                    };
                    for &seed in &self.seeds {
                        specs.push(RunSpec {
                            id: format!("{id}{seed}"),
                            variant: v.clone(),
                            plan: p.clone(),
                            topo: t.clone(),
                            seed,
                            expects: self.expects.clone(),
                            expects_metric: self.expects_metric.clone(),
                        });
                    }
                }
            }
        }
        specs
    }
}

fn parse_seeds(rest: &str) -> Result<Vec<u64>, String> {
    if rest.is_empty() {
        return Err("seeds needs a range a..b or a comma list".into());
    }
    if let Some((a, b)) = rest.split_once("..") {
        let a: u64 = a.trim().parse().map_err(|_| format!("bad seed {a:?}"))?;
        let b: u64 = b.trim().parse().map_err(|_| format!("bad seed {b:?}"))?;
        if b < a {
            return Err(format!("empty seed range {a}..{b}"));
        }
        if b - a >= 4_096 {
            return Err(format!("seed range {a}..{b} too large (max 4096)"));
        }
        return Ok((a..=b).collect());
    }
    rest.split(',')
        .map(|s| {
            let s = s.trim();
            s.parse().map_err(|_| format!("bad seed {s:?}"))
        })
        .collect()
}

impl RunSpec {
    /// The `ppm-sim` command line that replays exactly this cell,
    /// digest and all.
    #[must_use]
    pub fn repro(&self) -> String {
        let mut cmd = String::from("cargo run --release --bin ppm-sim -- --digest");
        match &self.variant.kind {
            VariantKind::Scenario { .. } => {
                cmd.push_str(&format!(" --seed {}", self.seed));
                if let Some(p) = &self.plan.repro_path {
                    cmd.push_str(&format!(" --faults {p}"));
                }
                if let Some(t) = self.topo.repro_path.as_ref().or(self.topo.arg.as_ref()) {
                    cmd.push_str(&format!(" --topology {t}"));
                }
                if let Some(p) = &self.variant.repro_path {
                    cmd.push_str(&format!(" {p}"));
                }
            }
            VariantKind::Chain { hosts } => {
                cmd.push_str(&format!(" --seed {}", self.seed));
                if let Some(p) = &self.plan.repro_path {
                    cmd.push_str(&format!(" --faults {p}"));
                }
                if let Some(t) = self.topo.repro_path.as_ref().or(self.topo.arg.as_ref()) {
                    cmd.push_str(&format!(" --topology {t}"));
                }
                cmd.push_str(&format!(" --hosts {hosts}"));
            }
            VariantKind::Storm {
                users,
                hosts,
                procs,
            } => {
                cmd.push_str(&format!(
                    " --users {users} --hosts {hosts} --seed {} --procs {procs}",
                    self.seed
                ));
            }
        }
        cmd
    }
}

/// Pools every `lpm.mttr_us` histogram line of a metrics text into one
/// (count, sum) pair. Render shape (see `ppm_core::obs`):
/// `label lpm.mttr_us count=N sum=S buckets=[...]`.
fn pool_mttr(metrics: &str) -> Option<(u64, u64)> {
    let mut count = 0u64;
    let mut sum = 0u64;
    for line in metrics.lines() {
        if !line.contains(" lpm.mttr_us ") {
            continue;
        }
        for tok in line.split_whitespace() {
            if let Some(v) = tok.strip_prefix("count=") {
                count += v.parse::<u64>().unwrap_or(0);
            } else if let Some(v) = tok.strip_prefix("sum=") {
                sum += v.parse::<u64>().unwrap_or(0);
            }
        }
    }
    (count > 0).then_some((count, sum))
}

/// Executes one spec in the calling thread: builds a private world, runs
/// it to completion, reduces it to a [`RunResult`]. This is the only
/// function a worker runs; nothing in it is shared.
#[must_use]
pub fn run_spec(spec: &RunSpec) -> RunResult {
    let repro = spec.repro();
    let mut failures = Vec::new();
    let (output, metrics, digest, sim_end_us) = match &spec.variant.kind {
        VariantKind::Scenario { text } => run_scenario(text, spec, &mut failures),
        VariantKind::Chain { hosts } => {
            let text = ppm::scenario::chain_scenario(*hosts);
            run_scenario(&text, spec, &mut failures)
        }
        VariantKind::Storm {
            users,
            hosts,
            procs,
        } => {
            let storm = ppm::harness::tenant::scale_spec(*users, *hosts, spec.seed);
            let mut world = ppm::harness::tenant::TenantWorld::new(storm, *procs);
            let report = world.run();
            let rendered = report.render();
            let rows = ppm::core::obs::rows(&world.metrics().snapshot());
            let metrics = ppm::core::obs::render_metrics(&[("tenant".to_string(), rows)]);
            let digest = fnv1a(&[&rendered, &metrics]);
            (rendered, metrics, digest, report.sim_end_us)
        }
    };
    for want in &spec.expects {
        if !output.contains(want) {
            failures.push(format!("output missing {want:?}"));
        }
    }
    for want in &spec.expects_metric {
        if !metrics.contains(want) {
            failures.push(format!("metrics missing {want:?}"));
        }
    }
    RunResult {
        id: spec.id.clone(),
        digest,
        sim_end_us,
        mttr: pool_mttr(&metrics),
        failures,
        repro,
    }
}

/// Scenario/chain executor shared by [`run_spec`]: mirrors `ppm-sim`
/// byte for byte (same parse, same seed override, same digest chunks).
fn run_scenario(
    text: &str,
    spec: &RunSpec,
    failures: &mut Vec<String>,
) -> (String, String, u64, u64) {
    let mut out = String::new();
    let scenario = ppm::scenario::parse(text);
    let plan = spec
        .plan
        .text
        .as_deref()
        .map(|t| ppm::simnet::fault::FaultPlan::parse(t).expect("plan validated at grid load"));
    let run = scenario.and_then(|mut sc| {
        sc.seed = spec.seed;
        // File-based topologies were validated at grid load; presets are
        // instantiated over this variant's own host list.
        let topo = match (&spec.topo.text, &spec.topo.arg) {
            (Some(t), _) => Some(
                ppm::simnet::topology::NetSpec::parse(t).expect("topology validated at grid load"),
            ),
            (None, Some(name)) => {
                let hosts: Vec<String> = sc.hosts.iter().map(|(n, _)| n.clone()).collect();
                Some(
                    ppm::simnet::topology::NetSpec::preset(name, &hosts).ok_or_else(|| {
                        ppm::scenario::ScenarioError {
                            line: 0,
                            message: format!("preset {name:?} needs at least one host"),
                        }
                    })?,
                )
            }
            (None, None) => None,
        };
        let opts = ppm::scenario::ExecOptions {
            spans: false,
            faults: plan.as_ref(),
            topology: topo.as_ref(),
        };
        ppm::scenario::execute_with(&sc, &mut out, opts)
    });
    match run {
        Ok(h) => {
            let trace = h.world().core().trace().render(None);
            let metrics = h.metrics_report();
            let digest = fnv1a(&[&out, &trace, &metrics]);
            let end = h.now().as_micros();
            (out, metrics, digest, end)
        }
        Err(e) => {
            failures.push(format!("execution error: {e}"));
            let digest = fnv1a(&[&out]);
            (out, String::new(), digest, 0)
        }
    }
}

/// Fans `specs` out over `workers` threads. Work-stealing is a shared
/// atomic cursor — an idle worker takes the next unclaimed spec, so a
/// slow cell never stalls the rest of the grid behind a static
/// partition. Results land in spec-indexed slots: the returned vector
/// is in grid order no matter which worker finished when.
#[must_use]
pub fn run_specs(specs: &[RunSpec], workers: usize) -> Vec<RunResult> {
    let workers = workers.max(1).min(specs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = specs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(i) else { break };
                let result = run_spec(spec);
                *slots[i].lock().expect("slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot lock")
                .expect("worker filled slot")
        })
        .collect()
}

/// Nearest-rank percentile of a sorted slice (p in 0..=100).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Renders the deterministic sweep report. Every section is keyed and
/// sorted by spec id (cells by their `variant|plan` prefix); per-run
/// digests fold into one grid digest so two reports are equal iff every
/// cell agreed. No wall-clock data here — see [`render_timing`].
#[must_use]
pub fn render_report(grid: &Grid, results: &[RunResult]) -> String {
    let mut results: Vec<&RunResult> = results.iter().collect();
    results.sort_by(|a, b| a.id.cmp(&b.id));
    let mut out = String::new();
    out.push_str(&format!("sweep {}\n", grid.name));
    out.push_str(&format!(
        "grid variants={} plans={} seeds={} runs={}\n",
        grid.variants.len(),
        grid.plans.len(),
        grid.seeds.len(),
        results.len()
    ));
    // Cells: group by the `variant|plan` prefix of the id.
    let mut cells: Vec<(&str, Vec<&RunResult>)> = Vec::new();
    for r in &results {
        let key = r.id.rsplit_once('|').map_or(r.id.as_str(), |(k, _)| k);
        match cells.last_mut() {
            Some((k, rs)) if *k == key => rs.push(r),
            _ => cells.push((key, vec![r])),
        }
    }
    for (key, rs) in &cells {
        let ok = rs.iter().filter(|r| r.failures.is_empty()).count();
        let mut ends: Vec<u64> = rs.iter().map(|r| r.sim_end_us).collect();
        ends.sort_unstable();
        let (mttr_count, mttr_sum) = rs
            .iter()
            .filter_map(|r| r.mttr)
            .fold((0u64, 0u64), |(c, s), (rc, rs)| (c + rc, s + rs));
        out.push_str(&format!(
            "cell {key} runs={} ok={ok} fail={} sim_end_us median={} p99={}",
            rs.len(),
            rs.len() - ok,
            percentile(&ends, 50),
            percentile(&ends, 99),
        ));
        if let Some(mean) = mttr_sum.checked_div(mttr_count) {
            out.push_str(&format!(" mttr_us mean={mean} samples={mttr_count}"));
        }
        out.push('\n');
    }
    let mut grid_digest = fnv1a(&[]);
    for r in &results {
        out.push_str(&format!(
            "run {} digest {} sim_end_us {}",
            r.id,
            hex(r.digest),
            r.sim_end_us
        ));
        if let Some((c, s)) = r.mttr {
            out.push_str(&format!(" mttr_us mean={} samples={c}", s / c));
        }
        out.push_str(if r.failures.is_empty() {
            " ok\n"
        } else {
            " FAIL\n"
        });
        grid_digest = fnv1a_fold(grid_digest, r.id.as_bytes());
        grid_digest = fnv1a_fold(grid_digest, &r.digest.to_le_bytes());
    }
    for r in &results {
        for f in &r.failures {
            out.push_str(&format!("fail {} {f}\n", r.id));
        }
        if !r.failures.is_empty() {
            out.push_str(&format!("repro {} {}\n", r.id, r.repro));
        }
    }
    let ok = results.iter().filter(|r| r.failures.is_empty()).count();
    out.push_str(&format!(
        "summary runs={} ok={ok} fail={} digest {}\n",
        results.len(),
        results.len() - ok,
        hex(grid_digest)
    ));
    out
}

/// Observational wall-clock summary — runs/sec and the worker count.
/// Callers print this to stderr so determinism diffs never see it.
#[must_use]
pub fn render_timing(runs: usize, workers: usize, elapsed: std::time::Duration) -> String {
    let rate = runs as f64 / elapsed.as_secs_f64().max(1e-9);
    format!("ppm-sweep: {runs} runs on {workers} workers in {elapsed:.2?} ({rate:.1} runs/sec)")
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI_SCENARIO: &str = "\
seed 7
host a vax780
host b sun2
link a b
user 9 secret=0xAB recovery=a
at 0s spawn a 9 b job
run 200ms
";

    fn mini_grid() -> Grid {
        Grid {
            name: "mini".into(),
            seeds: vec![3, 4],
            variants: vec![
                Variant {
                    label: "scenario:mini.ppm".into(),
                    repro_path: Some("scenarios/mini.ppm".into()),
                    kind: VariantKind::Scenario {
                        text: MINI_SCENARIO.into(),
                    },
                },
                Variant {
                    label: "storm:2x2".into(),
                    repro_path: None,
                    kind: VariantKind::Storm {
                        users: 2,
                        hosts: 2,
                        procs: 80,
                    },
                },
            ],
            plans: vec![Plan::none()],
            topos: vec![],
            expects: vec![],
            expects_metric: vec![],
        }
    }

    #[test]
    fn grammar_round_trip() {
        let text = "\
# a comment
sweep demo
seeds 1..3
seeds 9
chain 4
storm 2x2 procs=100
faults none
expect complete
expect-metric lpm.
";
        let g = Grid::parse(text, Path::new(".")).expect("parses");
        assert_eq!(g.name, "demo");
        assert_eq!(g.seeds, vec![1, 2, 3, 9]);
        assert_eq!(g.variants.len(), 2);
        assert_eq!(g.variants[0].label, "chain:4");
        assert_eq!(g.variants[1].label, "storm:2x2");
        assert_eq!(g.plans.len(), 1);
        assert_eq!(g.expects, vec!["complete"]);
        assert_eq!(g.expects_metric, vec!["lpm."]);
    }

    #[test]
    fn grammar_rejects_bad_lines() {
        for bad in [
            "seeds 1..2\nchain 4",          // no header
            "sweep x\nchain 1",             // chain too small
            "sweep x\nstorm 2",             // bad storm shape
            "sweep x\nstorm 2x2 blobs=4",   // unknown storm option
            "sweep x\nseeds 9..1\nchain 2", // empty seed range
            "sweep x\nwat 3",               // unknown directive
            "sweep x",                      // no variants
        ] {
            assert!(Grid::parse(bad, Path::new(".")).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn expansion_order_is_grid_order_and_storms_skip_plans() {
        let mut g = mini_grid();
        g.plans = vec![
            Plan::none(),
            Plan {
                label: "fault:x.fault".into(),
                repro_path: Some("x.fault".into()),
                text: Some("seed 1\n".into()),
            },
        ];
        let specs = g.expand();
        let ids: Vec<&str> = specs.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "scenario:mini.ppm|fault:none|seed=3",
                "scenario:mini.ppm|fault:none|seed=4",
                "scenario:mini.ppm|fault:x.fault|seed=3",
                "scenario:mini.ppm|fault:x.fault|seed=4",
                "storm:2x2|fault:none|seed=3",
                "storm:2x2|fault:none|seed=4",
            ]
        );
    }

    #[test]
    fn topology_axis_expands_and_reproduces() {
        let text = "\
sweep net
seeds 5
scenario mini.ppm
storm 2x2
topology none
topology fat-tree
";
        // `scenario` reads from disk at parse time, so feed the grid a
        // real file in a scratch dir.
        let dir = std::env::temp_dir().join("ppm_sweep_topo_axis_test");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::write(dir.join("mini.ppm"), MINI_SCENARIO).expect("write scenario");
        let g = Grid::parse(text, &dir).expect("parses");
        assert_eq!(g.topos.len(), 2);
        let specs = g.expand();
        let ids: Vec<&str> = specs.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "scenario:mini.ppm|fault:none|net:flat|seed=5",
                "scenario:mini.ppm|fault:none|net:fat-tree|seed=5",
                "storm:2x2|fault:none|net:flat|seed=5",
            ]
        );
        assert!(
            specs[1].repro().contains(" --topology fat-tree "),
            "{}",
            specs[1].repro()
        );
        assert!(!specs[0].repro().contains("--topology"));
        // The routed cell runs and digests differently from the flat one.
        let results = run_specs(&specs, 2);
        assert!(results.iter().all(|r| r.failures.is_empty()), "{results:?}");
        assert_ne!(results[0].digest, results[1].digest);
    }

    #[test]
    fn undeclared_topology_axis_keeps_legacy_ids() {
        let g = mini_grid();
        let specs = g.expand();
        assert!(specs.iter().all(|s| !s.id.contains("net:")), "ids changed");
        assert!(specs.iter().all(|s| s.topo.arg.is_none()));
    }

    #[test]
    fn report_is_identical_across_worker_counts() {
        let g = mini_grid();
        let specs = g.expand();
        let r1 = render_report(&g, &run_specs(&specs, 1));
        let r4 = render_report(&g, &run_specs(&specs, 4));
        assert_eq!(r1, r4);
        assert!(r1.contains("summary runs=4 ok=4 fail=0"));
    }

    #[test]
    fn cell_digest_matches_standalone_run() {
        let g = mini_grid();
        let specs = g.expand();
        let pooled = run_specs(&specs, 3);
        for (spec, got) in specs.iter().zip(&pooled) {
            let solo = run_spec(spec);
            assert_eq!(solo.digest, got.digest, "{}", spec.id);
        }
    }

    #[test]
    fn failed_expectations_carry_repro() {
        let mut g = mini_grid();
        g.expects.push("no such output line".into());
        let specs = g.expand();
        let report = render_report(&g, &run_specs(&specs, 2));
        assert!(report.contains("fail scenario:mini.ppm|fault:none|seed=3"));
        assert!(report.contains(
            "repro storm:2x2|fault:none|seed=4 cargo run --release --bin ppm-sim -- \
                       --digest --users 2 --hosts 2 --seed 4 --procs 80"
        ));
    }

    #[test]
    fn seed_changes_the_digest() {
        let g = mini_grid();
        let specs = g.expand();
        let results = run_specs(&specs, 2);
        assert_ne!(results[0].digest, results[1].digest, "scenario seeds");
        assert_ne!(results[2].digest, results[3].digest, "storm seeds");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[10], 50), 10);
        assert_eq!(percentile(&[10, 20], 50), 10);
        assert_eq!(percentile(&[10, 20], 99), 20);
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 50), 3);
    }
}
