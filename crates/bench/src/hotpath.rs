//! Paired hot-path workloads: the optimised implementations vs
//! bench-local copies of the seed implementations they replaced.
//!
//! Three hot paths were overhauled in the indexed-event-queue PR:
//!
//! * **engine** — the discrete-event queue went from `BinaryHeap` +
//!   tombstone set to an index-tracked 4-ary heap with true O(log n)
//!   cancellation ([`seed_engine`] preserves the old implementation);
//! * **codec** — encoding went pooled and fan-outs frame batches into
//!   one buffer instead of one allocation per message ([`seed_codec`]
//!   drives the old per-message path, which is still available through
//!   the public `Enc::new` API);
//! * **genealogy** — `live_count` became a maintained counter and prune
//!   a cascade worklist ([`seed_genealogy`] preserves the scan/fixed-point
//!   versions).
//!
//! The in-network-aggregation PR added two more pairs:
//!
//! * **gather** — a chain snapshot-sweep went from one `Msg::BcastResp`
//!   per host, decoded and re-encoded at every relay hop (O(hosts²)
//!   record transits), to one spliced `Msg::BcastAgg` batch per edge
//!   ([`gather_seed`] models the old per-hop path);
//! * **wheel** — the RPC timer population moved from the indexed heap
//!   to a hierarchical timer wheel ([`wheel_retransmit`] drives the
//!   wheel with the exact workload [`engine_new`] runs on the heap).
//!
//! The observability PR added one more pair:
//!
//! * **obs** — the wheel retransmit workload with the metrics registry's
//!   hot-path cost layered on ([`obs_instrumented`]) against the plain
//!   wheel ([`wheel_retransmit`]); its ratio *is* the observability
//!   overhead, which the perf gate bounds absolutely.
//!
//! Each pair exposes a deterministic workload returning a checksum, so
//! the benches can assert the optimised code computes the same thing the
//! seed code did while timing both. `emit_bench` writes the measured
//! medians to `BENCH_PR4.json` alongside the medians recorded by earlier
//! PRs.

use bytes::Bytes;
use ppm_proto::codec::{decode_batch, encode_batch, frames, Enc, Wire};
use ppm_proto::msg::{BcastPart, Msg, Op, Reply};
use ppm_proto::types::{Gpid, ProcRecord, Route, Stamp, WireProcState};
use ppm_simnet::engine::{Engine, TimerWheel};
use ppm_simnet::obs::{Registry, SpanLog};
use ppm_simnet::time::SimDuration;

/// SplitMix64 step: the workloads' deterministic choice stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed discrete-event engine: `BinaryHeap` ordered by `(at, seq)`
/// with a tombstone set consulted on every peek/pop.
pub mod seed_engine {
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashSet};

    use ppm_simnet::time::{SimDuration, SimTime};

    /// Seed copy of `ppm_simnet::engine::EventId`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct EventId(u64);

    #[derive(Debug)]
    struct Scheduled<E> {
        at: SimTime,
        seq: u64,
        payload: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Scheduled<E> {}
    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            (other.at, other.seq).cmp(&(self.at, self.seq))
        }
    }

    /// Seed copy of `ppm_simnet::engine::Engine` (tombstone cancellation).
    #[derive(Debug)]
    pub struct Engine<E> {
        now: SimTime,
        seq: u64,
        heap: BinaryHeap<Scheduled<E>>,
        cancelled: HashSet<u64>,
        processed: u64,
    }

    impl<E> Engine<E> {
        /// Creates an empty engine at time zero.
        pub fn new() -> Self {
            Engine {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                cancelled: HashSet::new(),
                processed: 0,
            }
        }

        /// Schedules `payload` to fire `delay` after the current time.
        pub fn schedule(&mut self, delay: SimDuration, payload: E) -> EventId {
            let at = (self.now + delay).max(self.now);
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Scheduled { at, seq, payload });
            EventId(seq)
        }

        /// Cancels a previously scheduled event (tombstone insert).
        pub fn cancel(&mut self, id: EventId) -> bool {
            if id.0 >= self.seq {
                return false;
            }
            self.cancelled.insert(id.0)
        }

        /// Pops the next live event, reaping tombstones off the top.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            while let Some(top) = self.heap.peek() {
                if self.cancelled.remove(&top.seq) {
                    self.heap.pop();
                } else {
                    break;
                }
            }
            let s = self.heap.pop()?;
            self.now = s.at;
            self.processed += 1;
            Some((s.at, s.payload))
        }
    }

    impl<E> Default for Engine<E> {
        fn default() -> Self {
            Self::new()
        }
    }
}

/// The seed per-host genealogy: scanned `live_count`, fixed-point prune.
pub mod seed_genealogy {
    use std::collections::HashMap;

    use ppm_proto::types::{Gpid, WireProcState};

    /// Seed copy of `ppm_core::genealogy::Node`.
    #[derive(Debug, Clone)]
    pub struct Node {
        pub pid: u32,
        pub ppid: u32,
        pub logical_parent: Option<Gpid>,
        pub command: String,
        pub state: WireProcState,
        pub started_us: u64,
        pub cpu_us: u64,
        pub adopted: bool,
        pub children: Vec<u32>,
        pub dead_at: Option<u64>,
    }

    /// Seed copy of `ppm_core::genealogy::Genealogy` (pre-index version).
    #[derive(Debug, Clone, Default)]
    pub struct Genealogy {
        nodes: HashMap<u32, Node>,
    }

    impl Genealogy {
        /// Number of live tracked processes — full scan, as seeded.
        pub fn live_count(&self) -> usize {
            self.nodes
                .values()
                .filter(|n| n.state != WireProcState::Dead)
                .count()
        }

        /// Begins tracking a process.
        pub fn track(&mut self, pid: u32, ppid: u32, command: &str, started_us: u64) {
            let node = Node {
                pid,
                ppid,
                logical_parent: None,
                command: command.to_string(),
                state: WireProcState::Embryo,
                started_us,
                cpu_us: 0,
                adopted: true,
                children: Vec::new(),
                dead_at: None,
            };
            self.nodes.insert(pid, node);
            if ppid != pid {
                if let Some(parent) = self.nodes.get_mut(&ppid) {
                    if !parent.children.contains(&pid) {
                        parent.children.push(pid);
                    }
                }
            }
        }

        /// Marks a node dead at `now_us`.
        pub fn mark_dead_at(&mut self, pid: u32, cpu_us: u64, now_us: u64) {
            if let Some(n) = self.nodes.get_mut(&pid) {
                n.state = WireProcState::Dead;
                n.cpu_us = cpu_us;
                n.dead_at = Some(now_us);
            }
        }

        /// Fixed-point prune: re-scan every node (and rebuild every
        /// children list) each round, as seeded.
        pub fn prune_older_than(&mut self, now_us: u64, retention_us: u64) -> usize {
            let mut pruned = 0;
            loop {
                let mut victims: Vec<u32> = self
                    .nodes
                    .values()
                    .filter(|n| {
                        n.state == WireProcState::Dead
                            && n.dead_at
                                .is_some_and(|d| now_us.saturating_sub(d) >= retention_us)
                            && n.children.iter().all(|c| !self.nodes.contains_key(c))
                    })
                    .map(|n| n.pid)
                    .collect();
                if victims.is_empty() {
                    return pruned;
                }
                victims.sort_unstable();
                for pid in victims {
                    self.nodes.remove(&pid);
                    pruned += 1;
                }
                let existing: Vec<u32> = self.nodes.keys().copied().collect();
                for pid in existing {
                    let children: Vec<u32> = self.nodes[&pid]
                        .children
                        .iter()
                        .copied()
                        .filter(|c| self.nodes.contains_key(c))
                        .collect();
                    self.nodes.get_mut(&pid).expect("exists").children = children;
                }
            }
        }
    }
}

/// The seed per-message encode path: a fresh growable buffer per message,
/// one `Bytes` allocation each, no batch framing.
pub mod seed_codec {
    use bytes::Bytes;
    use ppm_proto::codec::{CodecError, Enc, Wire};

    /// Encodes one message the way the seed `Wire::to_bytes` did.
    pub fn to_bytes<T: Wire>(item: &T) -> Bytes {
        let mut enc = Enc::new();
        item.encode(&mut enc);
        enc.into_bytes()
    }

    /// Encodes a fan-out as the seed did: one separate buffer per message.
    pub fn encode_each<T: Wire>(items: &[T]) -> Vec<Bytes> {
        items.iter().map(to_bytes).collect()
    }

    /// Decodes a fan-out's worth of separate buffers.
    pub fn decode_each<T: Wire>(bufs: &[Bytes]) -> Result<Vec<T>, CodecError> {
        bufs.iter().map(|b| T::from_bytes(b)).collect()
    }
}

// ---- workloads -------------------------------------------------------------

/// Live window the engine workloads keep pending.
const ENGINE_WINDOW: usize = 1_024;

/// Drives the optimised engine with the retransmit-timer pattern the
/// indexed layout is tuned for: most scheduled events are cancelled
/// before they fire. Per step: three schedules, two cancels (once the
/// pending window is warm), one pop.
pub fn engine_new(steps: usize) -> u64 {
    let mut e: Engine<u64> = Engine::new();
    let mut rng = 7u64;
    let mut acc = 0u64;
    let mut window = Vec::with_capacity(ENGINE_WINDOW + 4);
    for i in 0..steps {
        for j in 0..3u64 {
            window.push(e.schedule(
                SimDuration::from_micros(mix(&mut rng) % 1_000),
                i as u64 ^ (j << 56),
            ));
        }
        if window.len() > ENGINE_WINDOW {
            for _ in 0..2 {
                let k = (mix(&mut rng) % window.len() as u64) as usize;
                let id = window.swap_remove(k);
                e.cancel(id);
            }
        }
        if let Some((t, v)) = e.pop() {
            acc = acc.wrapping_add(t.as_micros() ^ v);
        }
    }
    while let Some((t, v)) = e.pop() {
        acc = acc.wrapping_add(t.as_micros() ^ v);
    }
    acc
}

/// Identical workload against the seed engine copy.
pub fn engine_seed(steps: usize) -> u64 {
    let mut e: seed_engine::Engine<u64> = seed_engine::Engine::new();
    let mut rng = 7u64;
    let mut acc = 0u64;
    let mut window = Vec::with_capacity(ENGINE_WINDOW + 4);
    for i in 0..steps {
        for j in 0..3u64 {
            window.push(e.schedule(
                SimDuration::from_micros(mix(&mut rng) % 1_000),
                i as u64 ^ (j << 56),
            ));
        }
        if window.len() > ENGINE_WINDOW {
            for _ in 0..2 {
                let k = (mix(&mut rng) % window.len() as u64) as usize;
                let id = window.swap_remove(k);
                e.cancel(id);
            }
        }
        if let Some((t, v)) = e.pop() {
            acc = acc.wrapping_add(t.as_micros() ^ v);
        }
    }
    while let Some((t, v)) = e.pop() {
        acc = acc.wrapping_add(t.as_micros() ^ v);
    }
    acc
}

/// A representative broadcast fan-out: `n` stamped `Msg::Bcast` waves.
pub fn fanout_msgs(n: usize) -> Vec<Msg> {
    (0..n)
        .map(|i| Msg::Bcast {
            stamp: Stamp::signed("ucbvax", i as u64, 1_000 * i as u64, 0xBEEF),
            user: 100,
            op: Op::Snapshot,
            route: {
                let mut r = Route::from_origin("ucbvax");
                r.push("calder");
                r.push("ucbarpa");
                r
            },
        })
        .collect()
}

/// Optimised codec path: pooled batch encode + zero-copy frame decode.
pub fn codec_new(msgs: &[Msg]) -> u64 {
    let wire = encode_batch(msgs);
    let mut acc = wire.len() as u64;
    for frame in frames(&wire).expect("well-formed batch") {
        let msg = Msg::from_bytes(frame.expect("frame")).expect("decodes");
        if let Msg::Bcast { stamp, .. } = msg {
            acc = acc.wrapping_add(stamp.seq);
        }
    }
    acc
}

/// Seed codec path: one fresh buffer + `Bytes` per message, decoded from
/// separate buffers. The total payload matches [`codec_new`]'s frames.
pub fn codec_seed(msgs: &[Msg]) -> u64 {
    let bufs = seed_codec::encode_each(msgs);
    // The batch header is u32 count + u32 length per frame.
    let mut acc = (bufs.iter().map(bytes::Bytes::len).sum::<usize>() + 4 + 4 * bufs.len()) as u64;
    let decoded: Vec<Msg> = seed_codec::decode_each(&bufs).expect("decodes");
    for msg in decoded {
        if let Msg::Bcast { stamp, .. } = msg {
            acc = acc.wrapping_add(stamp.seq);
        }
    }
    acc
}

/// Number of status polls between genealogy mutations, mirroring the LPM
/// answering tool requests between kernel events.
const POLLS_PER_STEP: usize = 4;

/// The operations the genealogy workload exercises, implemented by both
/// the optimised store and the seed copy.
trait GenealogyOps {
    fn track(&mut self, pid: u32, ppid: u32, now: u64);
    fn kill(&mut self, pid: u32, now: u64);
    fn prune(&mut self, now: u64) -> usize;
    fn live(&self) -> usize;
}

impl GenealogyOps for ppm_core::genealogy::Genealogy {
    fn track(&mut self, pid: u32, ppid: u32, now: u64) {
        self.track(pid, ppid, None, "cc", now, true);
    }
    fn kill(&mut self, pid: u32, now: u64) {
        self.mark_dead_at(pid, 10, now);
    }
    fn prune(&mut self, now: u64) -> usize {
        self.prune_older_than(now, 5_000)
    }
    fn live(&self) -> usize {
        self.live_count()
    }
}

impl GenealogyOps for seed_genealogy::Genealogy {
    fn track(&mut self, pid: u32, ppid: u32, now: u64) {
        seed_genealogy::Genealogy::track(self, pid, ppid, "cc", now);
    }
    fn kill(&mut self, pid: u32, now: u64) {
        self.mark_dead_at(pid, 10, now);
    }
    fn prune(&mut self, now: u64) -> usize {
        self.prune_older_than(now, 5_000)
    }
    fn live(&self) -> usize {
        self.live_count()
    }
}

/// Drives the optimised genealogy: track/kill churn with status polls
/// and periodic pruning.
pub fn genealogy_new(procs: usize) -> u64 {
    genealogy_drive(&mut ppm_core::genealogy::Genealogy::new("ucbvax"), procs)
}

/// Identical workload against the seed genealogy copy.
pub fn genealogy_seed(procs: usize) -> u64 {
    genealogy_drive(&mut seed_genealogy::Genealogy::default(), procs)
}

/// The shared genealogy script: a binary process forest where every
/// non-root eventually dies, polled for liveness throughout.
fn genealogy_drive<G: GenealogyOps>(g: &mut G, procs: usize) -> u64 {
    let mut acc = 0u64;
    let mut now = 0u64;
    for i in 0..procs as u32 {
        let pid = 10 + i;
        let ppid = if i == 0 { 1 } else { 10 + (i - 1) / 2 };
        now += 100;
        g.track(pid, ppid, now);
        // Older processes die as the forest grows; parents outlive kids.
        if i >= 2 {
            let dying = 10 + i - 2;
            now += 100;
            g.kill(dying, now);
        }
        for _ in 0..POLLS_PER_STEP {
            acc = acc.wrapping_add(g.live() as u64);
        }
        if i % 64 == 63 {
            now += 10_000;
            acc = acc.wrapping_add(g.prune(now) as u64);
        }
    }
    now += 100_000;
    acc = acc.wrapping_add(g.prune(now) as u64);
    acc.wrapping_add(g.live() as u64)
}

/// The identical retransmit workload against the hierarchical timer
/// wheel that replaced the heap for the RPC timer population.
pub fn wheel_retransmit(steps: usize) -> u64 {
    let mut e: TimerWheel<u64> = TimerWheel::new();
    let mut rng = 7u64;
    let mut acc = 0u64;
    let mut window = Vec::with_capacity(ENGINE_WINDOW + 4);
    for i in 0..steps {
        for j in 0..3u64 {
            window.push(e.schedule(
                SimDuration::from_micros(mix(&mut rng) % 1_000),
                i as u64 ^ (j << 56),
            ));
        }
        if window.len() > ENGINE_WINDOW {
            for _ in 0..2 {
                let k = (mix(&mut rng) % window.len() as u64) as usize;
                let id = window.swap_remove(k);
                e.cancel(id);
            }
        }
        if let Some((t, v)) = e.pop() {
            acc = acc.wrapping_add(t.as_micros() ^ v);
        }
    }
    while let Some((t, v)) = e.pop() {
        acc = acc.wrapping_add(t.as_micros() ^ v);
    }
    acc
}

/// The retransmit workload with the observability layer's hot-path cost
/// layered on at the density the LPM pays it: a sealed `Arc<Registry>`
/// relaxed-atomic counter bump per step (one request entering the
/// pipeline), a histogram record on the rare retry-shaped schedules
/// (the LPM only records `rpc.backoff_us` when a retry is actually
/// scheduled), and a disabled-span-log check per pop. The plain side is
/// [`wheel_retransmit`]; the checksums must agree, and the instrumented /
/// plain time ratio is the observability overhead the perf gate bounds.
pub fn obs_instrumented(steps: usize) -> u64 {
    let mut reg = Registry::new();
    let (requests, backoff_us) = (reg.counter("rpc.requests"), reg.hist("rpc.backoff_us"));
    let registry = reg.into_shared();
    let spans = SpanLog::new();
    let mut e: TimerWheel<u64> = TimerWheel::new();
    let mut rng = 7u64;
    let mut acc = 0u64;
    let mut window = Vec::with_capacity(ENGINE_WINDOW + 4);
    for i in 0..steps {
        registry.inc(requests);
        for j in 0..3u64 {
            let delay = mix(&mut rng) % 1_000;
            if delay.is_multiple_of(61) {
                registry.record(backoff_us, delay);
            }
            window.push(e.schedule(SimDuration::from_micros(delay), i as u64 ^ (j << 56)));
        }
        if window.len() > ENGINE_WINDOW {
            for _ in 0..2 {
                let k = (mix(&mut rng) % window.len() as u64) as usize;
                let id = window.swap_remove(k);
                e.cancel(id);
            }
        }
        if let Some((t, v)) = e.pop() {
            // The guard every span call site pays while spans are off.
            if spans.is_enabled() {
                acc = acc.wrapping_add(1);
            }
            acc = acc.wrapping_add(t.as_micros() ^ v);
        }
    }
    while let Some((t, v)) = e.pop() {
        acc = acc.wrapping_add(t.as_micros() ^ v);
    }
    std::hint::black_box(registry.snapshot().len());
    acc
}

// ---- chain gather ----------------------------------------------------------

/// Records each host contributes to the chain-sweep workloads.
const PROCS_PER_HOST: usize = 4;

/// One host's slice of the sweep: a snapshot reply with
/// [`PROCS_PER_HOST`] records and the route back to the origin `h0`.
fn sweep_part(depth: usize) -> BcastPart {
    let host = format!("h{depth}");
    let procs = (0..PROCS_PER_HOST)
        .map(|p| ProcRecord {
            gpid: Gpid::new(host.clone(), 100 + p as u32),
            ppid: 1,
            logical_parent: None,
            command: format!("job-{depth}-{p}"),
            state: WireProcState::Running,
            started_us: 1_000 * depth as u64,
            cpu_us: 10 * p as u64,
            adopted: true,
        })
        .collect();
    let mut route = Route::from_origin("h0");
    for h in 1..=depth {
        route.push(format!("h{h}"));
    }
    BcastPart {
        host: host.clone(),
        reply: Reply::Snapshot { host, procs },
        route,
    }
}

fn sweep_stamp() -> Stamp {
    Stamp::signed("h0", 1, 1_000, 0xBEEF)
}

/// Folds the parts that reached the origin into a checksum. Summation is
/// order-independent, so the aggregated and per-hop paths compare equal
/// regardless of arrival order.
fn sweep_checksum(parts: &[BcastPart]) -> u64 {
    let mut acc = 0u64;
    for part in parts {
        acc = acc.wrapping_add(part.route.hops() as u64);
        if let Reply::Snapshot { procs, .. } = &part.reply {
            for r in procs {
                acc = acc
                    .wrapping_add(r.gpid.pid as u64)
                    .wrapping_add(r.started_us)
                    .wrapping_add(r.cpu_us)
                    .wrapping_add(r.command.len() as u64);
            }
        }
    }
    acc
}

/// Pre-PR chain gather: every host on an `hosts`-host chain answers the
/// sweep with its own `Msg::BcastResp`, and each relay on the way to the
/// origin decodes and re-encodes the full message — the per-record
/// transit work is quadratic in chain depth.
pub fn gather_seed(hosts: usize) -> u64 {
    let stamp = sweep_stamp();
    let mut arrived = Vec::with_capacity(hosts.saturating_sub(1));
    for depth in 1..hosts {
        let part = sweep_part(depth);
        let mut wire = Msg::BcastResp {
            stamp: stamp.clone(),
            host: part.host,
            reply: part.reply,
            route: part.route,
        }
        .to_bytes();
        // One decode + re-encode per intermediate relay hop.
        for _ in 1..depth {
            let relayed = Msg::from_bytes(&wire).expect("relay decodes");
            wire = relayed.to_bytes();
        }
        match Msg::from_bytes(&wire).expect("origin decodes") {
            Msg::BcastResp {
                host, reply, route, ..
            } => arrived.push(BcastPart { host, reply, route }),
            _ => unreachable!("workload only sends bcast responses"),
        }
    }
    sweep_checksum(&arrived)
}

/// Aggregated chain gather: the deepest host starts a `Msg::BcastAgg`
/// and every relay splices its own slice frame onto the batch
/// byte-for-byte — each record crosses the chain once, inside a single
/// aggregate the origin decodes in one pass.
pub fn gather_new(hosts: usize) -> u64 {
    let stamp = sweep_stamp();
    let mut wire = Msg::BcastAgg {
        stamp: stamp.clone(),
        parts: encode_batch(&[sweep_part(hosts - 1)]),
        missing: Vec::new(),
    }
    .to_bytes();
    for depth in (1..hosts - 1).rev() {
        let Ok(Msg::BcastAgg { parts, missing, .. }) = Msg::from_bytes(&wire) else {
            unreachable!("workload only sends aggregates");
        };
        let count = u32::from_be_bytes(parts[..4].try_into().expect("count header")) + 1;
        let mut enc = Enc::pooled();
        enc.u32(count);
        enc.frame(&sweep_part(depth));
        let own = enc.into_bytes();
        let mut buf = Vec::with_capacity(own.len() + parts.len() - 4);
        buf.extend_from_slice(&own);
        buf.extend_from_slice(&parts[4..]);
        wire = Msg::BcastAgg {
            stamp: stamp.clone(),
            parts: Bytes::from(buf),
            missing,
        }
        .to_bytes();
    }
    let Ok(Msg::BcastAgg { parts, .. }) = Msg::from_bytes(&wire) else {
        unreachable!("workload only sends aggregates");
    };
    let arrived: Vec<BcastPart> = decode_batch(&parts).expect("origin decodes the batch");
    sweep_checksum(&arrived)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_workloads_agree() {
        assert_eq!(engine_new(500), engine_seed(500));
    }

    #[test]
    fn wheel_matches_heap_on_the_retransmit_pattern() {
        assert_eq!(wheel_retransmit(500), engine_new(500));
    }

    #[test]
    fn instrumented_wheel_matches_plain_wheel() {
        assert_eq!(obs_instrumented(500), wheel_retransmit(500));
    }

    #[test]
    fn gather_workloads_agree() {
        assert_eq!(gather_new(9), gather_seed(9));
        assert_eq!(gather_new(32), gather_seed(32));
    }

    #[test]
    fn codec_workloads_agree() {
        let msgs = fanout_msgs(16);
        assert_eq!(codec_new(&msgs), codec_seed(&msgs));
    }

    #[test]
    fn genealogy_workloads_agree() {
        assert_eq!(genealogy_new(300), genealogy_seed(300));
    }
}
