//! The `multi_tenant_scale` pair: the sharded arena world of
//! `ppm_harness::tenant` against a bench-local per-record-allocation
//! baseline running the *identical* storm.
//!
//! The seed side is how the pre-PR code would have held this state: one
//! `HashMap` per (user, host) with a freshly allocated `String` command
//! and a per-node `Vec` of children for every tracked process, a
//! `BinaryHeap` event queue, and retention sweeps that rediscover
//! prunable nodes by scanning the whole map. Both sides consume the same
//! seeded [`Storm`] decision stream and fold the same event digest, so a
//! digest mismatch would mean the optimised world changed semantics, not
//! just speed — the module test asserts they agree.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use ppm_harness::tenant::{TenantWorld, UID_BASE};
use ppm_simos::workload::{Storm, StormSpec};

/// Retention before a dead node may be swept, µs (mirrors the tenant
/// world's policy; sweeps do not feed the digest, so the exact value
/// only shapes the work, not the stream).
const RETENTION_US: u64 = 200_000;

/// The storm spec the bench pair runs: per-lane rates as shipped, with
/// lifetimes stretched by the user count (capped) so the concurrent
/// population scales with `users` — the same sizing `ppm-sim --users`
/// applies.
pub fn bench_spec(users: u32, hosts: u16, seed: u64) -> StormSpec {
    let mut spec = StormSpec::new(users, hosts, seed);
    spec.mean_lifetime_us = 40_000 * u64::from(users.min(256));
    spec
}

/// Optimised side: build the sharded arena world, run the storm, return
/// the event digest.
pub fn tenant_new(spec: StormSpec, procs: u64) -> u64 {
    TenantWorld::new(spec, procs).run().digest
}

/// FNV-1a fold (the tenant world's digest function).
#[inline]
fn mix(d: u64, v: u64) -> u64 {
    (d ^ v).wrapping_mul(0x100_0000_01b3)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Fork,
    Exit { user: u32, host: u16, pid: u32 },
    Sweep { user: u32, host: u16 },
}

/// One tracked process, allocated the pre-PR way: its own command
/// buffer and its own children vector on the heap. `command`, `cpu_us`
/// and `logical` are stored but never read back — they exist so the
/// baseline pays the same storage the real record carries.
#[allow(dead_code)]
struct SeedNode {
    ppid: u32,
    command: String,
    dead: bool,
    dead_at: u64,
    cpu_us: u64,
    children: Vec<u32>,
    logical: Option<(u16, u32)>,
}

/// Baseline side: per-record heap allocation, map-per-shard storage,
/// dense-rescan sweeps. Returns the same digest as [`tenant_new`] for
/// the same inputs.
pub fn tenant_seed(spec: StormSpec, procs: u64) -> u64 {
    let users = spec.users as usize;
    let hosts = spec.hosts as usize;
    let mut storm = Storm::new(spec);
    let mut heap: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut arenas: Vec<Vec<HashMap<u32, SeedNode>>> = (0..users)
        .map(|_| (0..hosts).map(|_| HashMap::new()).collect())
        .collect();
    let mut lpms: Vec<Vec<Option<(u32, u64)>>> = vec![vec![None; hosts]; users];
    let mut last_pid: Vec<Vec<u32>> = vec![vec![0; hosts]; users];
    let mut sweep_pending: Vec<Vec<bool>> = vec![vec![false; hosts]; users];
    let mut next_pid: Vec<u32> = vec![2; hosts];
    let mut forks = 0u64;
    let mut digest = 0xcbf2_9ce4_8422_2325u64;

    let push = |heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>, seq: &mut u64, at, ev| {
        heap.push(Reverse((at, *seq, ev)));
        *seq += 1;
    };
    if procs > 0 {
        push(&mut heap, &mut seq, 0, Ev::Fork);
    }
    while let Some(Reverse((now, _, ev))) = heap.pop() {
        match ev {
            Ev::Fork => {
                let f = storm.next_fork();
                let u = f.user as usize;
                // Register the home (and, for a remote fork, target)
                // LPM slots, allocating their pids first as the world
                // does.
                for h in [f.home, f.host] {
                    if lpms[u][h as usize].is_none() {
                        let pid = next_pid[h as usize];
                        next_pid[h as usize] += 1;
                        lpms[u][h as usize] = Some((pid, 0));
                        digest = mix(
                            digest,
                            0x11 ^ (u64::from(UID_BASE + f.user) << 16) ^ u64::from(pid),
                        );
                    }
                    if f.host == f.home {
                        break;
                    }
                }
                let h = f.host as usize;
                let pid = next_pid[h];
                next_pid[h] += 1;
                let last = last_pid[u][h];
                let nest = last != 0
                    && f.lifetime_us.is_multiple_of(4)
                    && arenas[u][h].get(&last).is_some_and(|n| !n.dead);
                let ppid = if nest { last } else { 1 };
                let logical = (f.host != f.home)
                    .then(|| (f.home, lpms[u][f.home as usize].expect("home ensured").0));
                arenas[u][h].insert(
                    pid,
                    SeedNode {
                        ppid,
                        // The per-record allocation under test: a fresh
                        // buffer for every process ever tracked.
                        command: Storm::command(f.command).to_string(),
                        dead: false,
                        dead_at: 0,
                        cpu_us: 0,
                        children: Vec::new(),
                        logical,
                    },
                );
                if ppid != pid {
                    if let Some(parent) = arenas[u][h].get_mut(&ppid) {
                        parent.children.push(pid);
                    }
                }
                last_pid[u][h] = pid;
                if let Some(slot) = &mut lpms[u][h] {
                    slot.1 += 1;
                }
                forks += 1;
                digest = mix(
                    digest,
                    (u64::from(f.user) << 32) ^ (u64::from(f.host) << 16) ^ u64::from(pid),
                );
                digest = mix(digest, now ^ f.lifetime_us);
                push(
                    &mut heap,
                    &mut seq,
                    now + f.lifetime_us.max(1),
                    Ev::Exit {
                        user: f.user,
                        host: f.host,
                        pid,
                    },
                );
                if forks < procs {
                    push(&mut heap, &mut seq, now + f.next_us, Ev::Fork);
                }
            }
            Ev::Exit { user, host, pid } => {
                let u = user as usize;
                let h = host as usize;
                let n = arenas[u][h].get_mut(&pid).expect("exit of a tracked pid");
                n.dead = true;
                n.dead_at = now;
                n.cpu_us = u64::from(pid).wrapping_mul(2_654_435_761) % 40_000;
                digest = mix(
                    digest,
                    0x99 ^ (u64::from(user) << 32) ^ (u64::from(host) << 16) ^ u64::from(pid),
                );
                if !sweep_pending[u][h] {
                    sweep_pending[u][h] = true;
                    push(
                        &mut heap,
                        &mut seq,
                        now + RETENTION_US + 1,
                        Ev::Sweep { user, host },
                    );
                }
            }
            Ev::Sweep { user, host } => {
                let u = user as usize;
                let h = host as usize;
                sweep_pending[u][h] = false;
                // The pre-PR shape: rediscover prunable nodes with a
                // full scan, cascading up through parents.
                let arena = &mut arenas[u][h];
                let mut work: Vec<u32> = arena
                    .iter()
                    .filter(|(_, n)| {
                        n.dead
                            && now.saturating_sub(n.dead_at) >= RETENTION_US
                            && n.children.is_empty()
                    })
                    .map(|(&pid, _)| pid)
                    .collect();
                while let Some(pid) = work.pop() {
                    let Some(n) = arena.get(&pid) else { continue };
                    if !n.children.is_empty() {
                        continue;
                    }
                    let ppid = n.ppid;
                    arena.remove(&pid);
                    if let Some(parent) = arena.get_mut(&ppid) {
                        parent.children.retain(|&c| c != pid);
                        if parent.dead
                            && now.saturating_sub(parent.dead_at) >= RETENTION_US
                            && parent.children.is_empty()
                        {
                            work.push(ppid);
                        }
                    }
                }
            }
        }
    }
    digest
}

/// Peak resident set of this process so far, in KiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_world_and_alloc_baseline_agree() {
        for (users, hosts, procs) in [(16, 4, 3_000u64), (64, 16, 6_000)] {
            let spec = bench_spec(users, hosts, 7);
            assert_eq!(
                tenant_new(spec, procs),
                tenant_seed(spec, procs),
                "digest diverged at {users}x{hosts}"
            );
        }
    }

    #[test]
    fn digests_differ_across_seeds() {
        let a = tenant_seed(bench_spec(16, 4, 1), 2_000);
        let b = tenant_seed(bench_spec(16, 4, 2), 2_000);
        assert_ne!(a, b);
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb().unwrap() > 0);
        }
    }
}
