//! Table 2 — elapsed time of process creation and termination events (ms)
//! by topological distance.
//!
//! | action    | within host | one hop | two hops |
//! |-----------|-------------|---------|----------|
//! | create    | 77          | N/A     | N/A      |
//! | stop      | 30          | 199     | 210      |
//! | terminate | 30          | 199     | 210      |
//!
//! Method: a chain of hosts (`h0 — h1 — h2`); LPMs and sibling channels
//! are warmed first (the paper excludes LPM creation and connection setup
//! from these numbers), then the handler pools are allowed to drain so
//! each measured request pays the paper's cold dispatcher→handler costs.
//! Elapsed time is measured at the tool: request sent → reply received.

use ppm_core::client::ToolStep;
use ppm_core::config::PpmConfig;
use ppm_harness::harness::PpmHarness;
use ppm_proto::msg::{ControlAction, Op};
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::Uid;

const USER: Uid = Uid(100);

/// The three measured actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Process creation (defined within-host only in the paper's table).
    Create,
    /// SIGSTOP delivery.
    Stop,
    /// SIGKILL delivery.
    Terminate,
}

impl Action {
    /// Paper row label.
    pub fn label(self) -> &'static str {
        match self {
            Action::Create => "create",
            Action::Stop => "stop",
            Action::Terminate => "terminate",
        }
    }
}

/// One measurement.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Mean elapsed milliseconds.
    pub mean_ms: f64,
    /// Trials.
    pub trials: usize,
}

fn chain(n: usize, seed: u64) -> PpmHarness {
    let mut b = PpmHarness::builder().seed(seed);
    let cpus = [CpuClass::Vax780, CpuClass::Vax750, CpuClass::Vax750];
    for i in 0..n {
        b = b.host(format!("h{i}"), cpus[i % cpus.len()]);
    }
    for i in 1..n {
        b = b.link(format!("h{}", i - 1), format!("h{i}"));
    }
    b.user(USER, 0x1986, &["h0"], PpmConfig::default()).build()
}

/// Measures one action at the given topological distance, averaging over
/// `trials` cold requests.
pub fn measure(action: Action, hops: u32, trials: usize, seed: u64) -> Cell {
    let n_hosts = hops as usize + 1;
    let mut ppm = chain(n_hosts.max(1), seed);
    let dest = format!("h{hops}");

    // Warm the management fabric: LPMs on both ends plus the sibling
    // channel, and one target process to control.
    let target = ppm
        .spawn_remote("h0", USER, &dest, "victim-0", None, None)
        .expect("warm spawn");
    let mut victim = target;

    let mut total_ms = 0.0;
    let mut done = 0usize;
    for trial in 0..trials {
        // Let handler pools drain so the measurement is cold (the warm
        // path is the ablation bench's subject).
        ppm.run_for(SimDuration::from_secs(25));
        let op = match action {
            Action::Create => Op::Spawn {
                command: format!("created-{trial}"),
                logical_parent: None,
                lifetime_us: None,
                work_us: 0,
                cpu_bound: false,
            },
            Action::Stop => Op::Control {
                pid: victim.pid,
                action: ControlAction::Stop,
            },
            Action::Terminate => Op::Control {
                pid: victim.pid,
                action: ControlAction::Kill,
            },
        };
        let outcome = ppm
            .run_tool(
                "h0",
                USER,
                vec![ToolStep::new(dest.clone(), op)],
                SimDuration::from_secs(30),
            )
            .expect("tool runs");
        assert!(outcome.error.is_none(), "{:?}", outcome.error);
        let elapsed = outcome.elapsed(0).expect("one reply");
        total_ms += elapsed.as_millis_f64();
        done += 1;
        // Replace the victim for the next trial (terminate kills it; a
        // stopped victim still accepts further stops, but keep it fresh).
        victim = ppm
            .spawn_remote(
                "h0",
                USER,
                &dest,
                &format!("victim-{}", trial + 1),
                None,
                None,
            )
            .expect("respawn victim");
    }
    Cell {
        mean_ms: total_ms / done as f64,
        trials: done,
    }
}

/// Remote-creation variants for reconciling the paper's internal
/// discrepancy: its Table 2 marks remote creation N/A, but its text says
/// "Remote process creation, once a connection between sibling managers
/// exist, takes 177 milliseconds under lightly loaded conditions".
#[derive(Debug, Clone, Copy)]
pub struct RemoteCreateVariants {
    /// Both handler pools cold (fresh forks at both ends).
    pub cold_ms: f64,
    /// Remote pool warm (recently served another client), origin cold.
    pub semi_warm_ms: f64,
    /// Both pools warm (request repeated immediately).
    pub warm_ms: f64,
}

/// Measures one-hop remote creation under three handler-pool regimes.
pub fn measure_create_remote_variants(seed: u64) -> RemoteCreateVariants {
    // h0 — h1 — h2: h0 is the measuring origin; h2 exists to warm h1's
    // pool without touching h0's.
    let mut ppm = chain(3, seed);
    let create = |ppm: &mut PpmHarness, trial: usize| -> f64 {
        let op = Op::Spawn {
            command: format!("created-{trial}"),
            logical_parent: None,
            lifetime_us: None,
            work_us: 0,
            cpu_bound: false,
        };
        let outcome = ppm
            .run_tool(
                "h0",
                USER,
                vec![ToolStep::new("h1".to_string(), op)],
                SimDuration::from_secs(30),
            )
            .expect("tool runs");
        outcome.elapsed(0).expect("reply").as_millis_f64()
    };
    // Establish all channels (h0-h1 and h2-h1).
    ppm.spawn_remote("h0", USER, "h1", "warmup-a", None, None)
        .expect("warm");
    ppm.spawn_remote("h2", USER, "h1", "warmup-b", None, None)
        .expect("warm");

    // Cold: drain both pools.
    ppm.run_for(SimDuration::from_secs(25));
    let cold_ms = create(&mut ppm, 0);

    // Warm: repeat immediately (both pools warm).
    let warm_ms = create(&mut ppm, 1);

    // Semi-warm: drain everything, then have h2 exercise h1's pool just
    // before h0's (cold-origin) request.
    ppm.run_for(SimDuration::from_secs(25));
    ppm.spawn_remote("h2", USER, "h1", "warm-remote", None, None)
        .expect("warm remote");
    let semi_warm_ms = create(&mut ppm, 2);

    RemoteCreateVariants {
        cold_ms,
        semi_warm_ms,
        warm_ms,
    }
}

/// Paper values: (action, hops, ms); `None` marks N/A cells.
pub const PAPER: &[(Action, u32, Option<f64>)] = &[
    (Action::Create, 0, Some(77.0)),
    (Action::Create, 1, None),
    (Action::Create, 2, None),
    (Action::Stop, 0, Some(30.0)),
    (Action::Stop, 1, Some(199.0)),
    (Action::Stop, 2, Some(210.0)),
    (Action::Terminate, 0, Some(30.0)),
    (Action::Terminate, 1, Some(199.0)),
    (Action::Terminate, 2, Some(210.0)),
];

/// Runs the whole table (measuring the N/A creation cells too — the text
/// quotes 177 ms for remote creation — but reporting them separately).
pub fn run(trials: usize, seed: u64) -> Vec<(Action, u32, Option<f64>, Cell)> {
    PAPER
        .iter()
        .map(|&(action, hops, paper)| (action, hops, paper, measure(action, hops, trials, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_host_stop_is_about_30ms() {
        let c = measure(Action::Stop, 0, 3, 11);
        let rel = (c.mean_ms - 30.0).abs() / 30.0;
        assert!(rel < 0.30, "measured {:.1}ms vs paper 30ms", c.mean_ms);
    }

    #[test]
    fn remote_stop_is_vastly_more_expensive_than_local() {
        let local = measure(Action::Stop, 0, 2, 3);
        let remote = measure(Action::Stop, 1, 2, 3);
        assert!(
            remote.mean_ms > local.mean_ms * 4.0,
            "local {:.1}ms remote {:.1}ms",
            local.mean_ms,
            remote.mean_ms
        );
    }

    #[test]
    fn remote_create_variants_reconcile_the_177ms_quote() {
        let v = measure_create_remote_variants(17);
        assert!(v.warm_ms < v.semi_warm_ms);
        assert!(v.semi_warm_ms < v.cold_ms);
        // The paper's 177 ms sits between our warm and cold measurements,
        // closest to the remote-warm regime.
        assert!(
            (120.0..220.0).contains(&v.semi_warm_ms),
            "semi-warm {:.0}ms should bracket the paper's 177ms",
            v.semi_warm_ms
        );
    }

    #[test]
    fn second_hop_adds_roughly_wire_cost_only() {
        let one = measure(Action::Terminate, 1, 2, 5);
        let two = measure(Action::Terminate, 2, 2, 5);
        let delta = two.mean_ms - one.mean_ms;
        assert!(
            (3.0..30.0).contains(&delta),
            "one hop {:.1}ms, two hops {:.1}ms, delta {delta:.1}ms (paper: 11ms)",
            one.mean_ms,
            two.mean_ms
        );
    }
}
