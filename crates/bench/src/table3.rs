//! Table 3 / Figure 5 — elapsed time to gather snapshot information over
//! four PPM topologies, with six user processes per remote host.
//!
//! | topology | 1 | 2 | 3 | 4 |
//! |----------|-----|-----|-----|-----|
//! | time ms  | 205 | 225 | 461 | 507 |
//!
//! Figure 5's drawings are not in the text, so the topologies are
//! reconstructed from the timings (see DESIGN.md): (1) root plus one
//! remote; (2) root plus two remotes in a star — parallel gather, barely
//! slower; (3) root plus two remotes in a chain — two sequential wave
//! legs, about twice topology 1; (4) a chain of two plus a star leaf.

use ppm_core::client::ToolStep;
use ppm_core::config::PpmConfig;
use ppm_harness::harness::PpmHarness;
use ppm_proto::msg::Op;
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::Uid;

const USER: Uid = Uid(100);

/// One of the four snapshot topologies.
#[derive(Debug, Clone)]
pub struct SnapshotTopology {
    /// Paper column (1–4).
    pub id: u8,
    /// Host names; index 0 is the root (snapshot originator).
    pub hosts: Vec<&'static str>,
    /// Physical links (also used to decide which sibling edges to build).
    pub links: Vec<(&'static str, &'static str)>,
    /// Sibling edges: (creator host, target host) — the creator runs a
    /// tool that spawns processes on the target, establishing the PPM
    /// channel in that direction.
    pub siblings: Vec<(&'static str, &'static str)>,
}

/// The four reconstructed topologies of Figure 5.
pub fn topologies() -> Vec<SnapshotTopology> {
    vec![
        SnapshotTopology {
            id: 1,
            hosts: vec!["root", "a"],
            links: vec![("root", "a")],
            siblings: vec![("root", "a")],
        },
        SnapshotTopology {
            id: 2,
            hosts: vec!["root", "a", "b"],
            links: vec![("root", "a"), ("root", "b")],
            siblings: vec![("root", "a"), ("root", "b")],
        },
        SnapshotTopology {
            id: 3,
            hosts: vec!["root", "a", "b"],
            links: vec![("root", "a"), ("a", "b")],
            siblings: vec![("root", "a"), ("a", "b")],
        },
        SnapshotTopology {
            id: 4,
            hosts: vec!["root", "a", "b", "c"],
            links: vec![("root", "a"), ("a", "b"), ("root", "c")],
            siblings: vec![("root", "a"), ("a", "b"), ("root", "c")],
        },
    ]
}

/// Paper values per topology id.
pub const PAPER: &[(u8, f64)] = &[(1, 205.0), (2, 225.0), (3, 461.0), (4, 507.0)];

/// One measurement.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Mean elapsed ms of the distributed snapshot.
    pub mean_ms: f64,
    /// Trials.
    pub trials: usize,
    /// Processes reported per snapshot.
    pub procs: usize,
}

/// ASCII rendition of a topology (the Figure 5 panel).
pub fn render_topology(t: &SnapshotTopology) -> String {
    let mut out = format!("topology {}:\n", t.id);
    out.push_str("  hosts: ");
    out.push_str(&t.hosts.join(", "));
    out.push('\n');
    for (a, b) in &t.siblings {
        out.push_str(&format!("  {a} <===> {b}   (sibling LPM channel)\n"));
    }
    out
}

/// Builds the world for a topology: LPMs everywhere, six processes per
/// remote host, sibling edges as specified, handler pools drained.
pub fn build(t: &SnapshotTopology, seed: u64) -> PpmHarness {
    let mut b = PpmHarness::builder().seed(seed);
    let cpus = [
        CpuClass::Vax780,
        CpuClass::Vax750,
        CpuClass::Vax750,
        CpuClass::Vax750,
    ];
    for (i, h) in t.hosts.iter().enumerate() {
        b = b.host(*h, cpus[i % cpus.len()]);
    }
    for (x, y) in &t.links {
        b = b.link(*x, *y);
    }
    let mut ppm = b
        .user(USER, 0x1986, &["root"], PpmConfig::default())
        .build();

    // "we transmitted between the appropriate LPMs information about six
    // user processes in each of the remote machines"
    for (creator, target) in &t.siblings {
        for j in 0..6 {
            ppm.spawn_remote(
                creator,
                USER,
                target,
                &format!("proc-{target}-{j}"),
                None,
                None,
            )
            .expect("populate remote host");
        }
    }
    // Drain handler pools so the measured wave pays cold costs.
    ppm.run_for(SimDuration::from_secs(25));
    ppm
}

/// Measures one topology.
pub fn measure(t: &SnapshotTopology, trials: usize, seed: u64) -> Cell {
    let mut total = 0.0;
    let mut procs = 0usize;
    for k in 0..trials {
        let mut ppm = build(t, seed + k as u64);
        let outcome = ppm
            .run_tool(
                "root",
                USER,
                vec![ToolStep::new("*", Op::Snapshot)],
                SimDuration::from_secs(30),
            )
            .expect("snapshot tool");
        assert!(outcome.error.is_none(), "{:?}", outcome.error);
        total += outcome.elapsed(0).expect("reply").as_millis_f64();
        if let Some(ppm_proto::msg::Reply::Snapshot { procs: ps, .. }) = outcome.reply(0) {
            procs = ps.len();
        }
    }
    Cell {
        mean_ms: total / trials as f64,
        trials,
        procs,
    }
}

/// Runs the whole table.
pub fn run(trials: usize, seed: u64) -> Vec<(u8, f64, Cell)> {
    let topos = topologies();
    PAPER
        .iter()
        .map(|&(id, paper)| {
            let t = topos.iter().find(|t| t.id == id).expect("topology defined");
            (id, paper, measure(t, trials, seed))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_is_close_to_single_but_chain_is_much_slower() {
        let topos = topologies();
        let t1 = measure(&topos[0], 2, 21);
        let t2 = measure(&topos[1], 2, 21);
        let t3 = measure(&topos[2], 2, 21);
        // Parallel star: within ~25% of the single-remote time.
        assert!(
            t2.mean_ms < t1.mean_ms * 1.35,
            "t1={:.0} t2={:.0}",
            t1.mean_ms,
            t2.mean_ms
        );
        // Chain: much slower (paper ratio is 461/205 ≈ 2.25).
        assert!(
            t3.mean_ms > t1.mean_ms * 1.6,
            "t1={:.0} t3={:.0}",
            t1.mean_ms,
            t3.mean_ms
        );
    }

    #[test]
    fn paper_ordering_is_preserved() {
        // Table 3's shape: each topology is strictly slower than the
        // previous one (205 < 225 < 461 < 507). The gather-then-combine
        // origin makes this deterministic: topology 4's third contributor
        // costs a full extra merge slot at the tail even though its reply
        // arrives early and in parallel.
        let topos = topologies();
        let t: Vec<f64> = topos.iter().map(|t| measure(t, 2, 1986).mean_ms).collect();
        for w in t.windows(2) {
            assert!(w[0] < w[1], "ordering violated: {t:?}");
        }
    }

    #[test]
    fn snapshots_cover_all_remote_processes() {
        let topos = topologies();
        let c = measure(&topos[3], 1, 5);
        // Topology 4: 3 remote hosts × 6 procs = 18.
        assert_eq!(c.procs, 18, "all slices merged");
    }

    #[test]
    fn topology_rendering_mentions_every_edge() {
        let topos = topologies();
        let art = render_topology(&topos[3]);
        assert!(art.contains("root <===> a"));
        assert!(art.contains("a <===> b"));
        assert!(art.contains("root <===> c"));
    }
}
