//! Textual regenerations of the paper's Figures 1–5.
//!
//! The originals are diagrams; each function here reproduces the same
//! information from a *live run* of the system: the three-host genealogy
//! snapshot (Fig. 1), the four-step LPM creation message sequence
//! (Fig. 2), the full set of authenticated sibling channels (Fig. 3), the
//! LPM's communication endpoint types (Fig. 4), and the four snapshot
//! topologies (Fig. 5).

use std::fmt::Write as _;

use ppm_core::client::ToolStep;
use ppm_core::config::PpmConfig;
use ppm_harness::harness::PpmHarness;
use ppm_proto::msg::{Op, Reply};
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simnet::trace::TraceCategory;
use ppm_simos::ids::Uid;

use crate::table3;

const USER: Uid = Uid(100);

fn three_host_harness(seed: u64) -> PpmHarness {
    PpmHarness::builder()
        .seed(seed)
        .host("calder", CpuClass::Vax780)
        .host("ucbarpa", CpuClass::Vax750)
        .host("kim", CpuClass::Sun2)
        .link("calder", "ucbarpa")
        .link("ucbarpa", "kim")
        .link("calder", "kim")
        .user(USER, 0x1986, &["calder"], PpmConfig::default())
        .build()
}

/// Figure 1: "Possible State of a PPM Spanning Three Hosts" — a logical
/// tree with live, stopped and exited members across machines.
pub fn figure1(seed: u64) -> String {
    let mut ppm = three_host_harness(seed);
    let root = ppm
        .spawn_remote("calder", USER, "calder", "simulate", None, None)
        .expect("root");
    let shell = ppm
        .spawn_remote("calder", USER, "calder", "csh", Some(root.clone()), None)
        .expect("shell");
    let w1 = ppm
        .spawn_remote(
            "calder",
            USER,
            "ucbarpa",
            "cruncher",
            Some(shell.clone()),
            None,
        )
        .expect("w1");
    let _w2 = ppm
        .spawn_remote("calder", USER, "ucbarpa", "filter", Some(w1.clone()), None)
        .expect("w2");
    let w3 = ppm
        .spawn_remote(
            "calder",
            USER,
            "kim",
            "collector",
            Some(shell.clone()),
            None,
        )
        .expect("w3");
    // One stopped member, one exited parent retained in the display.
    ppm.control("calder", USER, &w3, ppm_proto::msg::ControlAction::Stop)
        .expect("stop");
    ppm.control("calder", USER, &shell, ppm_proto::msg::ControlAction::Kill)
        .expect("kill");
    ppm.run_for(SimDuration::from_secs(1));
    let procs = ppm.snapshot("calder", USER, "*").expect("snapshot");
    ppm_tools::snapshot::render(
        procs,
        "Figure 1: possible state of a PPM spanning three hosts",
    )
}

/// Figure 2: "LPM Creation Steps Ab Initio" — the numbered message
/// sequence on a cold host, taken from the live trace.
pub fn figure2(seed: u64) -> String {
    let mut ppm = PpmHarness::builder()
        .seed(seed)
        .host("calder", CpuClass::Vax780)
        .user(USER, 0x1986, &["calder"], PpmConfig::default())
        .build();
    let outcome = ppm
        .run_tool(
            "calder",
            USER,
            vec![ToolStep::new("calder", Op::Ping)],
            SimDuration::from_secs(30),
        )
        .expect("tool");
    assert!(outcome.created_lpm);

    let mut out = String::new();
    let _ = writeln!(out, "Figure 2: LPM creation steps ab initio");
    let _ = writeln!(out, "(trace of the first tool contact on a cold host)\n");
    let mut step = 0;
    for e in ppm.world().core().trace().entries() {
        let annotate = if e.text.contains("connecting to calder:1 ") && step == 0 {
            step = 1;
            Some("(1) creation request directed to the inet daemon")
        } else if e.text.contains("service pmd started") && step == 1 {
            step = 2;
            Some("(2) inetd passes the request to pmd, creating it")
        } else if e.text.contains("created LPM") && step == 2 {
            step = 3;
            Some("(3) pmd creates the LPM")
        } else if e.text.contains("accept address") && step == 3 {
            step = 4;
            Some("(4) the accept address is returned")
        } else {
            None
        };
        if matches!(e.category, TraceCategory::Daemon | TraceCategory::Lpm) || annotate.is_some() {
            let _ = writeln!(out, "{e}");
            if let Some(a) = annotate {
                let _ = writeln!(out, "        ^^^ {a}");
            }
        }
    }
    let _ = writeln!(out, "\nall four steps observed: {}", step == 4);
    out
}

/// Figure 3: "All LPMs of a PPM Maintain a Secure Reliable Communication
/// Channel" — the authenticated sibling channel matrix.
pub fn figure3(seed: u64) -> String {
    let mut ppm = three_host_harness(seed);
    // Establish all pairwise channels by creating work from each host.
    let hosts = ["calder", "ucbarpa", "kim"];
    for from in hosts {
        for to in hosts {
            if from != to {
                ppm.spawn_remote(from, USER, to, &format!("j-{from}-{to}"), None, None)
                    .expect("spawn");
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3: all LPMs of a PPM maintain secure reliable channels\n"
    );
    for host in hosts {
        match ppm.status(host, USER, host).expect("status") {
            Reply::Status { host, siblings, .. } => {
                let _ = writeln!(out, "  LPM@{host:<8} <===> {}", siblings.join(", "));
            }
            _ => unreachable!("status reply"),
        }
    }
    let _ = writeln!(
        out,
        "\n(channels authenticated once at creation via the user's network secret)"
    );
    out
}

/// Figure 4: "LPM Types Of Communication End Points" — the descriptor
/// table of a live LPM: kernel socket, accept socket, sibling and tool
/// connections.
pub fn figure4(seed: u64) -> String {
    let mut ppm = three_host_harness(seed);
    ppm.spawn_remote("calder", USER, "ucbarpa", "peer", None, None)
        .expect("spawn");
    let calder = ppm.host("calder").expect("host");
    let lpm_pid = ppm
        .world()
        .core()
        .kernel(calder)
        .processes()
        .find(|p| p.command.starts_with("lpm") && p.is_alive())
        .map(|p| p.pid)
        .expect("lpm alive");
    let outcome = ppm
        .run_tool(
            "calder",
            USER,
            vec![ToolStep::new("calder", Op::OpenFiles { pid: lpm_pid.0 })],
            SimDuration::from_secs(30),
        )
        .expect("tool");
    let mut out = String::new();
    if let Some(Reply::Files { entries }) = outcome.reply(0) {
        out.push_str(&ppm_tools::files_tool::render_fds(
            entries,
            "Figure 4: LPM types of communication end points (live descriptor table)",
        ));
    }
    let _ = writeln!(
        out,
        "kernel   = where the kernel deposits event messages\nlistener = the accept socket whose address pmd hands out\nsocket   = sibling LPM and tool stream connections"
    );
    out
}

/// Figure 5: the four snapshot topologies used by Table 3.
pub fn figure5() -> String {
    let mut out = String::from("Figure 5: snapshot configuration for four PPM topologies\n\n");
    for t in table3::topologies() {
        out.push_str(&table3::render_topology(&t));
        out.push('\n');
    }
    out.push_str("(reconstructed from the Table 3 timings; see DESIGN.md)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shows_all_states_across_hosts() {
        let art = figure1(3);
        assert!(art.contains("calder"));
        assert!(art.contains("ucbarpa"));
        assert!(art.contains("kim"));
        assert!(art.contains("[exited]"), "{art}");
        assert!(art.contains("[stopped]"), "{art}");
        assert!(art.contains("remote child"), "{art}");
    }

    #[test]
    fn figure2_observes_all_four_steps() {
        let art = figure2(3);
        assert!(art.contains("(1)"), "{art}");
        assert!(art.contains("(2)"));
        assert!(art.contains("(3)"));
        assert!(art.contains("(4)"));
        assert!(art.contains("all four steps observed: true"));
    }

    #[test]
    fn figure3_is_a_full_mesh() {
        let art = figure3(3);
        for line in ["LPM@calder", "LPM@ucbarpa", "LPM@kim"] {
            assert!(art.contains(line), "{art}");
        }
        // calder's sibling list names both peers.
        let calder_line = art
            .lines()
            .find(|l| l.contains("LPM@calder"))
            .expect("line");
        assert!(
            calder_line.contains("ucbarpa") && calder_line.contains("kim"),
            "{calder_line}"
        );
    }

    #[test]
    fn figure4_lists_the_three_endpoint_kinds() {
        let art = figure4(3);
        assert!(art.contains("kernel"), "{art}");
        assert!(art.contains("listener"));
        assert!(art.contains("socket"));
    }

    #[test]
    fn figure5_renders_four_topologies() {
        let art = figure5();
        for id in 1..=4 {
            assert!(art.contains(&format!("topology {id}:")));
        }
    }
}
