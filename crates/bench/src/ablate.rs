//! Ablations of the design choices the paper discusses.
//!
//! * **Handler reuse** (§6): "processes that have handled a request may be
//!   given further requests, rather than simply creating new processes".
//! * **Route learning** (§4): reply-carried routes "allow quick routing of
//!   messages affecting processes in topologically distant hosts".
//! * **pmd stable storage** (§5): the suggested-but-unimplemented
//!   hardening of the daemon registry.
//! * **Broadcast retention window** (§4): "the appropriate time window for
//!   retaining old broadcast requests is a configuration parameter".
//! * **Connection-graph density** (§4): on-demand low-connectivity graphs
//!   vs a full mesh — "multiple interconnections within one ethernet do
//!   not increase the probability of the services being operational".

use ppm_core::client::ToolStep;
use ppm_core::config::PpmConfig;
use ppm_core::pmd::PmdOptions;
use ppm_harness::harness::PpmHarness;
use ppm_proto::msg::{ControlAction, Op, Reply};
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::Uid;
use ppm_simos::signal::Signal;

const USER: Uid = Uid(100);

fn two_hosts(cfg: PpmConfig, seed: u64) -> PpmHarness {
    PpmHarness::builder()
        .seed(seed)
        .host("h0", CpuClass::Vax780)
        .host("h1", CpuClass::Vax750)
        .link("h0", "h1")
        .user(USER, 0x1986, &["h0"], cfg)
        .build()
}

/// Handler-pool ablation result: one-hop stop latency in three regimes.
#[derive(Debug, Clone, Copy)]
pub struct HandlerReuse {
    /// Cold pool: every hand-off forks.
    pub cold_ms: f64,
    /// Warm pool: the previous request's handlers are reused.
    pub warm_ms: f64,
    /// Reuse disabled: forks even when handlers idle.
    pub no_reuse_repeat_ms: f64,
}

/// Measures the handler-reuse effect on a one-hop stop.
pub fn handler_reuse(seed: u64) -> HandlerReuse {
    let stop = |ppm: &mut PpmHarness, pid: u32| -> f64 {
        let outcome = ppm
            .run_tool(
                "h0",
                USER,
                vec![ToolStep::new(
                    "h1",
                    Op::Control {
                        pid,
                        action: ControlAction::Stop,
                    },
                )],
                SimDuration::from_secs(30),
            )
            .expect("tool");
        outcome.elapsed(0).expect("reply").as_millis_f64()
    };

    // Reuse enabled: cold then immediately repeated (warm).
    let mut ppm = two_hosts(PpmConfig::default(), seed);
    let g = ppm
        .spawn_remote("h0", USER, "h1", "victim", None, None)
        .expect("spawn");
    ppm.run_for(SimDuration::from_secs(25)); // drain pools
    let cold_ms = stop(&mut ppm, g.pid);
    let warm_ms = stop(&mut ppm, g.pid);

    // Reuse disabled: repeat is as expensive as cold.
    let cfg = PpmConfig {
        handler_reuse: false,
        ..PpmConfig::default()
    };
    let mut ppm = two_hosts(cfg, seed);
    let g = ppm
        .spawn_remote("h0", USER, "h1", "victim", None, None)
        .expect("spawn");
    ppm.run_for(SimDuration::from_secs(25));
    let _first = stop(&mut ppm, g.pid);
    let no_reuse_repeat_ms = stop(&mut ppm, g.pid);

    HandlerReuse {
        cold_ms,
        warm_ms,
        no_reuse_repeat_ms,
    }
}

/// Route-learning ablation result.
#[derive(Debug, Clone, Copy)]
pub struct RouteLearning {
    /// Latency of controlling a distant process right after a broadcast
    /// taught (or did not teach) the route.
    pub control_ms: f64,
    /// Whether the origin had to build a brand-new sibling channel
    /// (inetd→pmd→LPM chain) to reach the distant host.
    pub new_channel_built: bool,
}

/// Chain `root — a — b` with sibling edges root↔a and a↔b only; after a
/// broadcast, control a process on `b` from `root`.
pub fn route_learning(enabled: bool, seed: u64) -> RouteLearning {
    let cfg = PpmConfig {
        route_learning: enabled,
        ..PpmConfig::default()
    };
    let mut ppm = PpmHarness::builder()
        .seed(seed)
        .host("root", CpuClass::Vax780)
        .host("a", CpuClass::Vax750)
        .host("b", CpuClass::Vax750)
        .link("root", "a")
        .link("a", "b")
        .user(USER, 0x1986, &["root"], cfg)
        .build();
    // Sibling edges: root→a and a→b (b is distant from root).
    ppm.spawn_remote("root", USER, "a", "j-a", None, None)
        .expect("spawn a");
    let gb = ppm
        .spawn_remote("a", USER, "b", "j-b", None, None)
        .expect("spawn b");
    // A broadcast from root covers b through a and (optionally) teaches
    // the route.
    let _ = ppm.snapshot("root", USER, "*").expect("snapshot");
    ppm.run_for(SimDuration::from_secs(25));

    let mark = ppm.world().core().trace().entries().len();
    let outcome = ppm
        .run_tool(
            "root",
            USER,
            vec![ToolStep::new(
                "b",
                Op::Control {
                    pid: gb.pid,
                    action: ControlAction::Stop,
                },
            )],
            SimDuration::from_secs(30),
        )
        .expect("tool");
    let control_ms = outcome.elapsed(0).expect("reply").as_millis_f64();
    let root_id = ppm.host("root").expect("host");
    let new_channel_built = ppm.world().core().trace().entries()[mark..]
        .iter()
        .any(|e| e.host == Some(root_id) && e.text.contains("connecting to b:1 "));
    RouteLearning {
        control_ms,
        new_channel_built,
    }
}

/// pmd stable-storage ablation result.
#[derive(Debug, Clone, Copy)]
pub struct PmdStable {
    /// Dead duplicate LPM processes left behind after a pmd-only crash.
    pub duplicate_lpms: usize,
    /// Whether the recreated pmd correctly reported the LPM as existing.
    pub found_existing: bool,
}

/// Crashes pmd (only), contacts the PPM again, and inspects the damage.
pub fn pmd_stable(stable_storage: bool, seed: u64) -> PmdStable {
    let mut ppm = PpmHarness::builder()
        .seed(seed)
        .host("h0", CpuClass::Vax780)
        .user(USER, 0x1986, &["h0"], PpmConfig::default())
        .pmd_options(PmdOptions {
            stable_storage,
            ..PmdOptions::default()
        })
        .build();
    ppm.spawn_remote("h0", USER, "h0", "job", None, None)
        .expect("spawn");
    let h0 = ppm.host("h0").expect("host");
    let pmd_pid = ppm
        .world()
        .core()
        .kernel(h0)
        .processes()
        .find(|p| p.command == "pmd" && p.is_alive())
        .map(|p| p.pid)
        .expect("pmd alive");
    ppm.world_mut()
        .post_signal(Uid::ROOT, (h0, pmd_pid), Signal::Kill)
        .expect("kill pmd");
    ppm.run_for(SimDuration::from_secs(1));

    let outcome = ppm
        .run_tool(
            "h0",
            USER,
            vec![ToolStep::new("h0", Op::Ping)],
            SimDuration::from_secs(30),
        )
        .expect("tool");
    ppm.run_for(SimDuration::from_secs(2));
    let duplicate_lpms = ppm
        .world()
        .core()
        .kernel(h0)
        .processes()
        .filter(|p| p.command.starts_with("lpm") && !p.is_alive())
        .count();
    PmdStable {
        duplicate_lpms,
        found_existing: !outcome.created_lpm,
    }
}

/// Broadcast retention-window ablation result.
#[derive(Debug, Clone, Copy)]
pub struct BcastWindow {
    /// Duplicates suppressed (cheap: one `BcastDone`). While a wave is in
    /// progress its `bcasts` entry suppresses copies regardless of the
    /// window — the echo wave cannot complete at a host before that host's
    /// duplicates have arrived — so this count is window-independent.
    pub suppressed: usize,
    /// Full wave processings (gather + respond + forward); ideally one per
    /// remote host.
    pub processings: usize,
    /// Hosts other than the originator (the ideal processing count).
    pub remote_hosts: usize,
    /// Stamps forgotten after the wave settled. This is what the window
    /// actually controls: a healthy window keeps completed-wave stamps
    /// remembered (replays stay suppressed), a too-short window purges
    /// them, reopening the door to reprocessing stale requests.
    pub stamps_purged: usize,
}

/// A four-host full sibling mesh: every broadcast reaches each non-origin
/// host several times. In-flight duplicates are suppressed by the active
/// wave state; the retention window determines whether the stamps are still
/// recognized after the wave completes.
pub fn bcast_window(window: SimDuration, seed: u64) -> BcastWindow {
    let cfg = PpmConfig {
        bcast_window: window,
        housekeeping_interval: SimDuration::from_millis(20),
        ..PpmConfig::default()
    };
    let hosts = ["r", "a", "b", "c"];
    let mut b = PpmHarness::builder().seed(seed);
    for (i, h) in hosts.iter().enumerate() {
        b = b.host(
            *h,
            if i == 0 {
                CpuClass::Vax780
            } else {
                CpuClass::Vax750
            },
        );
    }
    for i in 0..hosts.len() {
        for j in (i + 1)..hosts.len() {
            b = b.link(hosts[i], hosts[j]);
        }
    }
    let mut ppm = b.user(USER, 0x1986, &["r"], cfg).build();
    // Full sibling mesh with one process per pair.
    for from in hosts {
        for to in hosts {
            if from != to {
                ppm.spawn_remote(from, USER, to, &format!("p{from}{to}"), None, None)
                    .expect("spawn");
            }
        }
    }
    ppm.run_for(SimDuration::from_secs(25));

    let mark = ppm.world().core().trace().entries().len();
    let outcome = ppm
        .run_tool(
            "r",
            USER,
            vec![ToolStep::new("*", Op::Snapshot)],
            SimDuration::from_secs(30),
        )
        .expect("tool");
    assert!(outcome.error.is_none());
    // Settle long enough for a too-short window to purge the wave's stamps
    // but well inside the healthy (60 s) retention.
    ppm.run_for(SimDuration::from_secs(5));
    let entries = &ppm.world().core().trace().entries()[mark..];
    let suppressed = entries
        .iter()
        .filter(|e| e.text.starts_with("suppress duplicate"))
        .count();
    let processings = entries
        .iter()
        .filter(|e| e.text.starts_with("receive "))
        .count();
    let stamps_purged = entries
        .iter()
        .filter_map(|e| e.text.strip_prefix("stamp window purge "))
        .filter_map(|n| n.parse::<usize>().ok())
        .sum();
    BcastWindow {
        suppressed,
        processings,
        remote_hosts: hosts.len() - 1,
        stamps_purged,
    }
}

/// Connection-density ablation result.
#[derive(Debug, Clone, Copy)]
pub struct Density {
    /// Sibling channels in the whole PPM.
    pub channels: usize,
    /// Elapsed ms of a network-wide snapshot.
    pub snapshot_ms: f64,
}

/// Builds `n` hosts on one LAN with either a star or a full-mesh sibling
/// graph and measures a global snapshot.
pub fn density(n: usize, mesh: bool, seed: u64) -> Density {
    let mut b = PpmHarness::builder().seed(seed);
    for i in 0..n {
        b = b.host(
            format!("h{i}"),
            if i == 0 {
                CpuClass::Vax780
            } else {
                CpuClass::Vax750
            },
        );
    }
    // One ethernet: everyone links to everyone (the medium is shared).
    for i in 0..n {
        for j in (i + 1)..n {
            b = b.link(format!("h{i}"), format!("h{j}"));
        }
    }
    let mut ppm = b.user(USER, 0x1986, &["h0"], PpmConfig::default()).build();

    // Star: h0 spawns on everyone. Mesh: every pair connects.
    for i in 1..n {
        ppm.spawn_remote("h0", USER, &format!("h{i}"), &format!("p{i}"), None, None)
            .expect("spawn");
    }
    if mesh {
        for i in 1..n {
            for j in 1..n {
                if i != j {
                    ppm.spawn_remote(
                        &format!("h{i}"),
                        USER,
                        &format!("h{j}"),
                        &format!("m{i}{j}"),
                        None,
                        None,
                    )
                    .expect("mesh spawn");
                }
            }
        }
    }
    ppm.run_for(SimDuration::from_secs(25));

    // Count sibling channels from each LPM's status.
    let mut channels = 0usize;
    for i in 0..n {
        if let Ok(Reply::Status { siblings, .. }) = ppm.status("h0", USER, &format!("h{i}")) {
            channels += siblings.len();
        }
    }
    channels /= 2; // each channel counted from both ends

    ppm.run_for(SimDuration::from_secs(25));
    let outcome = ppm
        .run_tool(
            "h0",
            USER,
            vec![ToolStep::new("*", Op::Snapshot)],
            SimDuration::from_secs(30),
        )
        .expect("tool");
    let snapshot_ms = outcome.elapsed(0).expect("reply").as_millis_f64();
    Density {
        channels,
        snapshot_ms,
    }
}

/// Recovery-policy comparison result.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryComparison {
    /// Simulated seconds from the CCS host's crash until a surviving LPM
    /// reports a new, different CCS.
    pub reelection_secs: f64,
}

/// Measures CCS re-election convergence after the coordinator host
/// crashes, under either recovery policy.
pub fn recovery_comparison(name_server: bool, seed: u64) -> RecoveryComparison {
    use ppm_core::config::RecoveryPolicy;
    let mut cfg = PpmConfig::fast_recovery();
    if name_server {
        cfg.recovery_policy = RecoveryPolicy::NameServer {
            host: "ns".to_string(),
        };
    }
    let recovery: &[&str] = if name_server { &[] } else { &["alpha", "beta"] };
    let mut ppm = PpmHarness::builder()
        .seed(seed)
        .host("ns", CpuClass::Vax780)
        .host("alpha", CpuClass::Vax750)
        .host("beta", CpuClass::Vax750)
        .link("ns", "alpha")
        .link("ns", "beta")
        .link("alpha", "beta")
        .user(USER, 0x1986, recovery, cfg)
        .build();
    // LPMs on alpha (CCS under both policies: first claimant / top of
    // list) and beta.
    ppm.spawn_remote("alpha", USER, "alpha", "j1", None, None)
        .expect("spawn");
    ppm.spawn_remote("alpha", USER, "beta", "j2", None, None)
        .expect("spawn");
    ppm.run_for(SimDuration::from_secs(3));

    let alpha = ppm.host("alpha").expect("host");
    let t0 = ppm.now();
    ppm.world_mut()
        .schedule_crash(alpha, SimDuration::from_millis(1));

    // Poll beta's view until the CCS changes.
    let deadline = t0 + SimDuration::from_secs(120);
    loop {
        ppm.run_for(SimDuration::from_secs(1));
        if let Ok(Reply::Status { ccs, .. }) = ppm.status("beta", USER, "beta") {
            if ccs != "alpha" && !ccs.is_empty() {
                break;
            }
        }
        assert!(ppm.now() < deadline, "re-election never converged");
    }
    RecoveryComparison {
        reelection_secs: ppm.now().saturating_since(t0).as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_makes_repeats_cheap() {
        let r = handler_reuse(5);
        assert!(
            r.warm_ms < r.cold_ms * 0.5,
            "warm {:.1}ms vs cold {:.1}ms",
            r.warm_ms,
            r.cold_ms
        );
        assert!(
            r.no_reuse_repeat_ms > r.warm_ms * 2.0,
            "without reuse, repeats stay expensive: {:.1}ms vs {:.1}ms",
            r.no_reuse_repeat_ms,
            r.warm_ms
        );
    }

    #[test]
    fn route_learning_avoids_new_channels() {
        let with = route_learning(true, 9);
        let without = route_learning(false, 9);
        assert!(!with.new_channel_built, "learned route relays via a");
        assert!(
            without.new_channel_built,
            "without learning, a direct channel is built"
        );
    }

    #[test]
    fn stable_storage_prevents_duplicates() {
        let with = pmd_stable(true, 4);
        assert_eq!(with.duplicate_lpms, 0);
        assert!(with.found_existing);
        let without = pmd_stable(false, 4);
        assert!(without.duplicate_lpms >= 1);
        assert!(!without.found_existing);
    }

    #[test]
    fn healthy_window_retains_stamps() {
        let healthy = bcast_window(SimDuration::from_secs(60), 8);
        assert!(
            healthy.suppressed >= 1,
            "mesh produces duplicates: {healthy:?}"
        );
        assert_eq!(
            healthy.processings, healthy.remote_hosts,
            "each host processes the wave exactly once: {healthy:?}"
        );
        assert_eq!(
            healthy.stamps_purged, 0,
            "a healthy window outlives the run: {healthy:?}"
        );
        let short = bcast_window(SimDuration::from_millis(60), 8);
        assert_eq!(
            short.processings, short.remote_hosts,
            "in-flight duplicates are suppressed by the active wave: {short:?}"
        );
        assert!(
            short.stamps_purged > 0,
            "a too-short window forgets completed-wave stamps: {short:?}"
        );
    }

    #[test]
    fn both_recovery_policies_reelect() {
        let file = recovery_comparison(false, 6);
        let ns = recovery_comparison(true, 6);
        assert!(file.reelection_secs < 60.0, "{file:?}");
        assert!(ns.reelection_secs < 60.0, "{ns:?}");
    }

    #[test]
    fn mesh_has_more_channels_than_star() {
        let star = density(4, false, 2);
        let mesh = density(4, true, 2);
        assert!(mesh.channels > star.channels, "star {star:?} mesh {mesh:?}");
        assert_eq!(star.channels, 3);
    }
}
