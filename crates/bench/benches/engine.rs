//! Criterion micro-benchmarks of the substrate itself: event-engine
//! throughput, protocol codec speed, and end-to-end simulated operations
//! per wall-clock second. These measure the *simulator*, not the paper's
//! system — they answer "how fast can this reproduction run experiments".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ppm_core::config::PpmConfig;
use ppm_harness::harness::PpmHarness;
use ppm_proto::codec::Wire;
use ppm_proto::msg::{ControlAction, Msg, Op};
use ppm_proto::types::Route;
use ppm_simnet::engine::Engine;
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::Uid;

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new();
            for i in 0..10_000u64 {
                e.schedule(SimDuration::from_micros(i % 997), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = e.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let msg = Msg::Req {
        id: 42,
        user: 100,
        dest: "ucbarpa".into(),
        op: Op::Control {
            pid: 7,
            action: ControlAction::Stop,
        },
        route: Route::from_origin("calder"),
        hops_left: 8,
        deadline_us: 45_000_000,
        attempt: 0,
        boot: 0,
    };
    let bytes = msg.to_bytes();
    c.bench_function("codec_encode_control_req", |b| b.iter(|| msg.to_bytes()));
    c.bench_function("codec_decode_control_req", |b| {
        b.iter(|| Msg::from_bytes(&bytes).expect("decodes"))
    });
}

fn build_world() -> PpmHarness {
    PpmHarness::builder()
        .host("a", CpuClass::Vax780)
        .host("b", CpuClass::Vax750)
        .link("a", "b")
        .user(Uid(100), 0x1986, &["a"], PpmConfig::default())
        .build()
}

fn bench_simulation(c: &mut Criterion) {
    c.bench_function("sim_remote_spawn_e2e", |b| {
        b.iter_batched(
            build_world,
            |mut ppm| {
                ppm.spawn_remote("a", Uid(100), "b", "job", None, None)
                    .expect("spawn");
                ppm
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("sim_idle_minute", |b| {
        b.iter_batched(
            build_world,
            |mut ppm| {
                ppm.run_for(SimDuration::from_secs(60));
                ppm
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_engine, bench_codec, bench_simulation);
criterion_main!(benches);
