//! Hot-path microbenchmarks: optimised implementations vs bench-local
//! seed copies (see `ppm_bench::hotpath`).
//!
//! Run with `cargo bench -p ppm-bench --bench hotpath`; pass `--test`
//! for a single-iteration smoke run (CI does this).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ppm_bench::hotpath;

const ENGINE_STEPS: usize = 4_000;
const FANOUT: usize = 32;
const PROCS: usize = 1_000;

fn engine(c: &mut Criterion) {
    c.bench_function("engine_hotpath", |b| {
        b.iter(|| hotpath::engine_new(black_box(ENGINE_STEPS)))
    });
    c.bench_function("seed_engine_hotpath", |b| {
        b.iter(|| hotpath::engine_seed(black_box(ENGINE_STEPS)))
    });
}

fn codec(c: &mut Criterion) {
    let msgs = hotpath::fanout_msgs(FANOUT);
    c.bench_function("codec_roundtrip", |b| {
        b.iter(|| hotpath::codec_new(black_box(&msgs)))
    });
    c.bench_function("seed_codec_roundtrip", |b| {
        b.iter(|| hotpath::codec_seed(black_box(&msgs)))
    });
}

fn genealogy(c: &mut Criterion) {
    c.bench_function("genealogy_scale", |b| {
        b.iter(|| hotpath::genealogy_new(black_box(PROCS)))
    });
    c.bench_function("seed_genealogy_scale", |b| {
        b.iter(|| hotpath::genealogy_seed(black_box(PROCS)))
    });
}

criterion_group!(benches, engine, codec, genealogy);
criterion_main!(benches);
