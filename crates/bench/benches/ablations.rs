//! Ablation studies of the design choices DESIGN.md calls out.
//! Run with `cargo bench -p ppm-bench --bench ablations`.

use ppm_bench::ablate;
use ppm_simnet::time::SimDuration;

fn main() {
    let seed = 1986;

    println!("== Ablation 1: handler-process reuse (paper §6) ==");
    let r = ablate::handler_reuse(seed);
    println!(
        "  one-hop stop, cold pool (forks):      {:>7.1} ms",
        r.cold_ms
    );
    println!(
        "  one-hop stop, warm pool (reuse):      {:>7.1} ms",
        r.warm_ms
    );
    println!(
        "  one-hop stop, reuse disabled, repeat: {:>7.1} ms",
        r.no_reuse_repeat_ms
    );
    println!(
        "  reuse speedup on repeated requests: {:.1}x",
        r.no_reuse_repeat_ms / r.warm_ms
    );

    println!();
    println!("== Ablation 2: route learning from broadcast replies (paper §4) ==");
    for enabled in [true, false] {
        let rl = ablate::route_learning(enabled, seed);
        println!(
            "  learning {}: control of 2-distant process {:>7.1} ms, new channel built: {}",
            if enabled { "on " } else { "off" },
            rl.control_ms,
            rl.new_channel_built
        );
    }

    println!();
    println!("== Ablation 3: pmd registry in stable storage (paper §5) ==");
    for stable in [false, true] {
        let p = ablate::pmd_stable(stable, seed);
        println!(
            "  stable storage {}: duplicate LPMs after pmd crash = {}, existing LPM found = {}",
            if stable { "on " } else { "off" },
            p.duplicate_lpms,
            p.found_existing
        );
    }

    println!();
    println!("== Ablation 4: broadcast stamp retention window (paper §4) ==");
    for (label, window) in [
        ("60 s (default)  ", SimDuration::from_secs(60)),
        ("60 ms (too short)", SimDuration::from_millis(60)),
    ] {
        let w = ablate::bcast_window(window, 8);
        println!(
            "  window {label}: wave processings = {} (ideal {}), duplicates suppressed = {}, stamps forgotten after settle = {}",
            w.processings, w.remote_hosts, w.suppressed, w.stamps_purged
        );
    }

    println!();
    println!("== Ablation 5: recovery-file walk vs name-server CCS (paper §5) ==");
    for ns in [false, true] {
        let r = ablate::recovery_comparison(ns, seed);
        println!(
            "  {}: re-election after CCS crash in {:>5.1} simulated s",
            if ns {
                "name server  "
            } else {
                ".recovery file"
            },
            r.reelection_secs
        );
    }

    println!();
    println!("== Ablation 6: on-demand topology vs full mesh (paper §4) ==");
    for (label, mesh) in [("star (on demand)", false), ("full mesh", true)] {
        let d = ablate::density(5, mesh, seed);
        println!(
            "  {label:<18}: sibling channels = {:>2}, global snapshot = {:>6.1} ms",
            d.channels, d.snapshot_ms
        );
    }
}
