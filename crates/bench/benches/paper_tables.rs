//! Regenerates Tables 1–3 of the paper, printing measured vs published
//! values. Run with `cargo bench -p ppm-bench --bench paper_tables`.
//!
//! All times are *simulated* milliseconds from the calibrated substrate;
//! the reproduction criterion is shape (orderings, ratios, crossovers).

use ppm_bench::{table1, table2, table3, vs};

fn main() {
    let seed = 1986;

    println!("=====================================================================");
    println!("Table 1: estimated 112-byte kernel-LPM message delivery time (ms)");
    println!("         load estimator: la (time-averaged cpu run queue length)");
    println!("=====================================================================");
    println!(
        "{:<12} {:<14} {:>9} {:>34}",
        "host type", "load bucket", "la", "delivery ms (vs paper)"
    );
    for (cpu, label, paper, cell) in table1::run(seed) {
        println!(
            "{:<12} {:<14} {:>9.2} {:>34}",
            cpu.to_string(),
            label,
            cell.load_avg,
            vs(paper, cell.mean_ms)
        );
    }

    println!();
    println!("=====================================================================");
    println!("Table 2: elapsed time of process creation and termination events (ms)");
    println!("=====================================================================");
    println!(
        "{:<12} {:<12} {:>34}",
        "action", "distance", "elapsed ms (vs paper)"
    );
    for (action, hops, paper, cell) in table2::run(5, seed) {
        let dist = match hops {
            0 => "within host".to_string(),
            1 => "one hop".to_string(),
            n => format!("{n} hops"),
        };
        println!(
            "{:<12} {:<12} {:>34}",
            action.label(),
            dist,
            vs(paper, cell.mean_ms)
        );
    }
    println!("(the paper's text also quotes 177 ms for remote creation once a");
    println!(" sibling connection exists; its own Table 2 marks those cells N/A)");
    let v = table2::measure_create_remote_variants(seed);
    println!("reconciliation of the 177 ms quote (one-hop create, handler pools):");
    println!("  both pools cold:      {:>7.1} ms", v.cold_ms);
    println!(
        "  remote pool warm:     {:>7.1} ms   <- closest to the quoted 177 ms",
        v.semi_warm_ms
    );
    println!("  both pools warm:      {:>7.1} ms", v.warm_ms);

    println!();
    println!("=====================================================================");
    println!("Table 3: elapsed time to transmit snapshot information (ms)");
    println!("         six user processes per remote host; four PPM topologies");
    println!("=====================================================================");
    println!(
        "{:<12} {:>34}  {:>6}",
        "topology", "elapsed ms (vs paper)", "procs"
    );
    for (id, paper, cell) in table3::run(5, seed) {
        println!(
            "{:<12} {:>34}  {:>6}",
            id,
            vs(Some(paper), cell.mean_ms),
            cell.procs
        );
    }
}
