//! Regenerates Figures 1–5 of the paper from live runs.
//! Run with `cargo bench -p ppm-bench --bench paper_figures`.

use ppm_bench::figures;

fn main() {
    let seed = 1986;
    for (i, art) in [
        figures::figure1(seed),
        figures::figure2(seed),
        figures::figure3(seed),
        figures::figure4(seed),
        figures::figure5(),
    ]
    .iter()
    .enumerate()
    {
        println!("=====================================================================");
        let _ = i;
        println!("{art}");
    }
}
