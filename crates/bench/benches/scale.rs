//! The tens-of-nodes stress test the paper deferred ("we have yet to
//! stress test our implementation").
//! Run with `cargo bench -p ppm-bench --bench scale`.

use ppm_bench::scale::{sweep, Shape};

fn main() {
    let seed = 1986;
    println!("Scale sweep: global snapshot and far-host control vs PPM size");
    println!("(one managed process per non-origin host; cold handler pools)\n");
    for shape in [Shape::Star, Shape::Chain] {
        println!("sibling graph: {}", shape.label());
        println!(
            "{:>6} {:>14} {:>8} {:>18}",
            "hosts", "snapshot ms", "procs", "far control ms"
        );
        let sizes: &[usize] = match shape {
            Shape::Star => &[2, 4, 8, 16, 24, 32],
            Shape::Chain => &[2, 4, 8, 12, 16],
        };
        for p in sweep(shape, sizes, seed) {
            println!(
                "{:>6} {:>14.1} {:>8} {:>18.1}",
                p.hosts, p.snapshot_ms, p.procs, p.control_far_ms
            );
        }
        println!();
    }
}
