//! The backend-agnostic syscall surface available to programs.
//!
//! A `&mut dyn Sys` is handed to every [`crate::program::Program`]
//! callback. It identifies the calling process and exposes the host's
//! system calls — spawn/exit/kill/adopt, stream sockets, timers, files,
//! CPU accounting — plus read-only introspection (`ps`-style queries).
//!
//! Two backends implement it:
//!
//! * the **simulated** kernel (`ppm-simos`), where time is discrete-event
//!   ticks and the network is the modelled topology; and
//! * the **real** node runtime (`ppm-realos`), where time is the machine's
//!   monotonic clock and connections are loopback TCP sockets.
//!
//! Protocol code (`ppm-core`, the tools) is written against this trait
//! only, so the same LPM/pmd/RPC stack drives both worlds. The trait is
//! split into capability supertraits ([`Clock`], [`TimerDriver`],
//! [`Transport`], [`Spawner`]) so narrow helpers can accept only what
//! they use.
//!
//! ## Object safety and ergonomics
//!
//! The trait methods are deliberately monomorphic (`String`/[`Bytes`]
//! parameters) so `dyn Sys` works. The generic conveniences programs
//! actually call — `sys.trace(cat, format!(..))`, `sys.send(conn, msg)`,
//! `sys.stable_put(key, value)` — are provided as inherent methods on
//! `dyn Sys` itself, so call sites need no extra imports.

use bytes::Bytes;

use crate::events::TraceFlags;
use crate::fd::{FdKind, OpenMode};
use crate::ids::{ConnId, CpuClass, Fd, HostId, Pid, Port, Uid};
use crate::obs::{SharedRegistry, SpanPhase};
use crate::process::{ProcInfo, Rusage};
use crate::program::{SpawnSpec, SysError};
use crate::signal::Signal;
use crate::time::{Micros, SimDuration};
use crate::trace::TraceCategory;

/// Stable-storage key under which a backend records the instant a host
/// crashed (8-byte big-endian microseconds). Written by the crash path,
/// read by pmd's recovery path to compute time-to-repair.
pub const CRASHED_AT_KEY: &str = "os.crashed_at";

/// Handle to a pending timer, usable to cancel it.
///
/// The payload is backend-defined: the simulation packs an engine event
/// id, the real runtime an entry in the node's timer heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle(pub u64);

/// A source of protocol-visible time.
pub trait Clock {
    /// The current instant: simulated time in the simulation, microseconds
    /// since the shared cluster epoch on real nodes.
    fn now(&self) -> Micros;
}

/// One-shot timers delivered to [`crate::program::Program::on_timer`].
pub trait TimerDriver: Clock {
    /// Arms a one-shot timer; `token` comes back in
    /// [`crate::program::Program::on_timer`].
    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerHandle;

    /// Cancels a pending timer. Returns `false` if it already fired.
    fn cancel_timer(&mut self, handle: TimerHandle) -> bool;
}

/// Reliable ordered stream connections between processes.
pub trait Transport {
    /// Binds a listener on `port`.
    ///
    /// # Errors
    ///
    /// [`SysError::PortInUse`].
    fn listen(&mut self, port: Port) -> Result<(), SysError>;

    /// Starts a connection to `host:port`. The outcome arrives later as a
    /// [`crate::program::ConnEvent`].
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchHost`] for an invalid host id.
    fn connect(&mut self, host: HostId, port: Port) -> Result<ConnId, SysError>;

    /// Sends bytes on an established connection. (Prefer the inherent
    /// `send` convenience, which accepts `impl Into<Bytes>`.)
    ///
    /// # Errors
    ///
    /// [`SysError::NotConnected`] or [`SysError::ConnectionClosed`].
    fn send_bytes(&mut self, conn: ConnId, data: Bytes) -> Result<(), SysError>;

    /// Whether a connection is believed deliverable right now: the
    /// endpoints are up and the link between them is routable. Programs
    /// use this to validate cached next-hops before committing a send to
    /// them — a connection can look established while a fresh link cut
    /// has not yet produced its closed notification. Backends without
    /// that visibility (real TCP) report `true` and rely on send errors.
    fn conn_alive(&self, conn: ConnId) -> bool {
        let _ = conn;
        true
    }

    /// The network's reachability epoch: bumped whenever link or host
    /// state changes (partition, heal, named-link cut, crash, restart).
    /// Programs remember the last epoch they saw and revalidate cached
    /// routes when it moves. Backends without topology visibility (real
    /// TCP) never bump it.
    fn net_epoch(&self) -> u64 {
        0
    }

    /// Whether hosts `a` and `b` (by name) can currently exchange
    /// traffic — the pairwise check route-cache revalidation runs over a
    /// cached path's legs. Backends without a global view answer `true`
    /// and rely on send errors instead.
    fn edge_up(&self, a: &str, b: &str) -> bool {
        let _ = (a, b);
        true
    }

    /// Closes a connection.
    ///
    /// # Errors
    ///
    /// [`SysError::NotConnected`] if the caller is not an endpoint.
    fn close(&mut self, conn: ConnId) -> Result<(), SysError>;
}

/// Process creation and termination.
pub trait Spawner {
    /// Forks and execs a child of the calling process.
    ///
    /// # Errors
    ///
    /// [`SysError::HostDown`] (only during in-flight crash handling).
    fn spawn(&mut self, spec: SpawnSpec) -> Result<Pid, SysError>;

    /// Forks and execs a child *owned by another user* — the setuid spawn
    /// pmd uses to create a user's LPM. Root only.
    ///
    /// # Errors
    ///
    /// [`SysError::PermissionDenied`] for non-root callers.
    fn spawn_as(&mut self, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError>;

    /// Terminates the calling process with `code`.
    fn exit(&mut self, code: i32);

    /// Sends a signal to a process on this host, with the caller's
    /// credentials.
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchProcess`] or [`SysError::PermissionDenied`].
    fn kill(&mut self, target: Pid, signal: Signal) -> Result<(), SysError>;

    /// Asks inetd's registry to ensure a service runs on this host.
    /// Returns its pid and well-known port. Root only.
    ///
    /// # Errors
    ///
    /// [`SysError::PermissionDenied`] for non-root callers,
    /// [`SysError::UnknownService`] for unregistered names.
    fn spawn_service(&mut self, name: &str) -> Result<(Pid, Port), SysError>;
}

/// The full syscall interface bound to one calling process.
pub trait Sys: Clock + TimerDriver + Transport + Spawner {
    // ---- identity and environment --------------------------------------

    /// The calling process's host.
    fn host(&self) -> HostId;

    /// The calling process's host name.
    fn host_name(&self) -> &str;

    /// The host's CPU class.
    fn cpu_class(&self) -> CpuClass;

    /// The calling process's pid.
    fn pid(&self) -> Pid;

    /// The calling process's uid.
    fn uid(&self) -> Uid;

    /// The host's current load average (`uptime`).
    fn load_avg(&self) -> f64;

    /// Resolves a host name to an id (the name service).
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchHost`] when the name is unknown.
    fn resolve_host(&self, name: &str) -> Result<HostId, SysError>;

    /// All host names in the network (the `/etc/hosts` view).
    fn known_hosts(&self) -> Vec<String>;

    /// Records a trace entry attributed to this host. (Prefer the
    /// inherent `trace` convenience, which accepts `impl Into<String>`.)
    fn trace_str(&mut self, category: TraceCategory, text: String);

    /// Whether span recording is enabled — callers guard on this before
    /// formatting correlation strings on hot paths.
    fn spans_enabled(&self) -> bool;

    /// Records a correlation-stamped span event attributed to this host
    /// (no-op unless span recording is enabled). (Prefer the inherent
    /// `span` convenience.)
    fn span_str(&mut self, name: &'static str, corr: String, phase: SpanPhase);

    /// Registers a shared metrics registry with the world's observability
    /// hub under `label`, so harnesses can sample it without protocol
    /// traffic. Re-registering a label replaces the previous handle.
    /// (Prefer the inherent `register_metrics` convenience.)
    fn register_metrics_str(&mut self, label: String, registry: SharedRegistry);

    /// A uniformly distributed value in `[0, 1)` — drawn from the seeded
    /// world RNG in the simulation, so runs stay replayable.
    fn random_unit(&mut self) -> f64;

    // ---- process management --------------------------------------------

    /// Adopts a process (the extended `ptrace` of the paper's Section 4):
    /// the caller becomes its tracer and receives kernel events per
    /// `flags`, for the target and all its future descendants.
    ///
    /// # Errors
    ///
    /// See [`crate::kernel::Kernel::adopt`].
    fn adopt(&mut self, target: Pid, flags: TraceFlags) -> Result<(), SysError>;

    /// Updates the tracing flags of an already-adopted process.
    ///
    /// # Errors
    ///
    /// Same as [`Sys::adopt`].
    fn set_trace_flags(&mut self, target: Pid, flags: TraceFlags) -> Result<(), SysError> {
        self.adopt(target, flags)
    }

    /// Allocates the kernel socket descriptor (LPMs call this once; see
    /// Figure 4 of the paper).
    fn register_kernel_socket(&mut self) -> Fd;

    /// `ps`-style info about one process on this host (any state).
    fn proc_info(&self, pid: Pid) -> Option<ProcInfo>;

    /// Live processes of `uid` on this host, in pid order.
    fn user_processes(&self, uid: Uid) -> Vec<ProcInfo>;

    /// Resource usage of a process on this host (live or recently exited).
    fn rusage_of(&self, pid: Pid) -> Option<Rusage>;

    /// Marks the caller CPU-bound (contributes to the run queue while
    /// running), or not.
    fn set_cpu_bound(&mut self, yes: bool);

    /// Scales a nominal (idle reference machine) CPU cost to this host's
    /// class and current load, with jitter — without consuming it. Used by
    /// programs that model their own internal concurrency (the LPM's
    /// handler processes run in parallel with its dispatcher). The real
    /// backend returns the nominal cost unchanged.
    fn scale_cost(&mut self, nominal: SimDuration) -> SimDuration;

    /// Consumes CPU: in the simulation the process is busy for the scaled
    /// cost (events queue behind it) and the cost is added to its rusage;
    /// on real nodes the work already happened, so this only accounts it.
    /// Returns the scaled elapsed time.
    fn consume_cpu(&mut self, nominal: SimDuration) -> SimDuration;

    // ---- stable storage ------------------------------------------------

    /// Writes a record to the host's stable storage. Survives process
    /// exits and host crashes — the paper's suggested hardening of pmd
    /// state ("could be stored in secondary (even stable) storage so as
    /// to survive the daemon's possible failure modes"). (Prefer the
    /// inherent `stable_put` convenience.)
    fn stable_put_kv(&mut self, key: String, value: Bytes);

    /// Reads a record from the host's stable storage.
    fn stable_get(&self, key: &str) -> Option<Bytes>;

    /// Deletes a record from the host's stable storage.
    fn stable_del(&mut self, key: &str);

    // ---- files -----------------------------------------------------------

    /// Opens a file, allocating a descriptor. (Prefer the inherent `open`
    /// convenience.)
    fn open_path(&mut self, path: String, mode: OpenMode) -> Fd;

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// [`SysError::BadFileDescriptor`].
    fn close_fd(&mut self, fd: Fd) -> Result<(), SysError>;

    /// The descriptor table of a same-user (or any, for root) process on
    /// this host.
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchProcess`] or [`SysError::PermissionDenied`].
    fn open_fds(&self, pid: Pid) -> Result<Vec<(Fd, FdKind)>, SysError>;
}

/// Ergonomic generic wrappers over the monomorphic trait methods, as
/// inherent methods on the trait object so call sites need no imports.
impl dyn Sys + '_ {
    /// Records a trace entry attributed to this host.
    pub fn trace(&mut self, category: TraceCategory, text: impl Into<String>) {
        self.trace_str(category, text.into());
    }

    /// Records a correlation-stamped span event attributed to this host.
    pub fn span(&mut self, name: &'static str, corr: impl Into<String>, phase: SpanPhase) {
        self.span_str(name, corr.into(), phase);
    }

    /// Registers a shared metrics registry under `label`.
    pub fn register_metrics(&mut self, label: impl Into<String>, registry: SharedRegistry) {
        self.register_metrics_str(label.into(), registry);
    }

    /// Sends bytes on an established connection.
    ///
    /// # Errors
    ///
    /// [`SysError::NotConnected`] or [`SysError::ConnectionClosed`].
    pub fn send(&mut self, conn: ConnId, data: impl Into<Bytes>) -> Result<(), SysError> {
        self.send_bytes(conn, data.into())
    }

    /// Writes a record to the host's stable storage.
    pub fn stable_put(&mut self, key: impl Into<String>, value: impl Into<Bytes>) {
        self.stable_put_kv(key.into(), value.into());
    }

    /// Opens a file, allocating a descriptor.
    pub fn open(&mut self, path: impl Into<String>, mode: OpenMode) -> Fd {
        self.open_path(path.into(), mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sys_is_object_safe_and_conveniences_resolve() {
        // A minimal in-memory backend: enough to prove `dyn Sys` works
        // and the inherent conveniences dispatch through it.
        #[derive(Default)]
        struct Mini {
            traces: Vec<(TraceCategory, String)>,
            sent: Vec<(ConnId, Bytes)>,
            stable: Vec<(String, Bytes)>,
            timers: u64,
        }
        impl Clock for Mini {
            fn now(&self) -> Micros {
                Micros::from_millis(1)
            }
        }
        impl TimerDriver for Mini {
            fn set_timer(&mut self, _d: SimDuration, _t: u64) -> TimerHandle {
                self.timers += 1;
                TimerHandle(self.timers)
            }
            fn cancel_timer(&mut self, _h: TimerHandle) -> bool {
                true
            }
        }
        impl Transport for Mini {
            fn listen(&mut self, _p: Port) -> Result<(), SysError> {
                Ok(())
            }
            fn connect(&mut self, _h: HostId, _p: Port) -> Result<ConnId, SysError> {
                Ok(ConnId(1))
            }
            fn send_bytes(&mut self, conn: ConnId, data: Bytes) -> Result<(), SysError> {
                self.sent.push((conn, data));
                Ok(())
            }
            fn close(&mut self, _c: ConnId) -> Result<(), SysError> {
                Ok(())
            }
        }
        impl Spawner for Mini {
            fn spawn(&mut self, _s: SpawnSpec) -> Result<Pid, SysError> {
                Ok(Pid(2))
            }
            fn spawn_as(&mut self, _u: Uid, _s: SpawnSpec) -> Result<Pid, SysError> {
                Err(SysError::PermissionDenied)
            }
            fn exit(&mut self, _code: i32) {}
            fn kill(&mut self, _t: Pid, _s: Signal) -> Result<(), SysError> {
                Ok(())
            }
            fn spawn_service(&mut self, _n: &str) -> Result<(Pid, Port), SysError> {
                Err(SysError::UnknownService)
            }
        }
        impl Sys for Mini {
            fn host(&self) -> HostId {
                HostId(0)
            }
            fn host_name(&self) -> &str {
                "mini"
            }
            fn cpu_class(&self) -> CpuClass {
                CpuClass::Vax780
            }
            fn pid(&self) -> Pid {
                Pid(2)
            }
            fn uid(&self) -> Uid {
                Uid(7)
            }
            fn load_avg(&self) -> f64 {
                0.0
            }
            fn resolve_host(&self, name: &str) -> Result<HostId, SysError> {
                if name == "mini" {
                    Ok(HostId(0))
                } else {
                    Err(SysError::NoSuchHost)
                }
            }
            fn known_hosts(&self) -> Vec<String> {
                vec!["mini".into()]
            }
            fn trace_str(&mut self, category: TraceCategory, text: String) {
                self.traces.push((category, text));
            }
            fn spans_enabled(&self) -> bool {
                false
            }
            fn span_str(&mut self, _n: &'static str, _c: String, _p: SpanPhase) {}
            fn register_metrics_str(&mut self, _l: String, _r: SharedRegistry) {}
            fn random_unit(&mut self) -> f64 {
                0.5
            }
            fn adopt(&mut self, _t: Pid, _f: TraceFlags) -> Result<(), SysError> {
                Ok(())
            }
            fn register_kernel_socket(&mut self) -> Fd {
                Fd(3)
            }
            fn proc_info(&self, _p: Pid) -> Option<ProcInfo> {
                None
            }
            fn user_processes(&self, _u: Uid) -> Vec<ProcInfo> {
                Vec::new()
            }
            fn rusage_of(&self, _p: Pid) -> Option<Rusage> {
                None
            }
            fn set_cpu_bound(&mut self, _y: bool) {}
            fn scale_cost(&mut self, nominal: SimDuration) -> SimDuration {
                nominal
            }
            fn consume_cpu(&mut self, nominal: SimDuration) -> SimDuration {
                nominal
            }
            fn stable_put_kv(&mut self, key: String, value: Bytes) {
                self.stable.push((key, value));
            }
            fn stable_get(&self, key: &str) -> Option<Bytes> {
                self.stable
                    .iter()
                    .rev()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
            }
            fn stable_del(&mut self, key: &str) {
                self.stable.retain(|(k, _)| k != key);
            }
            fn open_path(&mut self, _p: String, _m: OpenMode) -> Fd {
                Fd(4)
            }
            fn close_fd(&mut self, _fd: Fd) -> Result<(), SysError> {
                Ok(())
            }
            fn open_fds(&self, _p: Pid) -> Result<Vec<(Fd, FdKind)>, SysError> {
                Ok(Vec::new())
            }
        }

        let mut mini = Mini::default();
        let sys: &mut dyn Sys = &mut mini;
        assert_eq!(sys.now(), Micros::from_millis(1));
        sys.trace(TraceCategory::Tool, format!("n={}", 1));
        let conn = sys.connect(HostId(0), Port(9)).unwrap();
        sys.send(conn, Bytes::from_static(b"hi")).unwrap();
        sys.stable_put("k", Bytes::from_static(b"v"));
        assert_eq!(sys.stable_get("k"), Some(Bytes::from_static(b"v")));
        let t = sys.set_timer(SimDuration::from_millis(5), 7);
        assert!(sys.cancel_timer(t));
        assert_eq!(mini.traces.len(), 1);
        assert_eq!(mini.sent.len(), 1);
    }

    #[test]
    fn crashed_at_key_is_stable() {
        assert_eq!(CRASHED_AT_KEY, "os.crashed_at");
    }
}
