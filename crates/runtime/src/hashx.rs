//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! The simulator's inner loops key maps by small integers (event sequence
//! numbers, pids) and short host-name strings. SipHash — `std`'s default,
//! chosen for HashDoS resistance — costs more than the surrounding work on
//! those paths, and the simulation never hashes attacker-controlled input.
//! [`HashX`] is a multiply-rotate word hasher in the FxHash family:
//! one rotate, one xor, and one multiply per 8-byte word.
//!
//! Use [`FastMap`] / [`FastSet`] where profiles show hashing, and keep the
//! `std` defaults everywhere else.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash family (a golden-ratio-derived odd constant
/// that mixes well under multiplication).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state. One `u64` of rolling state; each word folds in with
/// rotate-xor-multiply.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashX(u64);

impl HashX {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for HashX {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in with the tail so "ab" and "ab\0" differ.
            self.fold(u64::from_le_bytes(tail) ^ (bytes.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// `BuildHasher` for [`HashX`].
pub type BuildHashX = BuildHasherDefault<HashX>;

/// A `HashMap` keyed with [`HashX`].
pub type FastMap<K, V> = HashMap<K, V, BuildHashX>;

/// A `HashSet` keyed with [`HashX`].
pub type FastSet<T> = HashSet<T, BuildHashX>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_apart() {
        let hash = |bytes: &[u8]| {
            let mut h = HashX::default();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(hash(b"calder"), hash(b"ucbarpa"));
        assert_ne!(hash(b"ab"), hash(b"ab\0"));
        assert_ne!(hash(b""), hash(b"\0"));
    }

    #[test]
    fn integer_writes_differ_from_zero_state() {
        let mut a = HashX::default();
        a.write_u64(1);
        let mut b = HashX::default();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fast_map_and_set_work() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FastSet<&str> = FastSet::default();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
    }
}
