//! The inet daemon.
//!
//! Step (1) and (2) of the paper's Figure 2: "the creation request is
//! directed to the inet daemon, inetd, which then passes the request to
//! the process manager daemon, pmd, creating it if necessary."
//!
//! Our inetd is a generic service broker: a client connects to the
//! well-known [`Port::INETD`], names a service, and inetd ensures the
//! service daemon runs (spawning it on demand from the world's service
//! registry) and replies with the daemon's accept port. The client then
//! talks to the daemon directly — the daemon may still be booting, so
//! clients retry their connect, exactly like TCP SYN retransmission.

use bytes::Bytes;

use crate::ids::{ConnId, Port};
use crate::program::{ConnEvent, Program, SysError};
use crate::sys::Sys;
use crate::trace::TraceCategory;

/// Reply status byte: success, port follows.
pub const INETD_OK: u8 = 0;
/// Reply status byte: unknown service.
pub const INETD_UNKNOWN: u8 = 1;
/// Reply status byte: service could not be started.
pub const INETD_FAILED: u8 = 2;

/// Builds an inetd request for a service name.
pub fn request(service: &str) -> Bytes {
    Bytes::copy_from_slice(service.as_bytes())
}

/// Parses an inetd reply into the service port.
///
/// # Errors
///
/// [`SysError::UnknownService`] for a negative reply or malformed data.
pub fn parse_reply(data: &[u8]) -> Result<Port, SysError> {
    match data {
        [INETD_OK, hi, lo] => Ok(Port(u16::from_be_bytes([*hi, *lo]))),
        _ => Err(SysError::UnknownService),
    }
}

/// The inet daemon program. One runs on every host, started at boot.
#[derive(Debug, Default)]
pub struct Inetd {
    _private: (),
}

impl Inetd {
    /// Creates the daemon (the world spawns it at host boot).
    pub fn new() -> Self {
        Inetd::default()
    }
}

impl Program for Inetd {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.listen(Port::INETD).expect("inetd port free at boot");
    }

    fn on_message(&mut self, sys: &mut dyn Sys, conn: ConnId, data: Bytes) {
        let service = match std::str::from_utf8(&data) {
            Ok(s) => s.to_string(),
            Err(_) => {
                let _ = sys.send(conn, Bytes::from_static(&[INETD_UNKNOWN]));
                return;
            }
        };
        match sys.spawn_service(&service) {
            Ok((pid, port)) => {
                sys.trace(
                    TraceCategory::Daemon,
                    format!("inetd: request for {service} -> pid {pid} port {port}"),
                );
                let Port(p) = port;
                let [hi, lo] = p.to_be_bytes();
                let _ = sys.send(conn, Bytes::copy_from_slice(&[INETD_OK, hi, lo]));
            }
            Err(SysError::UnknownService) => {
                let _ = sys.send(conn, Bytes::from_static(&[INETD_UNKNOWN]));
            }
            Err(_) => {
                let _ = sys.send(conn, Bytes::from_static(&[INETD_FAILED]));
            }
        }
    }

    fn on_conn_event(&mut self, sys: &mut dyn Sys, conn: ConnId, event: ConnEvent) {
        // inetd serves one request per connection; nothing to track.
        let _ = (sys, conn, event);
    }

    fn name(&self) -> &str {
        "inetd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_roundtrip() {
        let p = Port(3);
        let [hi, lo] = p.0.to_be_bytes();
        assert_eq!(parse_reply(&[INETD_OK, hi, lo]), Ok(p));
    }

    #[test]
    fn bad_replies_are_errors() {
        assert_eq!(parse_reply(&[INETD_UNKNOWN]), Err(SysError::UnknownService));
        assert_eq!(parse_reply(&[INETD_FAILED]), Err(SysError::UnknownService));
        assert_eq!(parse_reply(&[]), Err(SysError::UnknownService));
        assert_eq!(parse_reply(&[INETD_OK, 1]), Err(SysError::UnknownService));
    }

    #[test]
    fn request_is_service_name_bytes() {
        assert_eq!(&request("pmd")[..], b"pmd");
    }
}
