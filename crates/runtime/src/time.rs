//! Protocol-visible time, as an integer-microsecond newtype.
//!
//! All time a [`crate::sys::Clock`] hands to protocol code is expressed in
//! integer **microseconds** as a [`Micros`] instant. Using a newtype over
//! an integer keeps both backends honest: the simulation counts ticks from
//! run start with no floating-point drift, and the real backend counts
//! microseconds from a shared wall-clock epoch — neither can be mixed with
//! raw `u64` counters by accident, and cross-host comparisons (RPC
//! deadlines travel in wire messages) stay well-defined as long as the
//! backends share an epoch.
//!
//! `SimTime` is the historical name of the instant type and remains as an
//! alias; `SimDuration` is the matching span type.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant, measured in microseconds from the runtime's epoch (run
/// start in the simulation; a shared wall-clock epoch for real nodes).
///
/// # Examples
///
/// ```
/// use ppm_runtime::time::{Micros, SimDuration};
///
/// let t = Micros::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// assert_eq!(t.as_millis_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Micros(u64);

/// The historical name for [`Micros`], kept so simulation-side code reads
/// naturally.
pub type SimTime = Micros;

/// A span of time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use ppm_runtime::time::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl Micros {
    /// The epoch (run start).
    pub const ZERO: Micros = Micros(0);

    /// A time later than any time a run will reach in practice.
    pub const FAR_FUTURE: Micros = Micros(u64::MAX / 4);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Micros(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Micros(s * 1_000_000)
    }

    /// This instant as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is in the future,
    /// mirroring `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: Micros) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// This instant moved `d` earlier, clamping at the epoch — how RPC
    /// deadlines decay per relay hop without leaving typed time.
    pub fn saturating_back(self, d: SimDuration) -> Micros {
        Micros(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((ms * 1_000.0).round() as u64)
        }
    }

    /// This duration as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative float, saturating at zero.
    pub fn mul_f64(self, k: f64) -> Self {
        if k <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((self.0 as f64 * k).round() as u64)
        }
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating multiplication by an integer factor — how exponential
    /// RPC backoff doubles without leaving typed time.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for Micros {
    type Output = Micros;
    fn add(self, rhs: SimDuration) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for Micros {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<Micros> for Micros {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Micros) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "Micros subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Micros::from_millis(10) + SimDuration::from_micros(250);
        assert_eq!(t.as_micros(), 10_250);
        assert_eq!(t - Micros::from_millis(10), SimDuration::from_micros(250));
    }

    #[test]
    fn duration_from_fractional_millis_rounds() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(0.0004).as_micros(), 0);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = Micros::from_millis(1);
        let late = Micros::from_millis(9);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(8));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn saturating_mul_caps_at_max() {
        assert_eq!(
            SimDuration::from_millis(250).saturating_mul(2),
            SimDuration::from_millis(500)
        );
        assert_eq!(
            SimDuration::from_micros(u64::MAX)
                .saturating_mul(3)
                .as_micros(),
            u64::MAX
        );
    }

    #[test]
    fn saturating_back_clamps_at_epoch() {
        let t = Micros::from_millis(3);
        assert_eq!(
            t.saturating_back(SimDuration::from_millis(1)),
            Micros::from_millis(2)
        );
        assert_eq!(t.saturating_back(SimDuration::from_secs(1)), Micros::ZERO);
    }

    #[test]
    fn mul_f64_saturates_and_rounds() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(15));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_as_millis() {
        assert_eq!(Micros::from_micros(1_234).to_string(), "1.234ms");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [Micros::from_millis(3), Micros::ZERO, Micros::from_micros(1)];
        v.sort();
        assert_eq!(v[0], Micros::ZERO);
        assert_eq!(v[2], Micros::from_millis(3));
    }

    #[test]
    fn micros_is_the_canonical_instant_type() {
        // SimTime is an alias, not a distinct type.
        fn takes_micros(_: Micros) {}
        takes_micros(SimTime::from_micros(7));
    }
}
