//! Kernel event tracing.
//!
//! Adoption (the extended `ptrace` of Section 4) sets **tracing flags** on
//! a process; thereafter the kernel generates event messages that are
//! delivered to the adopting LPM's kernel socket, with the load-dependent
//! latency of Table 1. The flag set controls the granularity, which the
//! paper makes user-settable ("the granularity of event tracing is
//! user-settable").

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

use crate::ids::Pid;
use crate::process::Rusage;
use crate::signal::{ExitStatus, Signal};

/// Which classes of kernel events are reported for a traced process.
///
/// A small hand-rolled bitflag set (the `bitflags` crate is not among the
/// approved offline dependencies).
///
/// # Examples
///
/// ```
/// use ppm_runtime::events::TraceFlags;
///
/// let f = TraceFlags::PROC | TraceFlags::SIGNALS;
/// assert!(f.contains(TraceFlags::PROC));
/// assert!(!f.contains(TraceFlags::IPC));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceFlags(u8);

impl TraceFlags {
    /// No tracing.
    pub const NONE: TraceFlags = TraceFlags(0);
    /// Process lifecycle: fork, exec, exit.
    pub const PROC: TraceFlags = TraceFlags(1 << 0);
    /// Signal delivery, stop and continue.
    pub const SIGNALS: TraceFlags = TraceFlags(1 << 1);
    /// Interprocess communication: message sends and receives.
    pub const IPC: TraceFlags = TraceFlags(1 << 2);
    /// File opens and closes.
    pub const FILES: TraceFlags = TraceFlags(1 << 3);
    /// Everything.
    pub const ALL: TraceFlags = TraceFlags(0b1111);

    /// True if every flag in `other` is set in `self`.
    pub fn contains(self, other: TraceFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when no flag is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Raw bits, for wire encoding.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs from raw bits, masking unknown bits away.
    pub fn from_bits(bits: u8) -> TraceFlags {
        TraceFlags(bits & TraceFlags::ALL.0)
    }
}

impl BitOr for TraceFlags {
    type Output = TraceFlags;
    fn bitor(self, rhs: TraceFlags) -> TraceFlags {
        TraceFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TraceFlags {
    fn bitor_assign(&mut self, rhs: TraceFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for TraceFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for (flag, name) in [
            (TraceFlags::PROC, "proc"),
            (TraceFlags::SIGNALS, "sig"),
            (TraceFlags::IPC, "ipc"),
            (TraceFlags::FILES, "files"),
        ] {
            if self.contains(flag) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

/// One kernel-generated event about a traced process.
///
/// These are the messages the (modified) kernel deposits on the LPM's
/// kernel socket.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelEvent {
    /// `parent` forked `child`; the child inherits tracing.
    Fork { parent: Pid, child: Pid },
    /// `pid` replaced its image with `command`.
    Exec { pid: Pid, command: String },
    /// `pid` terminated; final resource usage attached.
    Exit {
        pid: Pid,
        status: ExitStatus,
        rusage: Rusage,
    },
    /// A signal was delivered to `pid`.
    SignalDelivered { pid: Pid, signal: Signal },
    /// `pid` was stopped.
    Stopped { pid: Pid },
    /// `pid` was continued.
    Continued { pid: Pid },
    /// `pid` sent an IPC message of `bytes` bytes.
    MsgSent { pid: Pid, bytes: usize },
    /// `pid` received an IPC message of `bytes` bytes.
    MsgReceived { pid: Pid, bytes: usize },
    /// `pid` opened `path`.
    FileOpened { pid: Pid, path: String },
    /// `pid` closed `path`.
    FileClosed { pid: Pid, path: String },
}

impl KernelEvent {
    /// The process the event concerns.
    pub fn pid(&self) -> Pid {
        match self {
            KernelEvent::Fork { parent, .. } => *parent,
            KernelEvent::Exec { pid, .. }
            | KernelEvent::Exit { pid, .. }
            | KernelEvent::SignalDelivered { pid, .. }
            | KernelEvent::Stopped { pid }
            | KernelEvent::Continued { pid }
            | KernelEvent::MsgSent { pid, .. }
            | KernelEvent::MsgReceived { pid, .. }
            | KernelEvent::FileOpened { pid, .. }
            | KernelEvent::FileClosed { pid, .. } => *pid,
        }
    }

    /// The flag class that must be enabled for this event to be reported.
    pub fn required_flag(&self) -> TraceFlags {
        match self {
            KernelEvent::Fork { .. } | KernelEvent::Exec { .. } | KernelEvent::Exit { .. } => {
                TraceFlags::PROC
            }
            KernelEvent::SignalDelivered { .. }
            | KernelEvent::Stopped { .. }
            | KernelEvent::Continued { .. } => TraceFlags::SIGNALS,
            KernelEvent::MsgSent { .. } | KernelEvent::MsgReceived { .. } => TraceFlags::IPC,
            KernelEvent::FileOpened { .. } | KernelEvent::FileClosed { .. } => TraceFlags::FILES,
        }
    }

    /// Approximate encoded size in bytes, used by the Table 1 latency
    /// model. The paper's reference kernel→LPM message is 112 bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            KernelEvent::Exit { .. } => 112,
            KernelEvent::Exec { command, .. } => 64 + command.len(),
            KernelEvent::FileOpened { path, .. } | KernelEvent::FileClosed { path, .. } => {
                48 + path.len()
            }
            _ => 112,
        }
    }

    /// Short name for traces and history records.
    pub fn kind(&self) -> &'static str {
        match self {
            KernelEvent::Fork { .. } => "fork",
            KernelEvent::Exec { .. } => "exec",
            KernelEvent::Exit { .. } => "exit",
            KernelEvent::SignalDelivered { .. } => "signal",
            KernelEvent::Stopped { .. } => "stop",
            KernelEvent::Continued { .. } => "cont",
            KernelEvent::MsgSent { .. } => "msg-sent",
            KernelEvent::MsgReceived { .. } => "msg-recv",
            KernelEvent::FileOpened { .. } => "file-open",
            KernelEvent::FileClosed { .. } => "file-close",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_combine_and_query() {
        let f = TraceFlags::PROC | TraceFlags::IPC;
        assert!(f.contains(TraceFlags::PROC));
        assert!(f.contains(TraceFlags::IPC));
        assert!(!f.contains(TraceFlags::SIGNALS));
        assert!(!f.contains(TraceFlags::ALL));
        assert!(TraceFlags::ALL.contains(f));
    }

    #[test]
    fn flags_bits_roundtrip() {
        for bits in 0..=0b1111u8 {
            assert_eq!(TraceFlags::from_bits(bits).bits(), bits);
        }
        assert_eq!(TraceFlags::from_bits(0xFF), TraceFlags::ALL);
    }

    #[test]
    fn flags_display() {
        assert_eq!(TraceFlags::NONE.to_string(), "none");
        assert_eq!(
            (TraceFlags::PROC | TraceFlags::FILES).to_string(),
            "proc|files"
        );
        assert_eq!(TraceFlags::ALL.to_string(), "proc|sig|ipc|files");
    }

    #[test]
    fn event_required_flags() {
        let e = KernelEvent::Fork {
            parent: Pid(1),
            child: Pid(2),
        };
        assert_eq!(e.required_flag(), TraceFlags::PROC);
        let e = KernelEvent::Stopped { pid: Pid(3) };
        assert_eq!(e.required_flag(), TraceFlags::SIGNALS);
        let e = KernelEvent::MsgSent {
            pid: Pid(3),
            bytes: 10,
        };
        assert_eq!(e.required_flag(), TraceFlags::IPC);
        let e = KernelEvent::FileOpened {
            pid: Pid(3),
            path: "/tmp/x".into(),
        };
        assert_eq!(e.required_flag(), TraceFlags::FILES);
    }

    #[test]
    fn exit_event_is_reference_sized() {
        let e = KernelEvent::Exit {
            pid: Pid(9),
            status: ExitStatus::SUCCESS,
            rusage: Rusage::default(),
        };
        assert_eq!(e.wire_size(), 112);
        assert_eq!(e.kind(), "exit");
        assert_eq!(e.pid(), Pid(9));
    }
}
