//! Per-process file descriptor tables.
//!
//! Section 7 of the paper plans "a tool for displaying the open and closed
//! files of processes, a tool for displaying file descriptors". The
//! simulated kernel keeps enough descriptor state for those tools to work.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::{ConnId, Fd, Port};

/// How a file was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpenMode {
    /// Read only.
    Read,
    /// Write only.
    Write,
    /// Read and write.
    ReadWrite,
}

impl fmt::Display for OpenMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpenMode::Read => "r",
            OpenMode::Write => "w",
            OpenMode::ReadWrite => "rw",
        })
    }
}

/// What a descriptor refers to.
#[derive(Debug, Clone, PartialEq)]
pub enum FdKind {
    /// A regular file.
    File {
        /// Path opened.
        path: String,
        /// Open mode.
        mode: OpenMode,
    },
    /// One end of a stream connection (socket).
    Socket {
        /// The connection.
        conn: ConnId,
    },
    /// A listening socket.
    Listener {
        /// The bound port.
        port: Port,
    },
    /// The LPM's kernel socket, where the kernel deposits event messages.
    KernelSocket,
}

impl FdKind {
    /// Short classification for display tools.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FdKind::File { .. } => "file",
            FdKind::Socket { .. } => "socket",
            FdKind::Listener { .. } => "listener",
            FdKind::KernelSocket => "kernel",
        }
    }
}

/// A process's descriptor table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    entries: BTreeMap<Fd, FdKind>,
    next: u32,
}

impl FdTable {
    /// Creates an empty table. Descriptors start at 3, as if stdin,
    /// stdout and stderr were already taken.
    pub fn new() -> Self {
        FdTable {
            entries: BTreeMap::new(),
            next: 3,
        }
    }

    /// Allocates a descriptor for `kind`.
    pub fn alloc(&mut self, kind: FdKind) -> Fd {
        let fd = Fd(self.next);
        self.next += 1;
        self.entries.insert(fd, kind);
        fd
    }

    /// Releases a descriptor, returning what it referred to.
    pub fn release(&mut self, fd: Fd) -> Option<FdKind> {
        self.entries.remove(&fd)
    }

    /// Looks a descriptor up.
    pub fn get(&self, fd: Fd) -> Option<&FdKind> {
        self.entries.get(&fd)
    }

    /// Finds the descriptor referring to a connection, if any.
    pub fn fd_for_conn(&self, conn: ConnId) -> Option<Fd> {
        self.entries
            .iter()
            .find(|(_, k)| matches!(k, FdKind::Socket { conn: c } if *c == conn))
            .map(|(fd, _)| *fd)
    }

    /// All entries in descriptor order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &FdKind)> {
        self.entries.iter().map(|(fd, k)| (*fd, k))
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptors_start_at_three_and_increment() {
        let mut t = FdTable::new();
        let a = t.alloc(FdKind::KernelSocket);
        let b = t.alloc(FdKind::Listener { port: Port(3) });
        assert_eq!(a, Fd(3));
        assert_eq!(b, Fd(4));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn release_removes_and_returns() {
        let mut t = FdTable::new();
        let fd = t.alloc(FdKind::File {
            path: "/etc/passwd".into(),
            mode: OpenMode::Read,
        });
        let k = t.release(fd).unwrap();
        assert!(matches!(k, FdKind::File { .. }));
        assert!(t.release(fd).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn descriptors_are_not_reused() {
        let mut t = FdTable::new();
        let a = t.alloc(FdKind::KernelSocket);
        t.release(a);
        let b = t.alloc(FdKind::KernelSocket);
        assert_ne!(a, b, "descriptor ids are never recycled in the sim");
    }

    #[test]
    fn fd_for_conn_finds_the_socket() {
        let mut t = FdTable::new();
        t.alloc(FdKind::File {
            path: "/tmp/a".into(),
            mode: OpenMode::Write,
        });
        let s = t.alloc(FdKind::Socket { conn: ConnId(7) });
        assert_eq!(t.fd_for_conn(ConnId(7)), Some(s));
        assert_eq!(t.fd_for_conn(ConnId(8)), None);
    }

    #[test]
    fn kind_names_cover_all_variants() {
        assert_eq!(FdKind::KernelSocket.kind_name(), "kernel");
        assert_eq!(FdKind::Listener { port: Port(1) }.kind_name(), "listener");
        assert_eq!(FdKind::Socket { conn: ConnId(1) }.kind_name(), "socket");
        assert_eq!(
            FdKind::File {
                path: "x".into(),
                mode: OpenMode::ReadWrite
            }
            .kind_name(),
            "file"
        );
    }

    #[test]
    fn open_mode_display() {
        assert_eq!(OpenMode::Read.to_string(), "r");
        assert_eq!(OpenMode::Write.to_string(), "w");
        assert_eq!(OpenMode::ReadWrite.to_string(), "rw");
    }
}
