//! Observability primitives: a metrics registry and a span log.
//!
//! Both are deterministic by construction — they record only simulated
//! time and values derived from simulation state, so a same-seed run
//! produces byte-identical snapshots. Registration interns static names
//! into dense indices; the hot-path operations ([`Registry::inc`],
//! [`Registry::add`], [`Registry::set`], [`Registry::record`]) are a
//! bounds-checked array access plus a relaxed atomic add, cheap enough to
//! stay enabled in benchmark runs (see `ppm-bench`'s `obs_overhead`
//! workload) while remaining safe to sample from another thread.
//!
//! The span log mirrors [`crate::trace::TraceLog`]: correlation-stamped
//! begin/end records that higher layers export as JSONL or a Chrome
//! `trace_event` file. Spans reuse the RPC wire identity (`origin#id` for
//! directed requests, `origin@seq` for broadcast waves), so one request
//! can be followed hop-by-hop across hosts.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use crate::ids::HostId;
use crate::time::SimTime;

/// A shared handle to a program-owned metrics registry.
///
/// Programs own their registries and register a shared handle with the
/// world's observability hub, so harnesses can sample every registry at
/// end of run without protocol traffic. The handle is a plain
/// `Arc<Registry>`: updates go through `&self` relaxed atomics (the real
/// backend runs each node's event loop on its own thread, so the handle
/// must be `Send + Sync`, and a per-update lock would tax the LPM hot
/// path), while registration needs `&mut self` — sealing a registry into
/// an `Arc` is what freezes its metric set.
pub type SharedRegistry = Arc<Registry>;

/// Number of log2 histogram buckets. Bucket `i` (for `i >= 1`) counts
/// values in `[2^(i-1), 2^i)`; bucket 0 counts zeros and ones. 40 buckets
/// cover a microsecond-valued range up to ~2^39 µs ≈ 6.4 simulated days.
pub const HIST_BUCKETS: usize = 40;

/// Handle of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(u32);

/// A fixed-bucket log2 histogram: per-bucket counts plus total count and
/// sum, enough to reconstruct a latency distribution without storing
/// samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Per-bucket counts; bucket `i` holds values with `bit_len(v) == i`.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Hist {
    /// Bucket index of a value: its bit length, clamped to the top bucket.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Inclusive upper bound of a bucket (`2^i - 1`), for rendering.
    pub fn bucket_limit(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }
}

/// A snapshot value of one metric.
///
/// Snapshot-only type (one allocation per hist per export), so the
/// boxed histogram costs nothing on the hot path while keeping the
/// enum small for the common counter/gauge samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Point-in-time level.
    Gauge(i64),
    /// Log2 histogram.
    Hist(Box<Hist>),
}

/// One metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Interned metric name.
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: MetricValue,
}

/// A histogram's live cells: per-bucket counts plus total count and sum,
/// all relaxed atomics so recording takes `&self`.
#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistCells {
    fn default() -> Self {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl HistCells {
    #[inline]
    fn record(&self, v: u64) {
        self.buckets[Hist::bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        // A plain wrapping add, not a saturating CAS loop: recorded values
        // are microsecond-scale latencies, so overflowing u64 would take
        // ~10^13 years of simulated time. The snapshot still renders a
        // saturating `Hist`.
        self.sum.fetch_add(v, Relaxed);
    }

    fn load(&self) -> Hist {
        let mut h = Hist::default();
        for (out, cell) in h.buckets.iter_mut().zip(&self.buckets) {
            *out = cell.load(Relaxed);
        }
        h.count = self.count.load(Relaxed);
        h.sum = self.sum.load(Relaxed);
        h
    }
}

/// A low-overhead metrics registry.
///
/// Metrics are registered once (typically at program start) under static
/// names and updated through the returned dense ids; a snapshot walks the
/// registry in sorted-name order so its rendering is reproducible.
///
/// Registration takes `&mut self`; updates and snapshots take `&self`
/// over relaxed atomics. Sealing a registry into a [`SharedRegistry`]
/// with [`Registry::into_shared`] therefore freezes its metric set while
/// leaving it updatable from the owning program and sampleable from a
/// harness thread, lock-free on both sides. Relaxed ordering suffices:
/// each metric is independent, the owner is the only writer, and
/// end-of-run samplers read after joining (or quiescing) the owner.
///
/// # Examples
///
/// ```
/// use ppm_runtime::obs::Registry;
///
/// let mut reg = Registry::new();
/// let sends = reg.counter("net.sends");
/// let rtt = reg.hist("net.rtt_us");
/// reg.inc(sends);
/// reg.record(rtt, 1_500);
/// let snap = reg.snapshot();
/// assert_eq!(snap.len(), 2);
/// assert_eq!(snap[0].name, "net.rtt_us"); // sorted by name
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(&'static str, AtomicU64)>,
    gauges: Vec<(&'static str, AtomicI64)>,
    hists: Vec<(&'static str, HistCells)>,
}

impl Clone for Registry {
    /// Clones current values into a fresh, independent registry.
    fn clone(&self) -> Self {
        Registry {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (*n, AtomicU64::new(v.load(Relaxed))))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(n, v)| (*n, AtomicI64::new(v.load(Relaxed))))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(n, h)| {
                    let fresh = HistCells::default();
                    let now = h.load();
                    for (cell, v) in fresh.buckets.iter().zip(now.buckets) {
                        cell.store(v, Relaxed);
                    }
                    fresh.count.store(now.count, Relaxed);
                    fresh.sum.store(now.sum, Relaxed);
                    (*n, fresh)
                })
                .collect(),
        }
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Seals this registry into a [`SharedRegistry`] handle. No further
    /// metrics can be registered once shared.
    pub fn into_shared(self) -> SharedRegistry {
        Arc::new(self)
    }

    /// Registers (or finds) a counter by name.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i as u32);
        }
        self.counters.push((name, AtomicU64::new(0)));
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Registers (or finds) a gauge by name.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i as u32);
        }
        self.gauges.push((name, AtomicI64::new(0)));
        GaugeId((self.gauges.len() - 1) as u32)
    }

    /// Registers (or finds) a histogram by name.
    pub fn hist(&mut self, name: &'static str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| *n == name) {
            return HistId(i as u32);
        }
        self.hists.push((name, HistCells::default()));
        HistId((self.hists.len() - 1) as u32)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&self, id: CounterId) {
        self.counters[id.0 as usize].1.fetch_add(1, Relaxed);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.counters[id.0 as usize].1.fetch_add(n, Relaxed);
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&self, id: GaugeId, v: i64) {
        self.gauges[id.0 as usize].1.store(v, Relaxed);
    }

    /// Raises a gauge to at least `v` (high-water mark).
    #[inline]
    pub fn set_max(&self, id: GaugeId, v: i64) {
        self.gauges[id.0 as usize].1.fetch_max(v, Relaxed);
    }

    /// Records one histogram value.
    #[inline]
    pub fn record(&self, id: HistId, v: u64) {
        self.hists[id.0 as usize].1.record(v);
    }

    /// Current value of a counter (tests and snapshot plumbing).
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].1.load(Relaxed)
    }

    /// All metrics, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let mut out: Vec<MetricSample> =
            Vec::with_capacity(self.counters.len() + self.gauges.len() + self.hists.len());
        for (name, v) in &self.counters {
            out.push(MetricSample {
                name,
                value: MetricValue::Counter(v.load(Relaxed)),
            });
        }
        for (name, v) in &self.gauges {
            out.push(MetricSample {
                name,
                value: MetricValue::Gauge(v.load(Relaxed)),
            });
        }
        for (name, h) in &self.hists {
            out.push(MetricSample {
                name,
                value: MetricValue::Hist(Box::new(h.load())),
            });
        }
        out.sort_by(|a, b| a.name.cmp(b.name));
        out
    }
}

// ---------------------------------------------------------------------------
// Structured spans
// ---------------------------------------------------------------------------

/// Whether a span record opens or closes the span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// The span opens at this instant.
    Begin,
    /// The span closes at this instant.
    End,
}

/// One begin/end record of a correlation-stamped span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Simulated instant of the record.
    pub at: SimTime,
    /// Host the record was emitted on, when host-local.
    pub host: Option<HostId>,
    /// Span kind, e.g. `"req"`, `"bcast.relay"`, `"probe"`.
    pub name: &'static str,
    /// Correlation identity shared by every record of the same logical
    /// operation across hosts: the RPC wire key (`origin#id`) or the
    /// broadcast stamp key (`origin@seq`).
    pub corr: String,
    /// Opens or closes.
    pub phase: SpanPhase,
}

/// An append-only log of span records, disabled by default so untraced
/// runs pay only a branch per emission.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    events: Vec<SpanEvent>,
    enabled: bool,
}

impl SpanLog {
    /// Creates a disabled log (records are dropped until enabled).
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Whether records are currently kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Appends a record (no-op while disabled).
    pub fn record(
        &mut self,
        at: SimTime,
        host: Option<HostId>,
        name: &'static str,
        corr: impl Into<String>,
        phase: SpanPhase,
    ) {
        if self.enabled {
            self.events.push(SpanEvent {
                at,
                host,
                name,
                corr: corr.into(),
                phase,
            });
        }
    }

    /// All recorded span events, in emission order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists_register_and_update() {
        let mut r = Registry::new();
        let c = r.counter("a.count");
        let g = r.gauge("a.level");
        let h = r.hist("a.dist");
        r.inc(c);
        r.add(c, 4);
        r.set(g, -3);
        r.set_max(g, 7);
        r.set_max(g, 2);
        r.record(h, 0);
        r.record(h, 1);
        r.record(h, 1024);
        let snap = r.snapshot();
        assert_eq!(
            snap.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["a.count", "a.dist", "a.level"],
            "snapshot is name-sorted"
        );
        assert_eq!(snap[0].value, MetricValue::Counter(5));
        assert_eq!(snap[2].value, MetricValue::Gauge(7));
        let MetricValue::Hist(h) = &snap[1].value else {
            panic!("expected hist");
        };
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1025);
        assert_eq!(h.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(h.buckets[1], 1, "one lands in bucket 1");
        assert_eq!(h.buckets[11], 1, "1024 has bit length 11");
    }

    #[test]
    fn registration_is_idempotent() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a);
        r.inc(b);
        assert_eq!(r.counter_value(a), 2);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn hist_buckets_are_log2() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(Hist::bucket_limit(3), 7);
    }

    #[test]
    fn span_log_is_disabled_by_default() {
        let mut log = SpanLog::new();
        log.record(SimTime::ZERO, None, "req", "a#1", SpanPhase::Begin);
        assert!(log.events().is_empty());
        log.set_enabled(true);
        log.record(
            SimTime::ZERO,
            Some(HostId(2)),
            "req",
            "a#1",
            SpanPhase::Begin,
        );
        log.record(
            SimTime::from_millis(3),
            Some(HostId(2)),
            "req",
            "a#1",
            SpanPhase::End,
        );
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[1].phase, SpanPhase::End);
        assert_eq!(log.events()[0].corr, "a#1");
    }
}
