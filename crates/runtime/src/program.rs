//! User-level programs (actors) and the syscall error vocabulary.
//!
//! Every simulated process may carry a [`Program`]: a deterministic state
//! machine the world invokes when events arrive for that process. LPMs,
//! pmd, inetd, tools and user workloads are all `Program`s — exactly as in
//! the paper, where the PPM is "a distributed program based on a
//! collection of user-level processes".

use std::error::Error;
use std::fmt;

use crate::ids::HostId;
use crate::time::SimTime;
use bytes::Bytes;

use crate::events::KernelEvent;
use crate::ids::{ConnId, Pid, Port};
use crate::signal::{ExitStatus, Signal};
use crate::sys::Sys;

/// A kernel event message as deposited on an LPM's kernel socket.
///
/// `queued_at` is the instant the kernel generated the message; the
/// difference between the delivery time and `queued_at` is exactly the
/// quantity Table 1 of the paper reports.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMsg {
    /// The event.
    pub event: KernelEvent,
    /// When the kernel queued the message.
    pub queued_at: SimTime,
}

/// Errors returned by syscalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysError {
    /// Target pid does not exist (or has exited).
    NoSuchProcess,
    /// Caller's uid may not act on the target (ESRCH/EPERM).
    PermissionDenied,
    /// Named host is not part of the network.
    NoSuchHost,
    /// Target host has crashed.
    HostDown,
    /// No live route to the target host (network partition).
    Unreachable,
    /// No listener on the target port.
    ConnectionRefused,
    /// The connection is closed or broken.
    ConnectionClosed,
    /// The caller is not an endpoint of the connection.
    NotConnected,
    /// Another process already listens on the port.
    PortInUse,
    /// No such registered service (inetd).
    UnknownService,
    /// Target process is already traced by a different manager.
    AlreadyTraced,
    /// Malformed argument.
    InvalidArgument,
    /// Bad file descriptor.
    BadFileDescriptor,
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SysError::NoSuchProcess => "no such process",
            SysError::PermissionDenied => "permission denied",
            SysError::NoSuchHost => "no such host",
            SysError::HostDown => "host is down",
            SysError::Unreachable => "host unreachable",
            SysError::ConnectionRefused => "connection refused",
            SysError::ConnectionClosed => "connection closed",
            SysError::NotConnected => "not connected",
            SysError::PortInUse => "port in use",
            SysError::UnknownService => "unknown service",
            SysError::AlreadyTraced => "already traced",
            SysError::InvalidArgument => "invalid argument",
            SysError::BadFileDescriptor => "bad file descriptor",
        };
        f.write_str(s)
    }
}

impl Error for SysError {}

/// Connection lifecycle notifications delivered to [`Program::on_conn_event`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConnEvent {
    /// Server side: a client connected to a port this process listens on.
    Accepted {
        /// The connecting endpoint.
        peer: (HostId, Pid),
        /// The local port that accepted.
        port: Port,
    },
    /// Client side: the connection attempt succeeded.
    Established,
    /// Client side: the connection attempt failed.
    Failed(SysError),
    /// Either side: the connection was closed or broke (peer exit, host
    /// crash, partition discovered on send).
    Closed,
}

/// What a program wants done with a catchable signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigAction {
    /// Apply the default disposition (terminate for fatal signals).
    Default,
    /// The program handled it; no further action.
    Handled,
}

/// Specification for creating a process.
pub struct SpawnSpec {
    /// Command name (argv\[0\]).
    pub command: String,
    /// Behaviour, if any. `None` yields an inert process that only exists
    /// in the process table (most real UNIX processes, from the PPM's
    /// perspective, are exactly that).
    pub program: Option<Box<dyn Program>>,
    /// Whether the process counts toward the run queue permanently
    /// (a CPU-bound workload).
    pub cpu_bound: bool,
}

impl fmt::Debug for SpawnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpawnSpec")
            .field("command", &self.command)
            .field("has_program", &self.program.is_some())
            .field("cpu_bound", &self.cpu_bound)
            .finish()
    }
}

impl SpawnSpec {
    /// A process with behaviour.
    pub fn new(command: impl Into<String>, program: Box<dyn Program>) -> Self {
        SpawnSpec {
            command: command.into(),
            program: Some(program),
            cpu_bound: false,
        }
    }

    /// An inert process with no behaviour.
    pub fn inert(command: impl Into<String>) -> Self {
        SpawnSpec {
            command: command.into(),
            program: None,
            cpu_bound: false,
        }
    }

    /// Marks the process CPU-bound (it contributes to load average).
    pub fn cpu_bound(mut self, yes: bool) -> Self {
        self.cpu_bound = yes;
        self
    }
}

/// The behaviour of a process, under either backend.
///
/// All methods default to "ignore", so simple programs implement only what
/// they need. Handlers run to completion at a single instant of the
/// backend's clock; real elapsed work is modelled by calling
/// [`Sys::consume_cpu`] or by scheduling timers.
///
/// `Send` is required because the real backend runs each node's event
/// loop on its own thread and programs are spawned across nodes; the
/// simulation is single-threaded and simply never moves them.
pub trait Program: Send {
    /// The process began execution (after its fork+exec delay).
    fn on_start(&mut self, sys: &mut dyn Sys) {
        let _ = sys;
    }

    /// A timer set via [`Sys::set_timer`] fired.
    fn on_timer(&mut self, sys: &mut dyn Sys, token: u64) {
        let _ = (sys, token);
    }

    /// A message arrived on an established connection.
    fn on_message(&mut self, sys: &mut dyn Sys, conn: ConnId, data: Bytes) {
        let _ = (sys, conn, data);
    }

    /// A connection changed state.
    fn on_conn_event(&mut self, sys: &mut dyn Sys, conn: ConnId, event: ConnEvent) {
        let _ = (sys, conn, event);
    }

    /// The kernel reported an event about a process this program traces
    /// (only LPMs that registered a kernel socket receive these).
    fn on_kernel_event(&mut self, sys: &mut dyn Sys, msg: KernelMsg) {
        let _ = (sys, msg);
    }

    /// A coalesced batch of kernel event messages arrived in one wakeup,
    /// as one encoded frame sequence. Only programs that registered a
    /// kernel socket receive batches. The default ignores the frame; a
    /// tracer (the LPM) overrides this to decode each message with the
    /// wire codec and feed it to [`Program::on_kernel_event`] in queue
    /// order. (The decoding lives with the tracer because the codec is a
    /// protocol-layer concern this runtime crate does not depend on.)
    fn on_kernel_batch(&mut self, sys: &mut dyn Sys, data: Bytes) {
        let _ = (sys, data);
    }

    /// A direct child of this process exited.
    fn on_child_exit(&mut self, sys: &mut dyn Sys, child: Pid, status: ExitStatus) {
        let _ = (sys, child, status);
    }

    /// A catchable signal was delivered. Returning [`SigAction::Default`]
    /// applies the default disposition (fatal signals terminate).
    fn on_signal(&mut self, sys: &mut dyn Sys, signal: Signal) -> SigAction {
        let _ = (sys, signal);
        SigAction::Default
    }

    /// A deterministic fingerprint of this program's protocol-visible
    /// state. State-space explorers (the model checker) fold these into a
    /// world digest to recognize already-visited interleavings, so the
    /// digest must exclude monotonic diagnostics (counters, histories)
    /// that grow without changing future behaviour. Programs with no
    /// protocol state keep the default.
    fn state_digest(&self) -> u64 {
        0
    }

    /// Read access to the concrete program for harness-side inspection
    /// (the model checker's predicates downcast through this). Programs
    /// opt in by returning `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Short name for diagnostics.
    fn name(&self) -> &str {
        "program"
    }
}

/// The inert program: exists, does nothing, dies when told to.
#[derive(Debug, Default, Clone)]
pub struct Inert;

impl Program for Inert {
    fn name(&self) -> &str {
        "inert"
    }
}

/// Identifies a process world-wide.
pub type ProcKey = (HostId, Pid);

/// Formats a `(host, pid)` pair the way the paper writes process
/// identities: `<host name, pid>`.
pub fn format_gpid(host_name: &str, pid: Pid) -> String {
    format!("<{host_name}, {pid}>")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sys_error_displays_lowercase_without_punctuation() {
        let all = [
            SysError::NoSuchProcess,
            SysError::PermissionDenied,
            SysError::NoSuchHost,
            SysError::HostDown,
            SysError::Unreachable,
            SysError::ConnectionRefused,
            SysError::ConnectionClosed,
            SysError::NotConnected,
            SysError::PortInUse,
            SysError::UnknownService,
            SysError::AlreadyTraced,
            SysError::InvalidArgument,
            SysError::BadFileDescriptor,
        ];
        for e in all {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'));
            assert_eq!(s, s.to_lowercase());
        }
    }

    #[test]
    fn sys_error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SysError>();
    }

    #[test]
    fn spawn_spec_builders() {
        let s = SpawnSpec::inert("sleep").cpu_bound(true);
        assert_eq!(s.command, "sleep");
        assert!(s.program.is_none());
        assert!(s.cpu_bound);
        let s = SpawnSpec::new("worker", Box::new(Inert));
        assert!(s.program.is_some());
        assert!(!s.cpu_bound);
    }

    #[test]
    fn gpid_format_matches_paper() {
        assert_eq!(format_gpid("ucbvax", Pid(102)), "<ucbvax, 102>");
    }
}
