//! The backend facade: boot hosts, spawn programs, drive the world.
//!
//! Where [`crate::sys::Sys`] is the view a *program* has of its backend,
//! [`Runtime`] is the view a *harness* has: add hosts, seed user
//! processes, let time pass, inspect the outcome. The backend-conformance
//! suite is written against this trait alone and runs unchanged over the
//! simulated world and the real loopback cluster.
//!
//! The surface is deliberately small — conformance programs communicate
//! their observations back through stable storage ([`Runtime::stable_get`])
//! rather than through backend-specific introspection.

use bytes::Bytes;

use crate::ids::{CpuClass, HostId, Pid, Uid};
use crate::program::{SpawnSpec, SysError};
use crate::time::{Micros, SimDuration};

/// A bootable PPM world: simulated ([`ppm-simos`]'s `SimRuntime`) or real
/// (`ppm-realos`'s `RealRuntime`).
pub trait Runtime {
    /// Adds a host and connects it to every existing host (the facade
    /// models one LAN segment; richer topologies are backend-specific).
    /// Boot daemons (inetd) come up with the host.
    fn add_host(&mut self, name: &str, cpu: CpuClass) -> HostId;

    /// Spawns a user-owned process running `spec` on `host`.
    ///
    /// # Errors
    ///
    /// [`SysError::HostDown`] or [`SysError::NoSuchHost`].
    fn spawn_user(&mut self, host: HostId, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError>;

    /// Lets the world run for (at least) `span` of the backend clock.
    /// The simulation advances its virtual clock; the real backend
    /// sleeps wall-clock time while node threads work.
    fn run(&mut self, span: SimDuration);

    /// Whether a process is currently alive.
    fn is_alive(&self, host: HostId, pid: Pid) -> bool;

    /// Reads a record from a host's stable storage — the conformance
    /// suite's channel for programs to report what they observed.
    fn stable_get(&self, host: HostId, key: &str) -> Option<Bytes>;

    /// The backend clock's current instant.
    fn now(&self) -> Micros;
}
