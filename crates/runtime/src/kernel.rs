//! The per-host kernel: process table, adoption, load average.
//!
//! This is the pure (event-free) part of the simulated 4.3BSD kernel. The
//! the world driver drives it and turns its decisions into
//! scheduled events.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::collections::VecDeque;

use crate::time::SimTime;

use crate::events::TraceFlags;
use crate::ids::{Pid, Uid};
use crate::process::{ProcState, Process};
use crate::program::SysError;
use crate::signal::ExitStatus;

/// Maximum number of exited process entries retained per host before the
/// oldest are evicted. LPMs keep longer-lived history themselves; the
/// kernel only retains enough for "recently dead" queries.
pub const EXITED_RETENTION: usize = 512;

/// One host's kernel state.
///
/// The process table is sharded by owner: alongside the global pid map,
/// a per-uid index of live pids keeps every user-scoped question —
/// `user_processes`, the LPM's recovery rescan, the pmd's per-user
/// dispatch — proportional to that user's own processes rather than to
/// the whole host's table. With thousands of users per host, the global
/// scan the index replaces was the multi-tenant bottleneck.
#[derive(Debug)]
pub struct Kernel {
    procs: HashMap<Pid, Process>,
    /// Live pids per owner, pid-ordered. Maintained on insert and exit;
    /// a uid's entry is removed when its last live pid exits.
    by_uid: HashMap<Uid, BTreeSet<Pid>>,
    exited_order: VecDeque<Pid>,
    next_pid: u32,
    load_avg: f64,
    boot_count: u32,
}

impl Kernel {
    /// Creates a freshly booted kernel containing only the init process.
    pub fn new(now: SimTime) -> Self {
        let mut k = Kernel {
            procs: HashMap::new(),
            by_uid: HashMap::new(),
            exited_order: VecDeque::new(),
            next_pid: 2,
            load_avg: 0.0,
            boot_count: 1,
        };
        let mut init = Process::new(Pid::INIT, Pid::INIT, Uid::ROOT, "init", now);
        init.state = ProcState::Running;
        k.by_uid.entry(Uid::ROOT).or_default().insert(Pid::INIT);
        k.procs.insert(Pid::INIT, init);
        k
    }

    /// Wipes all state, as after a crash + reboot. Pids restart from 2;
    /// nothing survives — matching the paper's "all process activities in
    /// that host, obviously, cease".
    pub fn reboot(&mut self, now: SimTime) {
        let boots = self.boot_count + 1;
        *self = Kernel::new(now);
        self.boot_count = boots;
    }

    /// How many times this kernel has booted (1 = never crashed).
    pub fn boot_count(&self) -> u32 {
        self.boot_count
    }

    /// Allocates the next pid.
    pub fn alloc_pid(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        pid
    }

    /// Inserts a new process entry and links it under its parent.
    ///
    /// # Panics
    ///
    /// Panics if the pid is already present (allocator misuse).
    pub fn insert(&mut self, proc: Process) {
        let pid = proc.pid;
        let ppid = proc.ppid;
        self.by_uid.entry(proc.uid).or_default().insert(pid);
        assert!(
            self.procs.insert(pid, proc).is_none(),
            "pid {pid} already in process table"
        );
        if let Some(parent) = self.procs.get_mut(&ppid) {
            parent.children.push(pid);
            parent.rusage.forks += 1;
        }
    }

    /// Immutable access to a process entry (alive or recently exited).
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable access to a process entry.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// Access to a live process, with a syscall-style error.
    pub fn live(&self, pid: Pid) -> Result<&Process, SysError> {
        match self.procs.get(&pid) {
            Some(p) if p.is_alive() => Ok(p),
            _ => Err(SysError::NoSuchProcess),
        }
    }

    /// Mutable access to a live process, with a syscall-style error.
    pub fn live_mut(&mut self, pid: Pid) -> Result<&mut Process, SysError> {
        match self.procs.get_mut(&pid) {
            Some(p) if p.is_alive() => Ok(p),
            _ => Err(SysError::NoSuchProcess),
        }
    }

    /// All process entries, in pid order.
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        let mut pids: Vec<Pid> = self.procs.keys().copied().collect();
        pids.sort_unstable();
        pids.into_iter().map(move |pid| &self.procs[&pid])
    }

    /// Live processes owned by `uid`, in pid order. Served from the
    /// per-uid shard index: O(user's own processes), independent of how
    /// many other tenants the host carries.
    pub fn user_processes(&self, uid: Uid) -> Vec<&Process> {
        match self.by_uid.get(&uid) {
            Some(pids) => pids.iter().map(|pid| &self.procs[pid]).collect(),
            None => Vec::new(),
        }
    }

    /// Marks a process exited, detaches it from the run queue, reparents
    /// its live children to init, and records it in the retention ring.
    ///
    /// Returns the pids of the children that were reparented.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not a live process (callers check first).
    pub fn finish_exit(&mut self, pid: Pid, status: ExitStatus, now: SimTime) -> Vec<Pid> {
        let children;
        let uid;
        {
            let p = self.procs.get_mut(&pid).expect("exiting pid exists");
            assert!(p.is_alive(), "double exit of pid {pid}");
            p.state = ProcState::Exited(status);
            p.exited_at = Some(now);
            p.cpu_bound = false;
            uid = p.uid;
            children = std::mem::take(&mut p.children);
        }
        // The exited pid leaves its owner's shard of the live index.
        if let Some(pids) = self.by_uid.get_mut(&uid) {
            pids.remove(&pid);
            if pids.is_empty() {
                self.by_uid.remove(&uid);
            }
        }
        // Reparent live children to init.
        for &c in &children {
            if let Some(cp) = self.procs.get_mut(&c) {
                cp.ppid = Pid::INIT;
            }
        }
        if let Some(init) = self.procs.get_mut(&Pid::INIT) {
            init.children.extend(children.iter().copied());
        }
        // Unlink from the (old) parent's child list.
        let ppid = self.procs[&pid].ppid;
        if let Some(parent) = self.procs.get_mut(&ppid) {
            parent.children.retain(|&c| c != pid);
        }
        self.exited_order.push_back(pid);
        while self.exited_order.len() > EXITED_RETENTION {
            if let Some(old) = self.exited_order.pop_front() {
                self.procs.remove(&old);
            }
        }
        children
    }

    /// The adoption check and effect (the paper's extended `ptrace`):
    /// `tracer_uid` adopts `target`, setting `flags`.
    ///
    /// # Errors
    ///
    /// * [`SysError::NoSuchProcess`] — target not alive.
    /// * [`SysError::PermissionDenied`] — "the adoption operations fail if
    ///   the process and the PPM belong to different users".
    /// * [`SysError::AlreadyTraced`] — a *different, still-live* manager
    ///   already traces the target; re-adoption by the same manager just
    ///   updates flags, and a dead manager's claim lapses so a respawned
    ///   LPM can take over its predecessor's orphans.
    pub fn adopt(
        &mut self,
        target: Pid,
        tracer: Pid,
        tracer_uid: Uid,
        flags: TraceFlags,
    ) -> Result<(), SysError> {
        // A tracer that has exited (or vanished in a reboot) no longer
        // blocks adoption; its pid may even have been reused, so only a
        // live holder counts.
        let prior = self.get(target).and_then(|p| p.tracer);
        let holder_live = prior.is_some_and(|t| self.procs.get(&t).is_some_and(Process::is_alive));
        let p = self.live_mut(target)?;
        if p.uid != tracer_uid && !tracer_uid.is_root() {
            return Err(SysError::PermissionDenied);
        }
        match prior {
            Some(t) if t != tracer && holder_live => Err(SysError::AlreadyTraced),
            _ => {
                p.trace_flags = flags;
                p.tracer = Some(tracer);
                Ok(())
            }
        }
    }

    /// Number of runnable entities for the load-average sample: running
    /// CPU-bound processes plus processes currently busy with work.
    pub fn runnable_count(&self, now: SimTime) -> usize {
        self.procs
            .values()
            .filter(|p| p.state == ProcState::Running && (p.cpu_bound || p.busy_until > now))
            .count()
    }

    /// Current load average (time-averaged CPU run-queue length — the
    /// paper's `la`).
    pub fn load_avg(&self) -> f64 {
        self.load_avg
    }

    /// Applies one EWMA sample of the run-queue length.
    pub fn update_load(&mut self, runnable: usize, alpha: f64) {
        self.load_avg += (runnable as f64 - self.load_avg) * alpha.clamp(0.0, 1.0);
    }

    /// Forces the load average (testing/benchmark hook; real runs drive it
    /// with CPU-bound workloads).
    pub fn set_load_avg(&mut self, la: f64) {
        self.load_avg = la.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    fn kern() -> Kernel {
        Kernel::new(SimTime::ZERO)
    }

    fn add(k: &mut Kernel, ppid: Pid, uid: Uid, cmd: &str) -> Pid {
        let pid = k.alloc_pid();
        let mut p = Process::new(pid, ppid, uid, cmd, SimTime::ZERO);
        p.state = ProcState::Running;
        k.insert(p);
        pid
    }

    #[test]
    fn boot_creates_init_only() {
        let k = kern();
        assert_eq!(k.processes().count(), 1);
        assert_eq!(k.get(Pid::INIT).unwrap().command, "init");
        assert_eq!(k.boot_count(), 1);
    }

    #[test]
    fn pids_are_sequential_and_unique() {
        let mut k = kern();
        let a = k.alloc_pid();
        let b = k.alloc_pid();
        assert_ne!(a, b);
        assert_eq!(b.0, a.0 + 1);
    }

    #[test]
    fn insert_links_parent_and_counts_forks() {
        let mut k = kern();
        let a = add(&mut k, Pid::INIT, Uid(100), "sh");
        let b = add(&mut k, a, Uid(100), "cc");
        assert_eq!(k.get(a).unwrap().children, vec![b]);
        assert_eq!(k.get(a).unwrap().rusage.forks, 1);
        assert_eq!(k.get(b).unwrap().ppid, a);
    }

    #[test]
    fn user_processes_filters_by_uid_and_liveness() {
        let mut k = kern();
        let a = add(&mut k, Pid::INIT, Uid(100), "sh");
        let _b = add(&mut k, Pid::INIT, Uid(200), "other");
        let c = add(&mut k, a, Uid(100), "cc");
        k.finish_exit(c, ExitStatus::SUCCESS, SimTime::ZERO);
        let mine: Vec<Pid> = k.user_processes(Uid(100)).iter().map(|p| p.pid).collect();
        assert_eq!(mine, vec![a]);
    }

    #[test]
    fn user_index_tracks_exits_and_reboot() {
        let mut k = kern();
        let a = add(&mut k, Pid::INIT, Uid(100), "a");
        let b = add(&mut k, Pid::INIT, Uid(100), "b");
        let c = add(&mut k, Pid::INIT, Uid(200), "c");
        assert_eq!(k.user_processes(Uid(100)).len(), 2);
        k.finish_exit(a, ExitStatus::SUCCESS, SimTime::ZERO);
        let mine: Vec<Pid> = k.user_processes(Uid(100)).iter().map(|p| p.pid).collect();
        assert_eq!(mine, vec![b], "exited pid left the shard");
        k.finish_exit(b, ExitStatus::SUCCESS, SimTime::ZERO);
        assert!(k.user_processes(Uid(100)).is_empty(), "empty shard drained");
        assert_eq!(k.user_processes(Uid(200))[0].pid, c);
        k.reboot(SimTime::from_secs(1));
        assert!(k.user_processes(Uid(200)).is_empty(), "reboot wipes shards");
        assert_eq!(k.user_processes(Uid::ROOT).len(), 1, "init re-indexed");
    }

    #[test]
    fn exit_reparents_children_to_init() {
        let mut k = kern();
        let a = add(&mut k, Pid::INIT, Uid(100), "sh");
        let b = add(&mut k, a, Uid(100), "worker");
        let orphans = k.finish_exit(a, ExitStatus::Code(1), SimTime::from_millis(5));
        assert_eq!(orphans, vec![b]);
        assert_eq!(k.get(b).unwrap().ppid, Pid::INIT);
        assert!(k.get(Pid::INIT).unwrap().children.contains(&b));
        let a_entry = k.get(a).unwrap();
        assert_eq!(a_entry.state, ProcState::Exited(ExitStatus::Code(1)));
        assert_eq!(a_entry.exited_at, Some(SimTime::from_millis(5)));
    }

    #[test]
    #[should_panic(expected = "double exit")]
    fn double_exit_panics() {
        let mut k = kern();
        let a = add(&mut k, Pid::INIT, Uid(100), "sh");
        k.finish_exit(a, ExitStatus::SUCCESS, SimTime::ZERO);
        k.finish_exit(a, ExitStatus::SUCCESS, SimTime::ZERO);
    }

    #[test]
    fn exited_entries_are_evicted_after_retention() {
        let mut k = kern();
        let first = add(&mut k, Pid::INIT, Uid(1), "p");
        k.finish_exit(first, ExitStatus::SUCCESS, SimTime::ZERO);
        for _ in 0..EXITED_RETENTION {
            let p = add(&mut k, Pid::INIT, Uid(1), "p");
            k.finish_exit(p, ExitStatus::SUCCESS, SimTime::ZERO);
        }
        assert!(k.get(first).is_none(), "oldest exited entry evicted");
        // live + init entries never evicted
        assert!(k.get(Pid::INIT).is_some());
    }

    #[test]
    fn adopt_requires_same_user() {
        let mut k = kern();
        let target = add(&mut k, Pid::INIT, Uid(100), "job");
        let lpm = add(&mut k, Pid::INIT, Uid(200), "lpm");
        assert_eq!(
            k.adopt(target, lpm, Uid(200), TraceFlags::ALL),
            Err(SysError::PermissionDenied)
        );
        // root may adopt anyone
        assert_eq!(k.adopt(target, lpm, Uid::ROOT, TraceFlags::ALL), Ok(()));
    }

    #[test]
    fn adopt_sets_tracer_and_flags() {
        let mut k = kern();
        let target = add(&mut k, Pid::INIT, Uid(100), "job");
        let lpm = add(&mut k, Pid::INIT, Uid(100), "lpm");
        k.adopt(target, lpm, Uid(100), TraceFlags::PROC).unwrap();
        let p = k.get(target).unwrap();
        assert_eq!(p.tracer, Some(lpm));
        assert_eq!(p.trace_flags, TraceFlags::PROC);
    }

    #[test]
    fn adopt_by_second_manager_fails_but_readopt_updates() {
        let mut k = kern();
        let target = add(&mut k, Pid::INIT, Uid(100), "job");
        let lpm1 = add(&mut k, Pid::INIT, Uid(100), "lpm1");
        let lpm2 = add(&mut k, Pid::INIT, Uid(100), "lpm2");
        k.adopt(target, lpm1, Uid(100), TraceFlags::PROC).unwrap();
        assert_eq!(
            k.adopt(target, lpm2, Uid(100), TraceFlags::ALL),
            Err(SysError::AlreadyTraced)
        );
        k.adopt(target, lpm1, Uid(100), TraceFlags::ALL).unwrap();
        assert_eq!(k.get(target).unwrap().trace_flags, TraceFlags::ALL);
    }

    #[test]
    fn adopt_succeeds_when_prior_tracer_is_dead() {
        let mut k = kern();
        let target = add(&mut k, Pid::INIT, Uid(100), "job");
        let lpm1 = add(&mut k, Pid::INIT, Uid(100), "lpm1");
        k.adopt(target, lpm1, Uid(100), TraceFlags::PROC).unwrap();
        k.finish_exit(lpm1, ExitStatus::Signaled(Signal::Kill), SimTime::ZERO);
        // The dead manager's claim lapses: a respawned LPM takes over.
        let lpm2 = add(&mut k, Pid::INIT, Uid(100), "lpm2");
        k.adopt(target, lpm2, Uid(100), TraceFlags::ALL).unwrap();
        assert_eq!(k.get(target).unwrap().tracer, Some(lpm2));
    }

    #[test]
    fn adopt_dead_process_fails() {
        let mut k = kern();
        let target = add(&mut k, Pid::INIT, Uid(100), "job");
        k.finish_exit(target, ExitStatus::Signaled(Signal::Kill), SimTime::ZERO);
        assert_eq!(
            k.adopt(target, Pid(99), Uid(100), TraceFlags::ALL),
            Err(SysError::NoSuchProcess)
        );
    }

    #[test]
    fn runnable_count_sees_cpu_bound_and_busy() {
        let mut k = kern();
        let a = add(&mut k, Pid::INIT, Uid(1), "busy");
        k.get_mut(a).unwrap().cpu_bound = true;
        let b = add(&mut k, Pid::INIT, Uid(1), "worker");
        k.get_mut(b).unwrap().busy_until = SimTime::from_millis(10);
        let c = add(&mut k, Pid::INIT, Uid(1), "idle");
        let _ = c;
        assert_eq!(k.runnable_count(SimTime::from_millis(5)), 2);
        assert_eq!(k.runnable_count(SimTime::from_millis(20)), 1);
        // stopped processes never count
        k.get_mut(a).unwrap().state = ProcState::Stopped;
        assert_eq!(k.runnable_count(SimTime::from_millis(5)), 1);
    }

    #[test]
    fn load_average_converges_to_runnable_count() {
        let mut k = kern();
        let alpha = 1.0 - (-1.0f64 / 60.0).exp();
        for _ in 0..600 {
            k.update_load(3, alpha);
        }
        assert!((k.load_avg() - 3.0).abs() < 0.01, "la={}", k.load_avg());
        for _ in 0..600 {
            k.update_load(0, alpha);
        }
        assert!(k.load_avg() < 0.01);
    }

    #[test]
    fn reboot_wipes_everything_but_counts_boots() {
        let mut k = kern();
        add(&mut k, Pid::INIT, Uid(1), "x");
        k.set_load_avg(2.5);
        k.reboot(SimTime::from_secs(10));
        assert_eq!(k.processes().count(), 1);
        assert_eq!(k.load_avg(), 0.0);
        assert_eq!(k.boot_count(), 2);
    }
}
