//! Synthetic user workloads.
//!
//! The paper measures the PPM against real user activity on the Berkeley
//! machines. These programs generate the equivalent synthetic activity:
//! CPU-bound spinners to pin the load average into Table 1's buckets,
//! process trees for genealogy snapshots, and chattering client/server
//! pairs for the IPC-tracing tool.
//!
//! [`Storm`] scales the same idea up six orders of magnitude: a seeded,
//! replayable fork/exec/exit storm across thousands of users whose
//! activity follows a Zipf law — the multi-tenant workload the scale
//! scenario and the `multi_tenant_scale` bench replay.

use bytes::Bytes;

use crate::ids::HostId;
use crate::time::SimDuration;

use crate::ids::{ConnId, Port};
use crate::program::{ConnEvent, Program, SpawnSpec};
use crate::sys::Sys;

/// A partially CPU-bound process: runnable for `duty` of each `period`.
///
/// `n` of these with duty `d` drive a host's load average toward `n·d`,
/// which is how the Table 1 bench pins `la` to bucket midpoints like 1.5.
#[derive(Debug, Clone)]
pub struct DutyCycle {
    /// Fraction of time runnable, in `[0, 1]`.
    pub duty: f64,
    /// Cycle period.
    pub period: SimDuration,
    on: bool,
}

impl DutyCycle {
    /// Creates a duty-cycled spinner.
    pub fn new(duty: f64, period: SimDuration) -> Self {
        DutyCycle {
            duty: duty.clamp(0.0, 1.0),
            period,
            on: false,
        }
    }

    /// Phase length, dithered ±30% so populations of spinners do not
    /// phase-lock with the kernel's load sampler.
    fn phase(&self, on: bool, sys: &mut dyn Sys) -> SimDuration {
        let nominal = if on {
            self.period.mul_f64(self.duty)
        } else {
            self.period.mul_f64(1.0 - self.duty)
        };
        nominal.mul_f64(0.7 + 0.6 * sys.random_unit())
    }
}

impl Program for DutyCycle {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        self.on = true;
        sys.set_cpu_bound(true);
        let d = self.phase(true, sys);
        sys.set_timer(d, 0);
    }

    fn on_timer(&mut self, sys: &mut dyn Sys, _token: u64) {
        self.on = !self.on;
        sys.set_cpu_bound(self.on);
        let d = self.phase(self.on, sys);
        sys.set_timer(d, 0);
    }

    fn name(&self) -> &str {
        "dutycycle"
    }
}

/// A process that does some work and exits after `lifetime`.
#[derive(Debug, Clone)]
pub struct Worker {
    /// How long the process lives.
    pub lifetime: SimDuration,
    /// Nominal CPU consumed in one burst at start.
    pub work: SimDuration,
    /// Exit code on completion.
    pub exit_code: i32,
}

impl Worker {
    /// A worker living `lifetime` with a single CPU burst of `work`.
    pub fn new(lifetime: SimDuration, work: SimDuration) -> Self {
        Worker {
            lifetime,
            work,
            exit_code: 0,
        }
    }
}

impl Program for Worker {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        if !self.work.is_zero() {
            sys.consume_cpu(self.work);
        }
        sys.set_timer(self.lifetime, 0);
    }

    fn on_timer(&mut self, sys: &mut dyn Sys, _token: u64) {
        sys.exit(self.exit_code);
    }

    fn name(&self) -> &str {
        "worker"
    }
}

/// Spawns a tree of [`Worker`]s: `fanout` children per node, `depth`
/// levels. The roots of the snapshot workloads in Table 3 are trees like
/// this ("six user processes in each of the remote machines").
#[derive(Debug, Clone)]
pub struct TreeSpawner {
    /// Children per node.
    pub fanout: usize,
    /// Levels below this node (0 = leaf).
    pub depth: usize,
    /// Lifetime of every node once its subtree is spawned.
    pub lifetime: SimDuration,
}

impl TreeSpawner {
    /// Creates a spawner for a `fanout`-ary tree of `depth` levels.
    pub fn new(fanout: usize, depth: usize, lifetime: SimDuration) -> Self {
        TreeSpawner {
            fanout,
            depth,
            lifetime,
        }
    }

    /// Total processes a tree rooted here will create (including itself).
    pub fn total_nodes(&self) -> usize {
        // fanout^0 + fanout^1 + ... + fanout^depth
        let mut total = 1usize;
        let mut level = 1usize;
        for _ in 0..self.depth {
            level *= self.fanout;
            total += level;
        }
        total
    }
}

impl Program for TreeSpawner {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        if self.depth > 0 {
            for i in 0..self.fanout {
                let child = TreeSpawner::new(self.fanout, self.depth - 1, self.lifetime);
                let _ = sys.spawn(SpawnSpec::new(
                    format!("tree-d{}-{}", self.depth - 1, i),
                    Box::new(child),
                ));
            }
        }
        sys.set_timer(self.lifetime, 0);
    }

    fn on_timer(&mut self, sys: &mut dyn Sys, _token: u64) {
        sys.exit(0);
    }

    fn name(&self) -> &str {
        "tree"
    }
}

/// A server that echoes every message back on the same connection.
#[derive(Debug, Clone)]
pub struct EchoServer {
    /// Port to listen on.
    pub port: Port,
}

impl Program for EchoServer {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        let _ = sys.listen(self.port);
    }

    fn on_message(&mut self, sys: &mut dyn Sys, conn: ConnId, data: Bytes) {
        let _ = sys.send(conn, data);
    }

    fn name(&self) -> &str {
        "echod"
    }
}

/// A client that connects to an [`EchoServer`] and exchanges `rounds`
/// messages of `msg_bytes` bytes, then exits. If an echo does not arrive
/// within a retransmit interval the payload is sent again — so a broken
/// path always surfaces at the client as a failed send, whichever
/// direction the in-flight message was traveling when the path died.
#[derive(Debug, Clone)]
pub struct Chatter {
    /// Server host.
    pub server: HostId,
    /// Server port.
    pub port: Port,
    /// Message payload size.
    pub msg_bytes: usize,
    /// Round trips to perform.
    pub rounds: u32,
    done: u32,
    conn: Option<ConnId>,
}

/// Idle time after which [`Chatter`] retransmits its payload.
const CHATTER_RETRY: SimDuration = SimDuration::from_secs(1);

impl Chatter {
    /// Creates a chatter for `rounds` echoes of `msg_bytes` each.
    pub fn new(server: HostId, port: Port, msg_bytes: usize, rounds: u32) -> Self {
        Chatter {
            server,
            port,
            msg_bytes,
            rounds,
            done: 0,
            conn: None,
        }
    }

    fn payload(&self) -> Bytes {
        Bytes::from(vec![0x55u8; self.msg_bytes])
    }

    /// Sends the round's payload and arms a retransmit timer keyed to the
    /// current round; an echo advancing `done` stales the timer. A send
    /// that errors means the connection is already dead: exit.
    fn send_round(&mut self, sys: &mut dyn Sys, conn: ConnId) {
        let p = self.payload();
        if sys.send(conn, p).is_err() {
            sys.exit(1);
            return;
        }
        sys.set_timer(CHATTER_RETRY, self.done as u64);
    }
}

impl Program for Chatter {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        self.conn = sys.connect(self.server, self.port).ok();
    }

    fn on_conn_event(&mut self, sys: &mut dyn Sys, conn: ConnId, event: ConnEvent) {
        match event {
            ConnEvent::Established if Some(conn) == self.conn => self.send_round(sys, conn),
            ConnEvent::Failed(_) | ConnEvent::Closed => sys.exit(1),
            _ => {}
        }
    }

    fn on_message(&mut self, sys: &mut dyn Sys, conn: ConnId, _data: Bytes) {
        self.done += 1;
        if self.done >= self.rounds {
            let _ = sys.close(conn);
            sys.exit(0);
        } else {
            self.send_round(sys, conn);
        }
    }

    fn on_timer(&mut self, sys: &mut dyn Sys, token: u64) {
        // Still waiting on the echo for the round this timer was armed in:
        // retransmit. A send over a dead path reports the breakage.
        if token == self.done as u64 {
            if let Some(conn) = self.conn {
                self.send_round(sys, conn);
            }
        }
    }

    fn name(&self) -> &str {
        "chatter"
    }
}

// ---------------------------------------------------------------------------
// Multi-user fork/exec/exit storm
// ---------------------------------------------------------------------------

/// Command names a storm process execs, drawn from the paper's era.
const STORM_COMMANDS: [&str; 10] = [
    "cc", "as", "ld", "make", "vi", "troff", "eqn", "sort", "sim", "rogue",
];

/// Parameters of a deterministic multi-user storm.
///
/// A storm is a pure decision stream: given the same spec, two [`Storm`]s
/// yield bit-identical sequences of [`StormFork`]s, which is what makes
/// scale runs replayable end to end. The driver (one discrete-event
/// engine over per-user shards) owns all timing; the storm only decides
/// *who* forks *what*, *where*, and for *how long*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StormSpec {
    /// Number of users, ranked by activity (user 0 is the heaviest).
    pub users: u32,
    /// Number of hosts; user `u`'s home host is `u % hosts`.
    pub hosts: u16,
    /// Seed of the decision stream.
    pub seed: u64,
    /// Zipf exponent of the per-user activity law (1.0 ≈ classic Zipf).
    pub zipf_s: f64,
    /// Mean process lifetime, µs (sampled uniformly in `[mean/2, 3·mean/2)`).
    pub mean_lifetime_us: u64,
    /// Mean fork interarrival per lane, µs (same uniform window).
    pub mean_interarrival_us: u64,
    /// Per-mille of forks that land away from the user's home host,
    /// carrying a cross-host logical-parent edge.
    pub remote_permille: u32,
}

impl StormSpec {
    /// A storm sized for `users × hosts` with conventional rates.
    pub fn new(users: u32, hosts: u16, seed: u64) -> Self {
        StormSpec {
            users: users.max(1),
            hosts: hosts.max(1),
            seed,
            zipf_s: 1.1,
            mean_lifetime_us: 40_000,
            mean_interarrival_us: 1_000,
            remote_permille: 125,
        }
    }
}

/// One fork decision of a [`Storm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormFork {
    /// Activity rank of the forking user (0-based).
    pub user: u32,
    /// Host the child lands on.
    pub host: u16,
    /// The user's home host (differs from `host` for remote forks, which
    /// carry a logical-parent edge back home).
    pub home: u16,
    /// Index into [`Storm::command`]'s table for the exec'd command.
    pub command: u8,
    /// Child lifetime, µs.
    pub lifetime_us: u64,
    /// Delay before the lane's next fork, µs.
    pub next_us: u64,
}

/// A seeded, replayable fork/exec/exit storm over `U` users (see
/// [`StormSpec`]).
///
/// # Examples
///
/// ```
/// use ppm_runtime::workload::{Storm, StormSpec};
///
/// let spec = StormSpec::new(100, 8, 7);
/// let mut a = Storm::new(spec);
/// let mut b = Storm::new(spec);
/// let run: Vec<_> = (0..1000).map(|_| a.next_fork()).collect();
/// let replay: Vec<_> = (0..1000).map(|_| b.next_fork()).collect();
/// assert_eq!(run, replay, "same spec, same storm");
/// ```
#[derive(Debug, Clone)]
pub struct Storm {
    spec: StormSpec,
    state: u64,
    /// Cumulative (unnormalised) Zipf weights: `cum[u]` is the total
    /// weight of users `0..=u`; sampling is one binary search.
    cum: Vec<f64>,
}

impl Storm {
    /// Builds the storm's decision stream for `spec`.
    pub fn new(spec: StormSpec) -> Self {
        let mut cum = Vec::with_capacity(spec.users as usize);
        let mut total = 0.0f64;
        for rank in 0..spec.users {
            total += 1.0 / f64::from(rank + 1).powf(spec.zipf_s);
            cum.push(total);
        }
        Storm {
            spec,
            state: spec.seed,
            cum,
        }
    }

    /// The spec this storm replays.
    pub fn spec(&self) -> &StormSpec {
        &self.spec
    }

    /// The command name for a [`StormFork::command`] index.
    pub fn command(idx: u8) -> &'static str {
        STORM_COMMANDS[idx as usize % STORM_COMMANDS.len()]
    }

    /// SplitMix64 step: the storm's deterministic choice stream.
    fn rand(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample from `[mean/2, 3·mean/2)` — integer arithmetic
    /// only, so the stream never touches platform libm.
    fn around(&mut self, mean: u64) -> u64 {
        let mean = mean.max(2);
        mean / 2 + self.rand() % mean
    }

    /// Samples a user by the Zipf activity law.
    fn zipf_user(&mut self) -> u32 {
        let total = *self.cum.last().expect("at least one user");
        // 53 high bits → uniform in [0, 1): exact in an f64 mantissa.
        let u = (self.rand() >> 11) as f64 / (1u64 << 53) as f64;
        let x = u * total;
        self.cum.partition_point(|&c| c <= x) as u32 % self.spec.users
    }

    /// The next fork decision.
    pub fn next_fork(&mut self) -> StormFork {
        let user = self.zipf_user();
        let home = (user % u32::from(self.spec.hosts)) as u16;
        let remote = self.spec.hosts > 1
            && self.rand() % 1_000 < u64::from(self.spec.remote_permille.min(1_000));
        let host = if remote {
            // Uniform over the other hosts.
            let off = 1 + self.rand() % (u64::from(self.spec.hosts) - 1);
            ((u64::from(home) + off) % u64::from(self.spec.hosts)) as u16
        } else {
            home
        };
        let command = (self.rand() % STORM_COMMANDS.len() as u64) as u8;
        let lifetime_us = self.around(self.spec.mean_lifetime_us);
        let next_us = self.around(self.spec.mean_interarrival_us);
        StormFork {
            user,
            host,
            home,
            command,
            lifetime_us,
            next_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The workload programs themselves (DutyCycle, Worker, TreeSpawner,
    // EchoServer/Chatter) need a world to run in; their behavioural tests
    // live in `ppm-simos/tests/workload.rs`. Only the pure, world-free
    // Storm decision stream is tested here.

    #[test]
    fn storm_is_replayable_and_zipf_skewed() {
        let spec = StormSpec::new(200, 16, 0xCAB);
        let mut a = Storm::new(spec);
        let mut b = Storm::new(spec);
        let mut per_user = vec![0u32; 200];
        let mut hosts_hit = std::collections::BTreeSet::new();
        let mut remote = 0u32;
        for _ in 0..20_000 {
            let f = a.next_fork();
            assert_eq!(f, b.next_fork(), "streams stay in lockstep");
            per_user[f.user as usize] += 1;
            hosts_hit.insert(f.host);
            assert_eq!(f.home, (f.user % 16) as u16);
            if f.host != f.home {
                remote += 1;
            }
            let m = spec.mean_lifetime_us;
            assert!((m / 2..m / 2 + m).contains(&f.lifetime_us));
            assert!(f.next_us >= spec.mean_interarrival_us / 2);
        }
        // Zipf: the head user dominates the tail decile.
        assert!(
            per_user[0] > 10 * per_user[150].max(1),
            "rank 0 saw {} forks, rank 150 saw {}",
            per_user[0],
            per_user[150]
        );
        assert!(per_user.iter().filter(|&&c| c > 0).count() > 100);
        assert_eq!(hosts_hit.len(), 16, "every host takes forks");
        // Remote fraction lands near the configured 12.5%.
        assert!((1_500..3_500).contains(&remote), "remote={remote}");
    }

    #[test]
    fn storm_command_table_cycles() {
        assert_eq!(Storm::command(0), "cc");
        assert_eq!(Storm::command(10), "cc");
        let spec = StormSpec::new(1, 1, 3);
        let f = Storm::new(spec).next_fork();
        assert_eq!(f.user, 0);
        assert_eq!(f.host, 0);
    }
}
