//! Processes and resource accounting.

use std::fmt;

use crate::time::{SimDuration, SimTime};

use crate::events::TraceFlags;
use crate::fd::FdTable;
use crate::ids::{Pid, Uid};
use crate::signal::ExitStatus;

/// Scheduling state of a process, as reported by snapshots.
///
/// The paper: "The PPM can determine in which state (running, stopped, or
/// dead) each of the component processes of a multiple-process program is".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcState {
    /// Being created: fork+exec in progress (the paper's 77 ms of Table 2).
    Embryo,
    /// Runnable or running.
    Running,
    /// Stopped by SIGSTOP.
    Stopped,
    /// Terminated; exit status retained.
    Exited(ExitStatus),
}

impl ProcState {
    /// True for states in which the process still exists.
    pub fn is_alive(self) -> bool {
        !matches!(self, ProcState::Exited(_))
    }
}

impl fmt::Display for ProcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcState::Embryo => f.write_str("embryo"),
            ProcState::Running => f.write_str("running"),
            ProcState::Stopped => f.write_str("stopped"),
            ProcState::Exited(s) => write!(f, "dead ({s})"),
        }
    }
}

/// Resource usage of a process — the data behind the paper's
/// "exited process resource consumption statistics" tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rusage {
    /// CPU time consumed, in microseconds.
    pub cpu: SimDuration,
    /// Messages sent over stream connections.
    pub msgs_sent: u64,
    /// Messages received over stream connections.
    pub msgs_received: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Files opened over the process lifetime.
    pub files_opened: u64,
    /// Signals received.
    pub signals_received: u64,
    /// Child processes forked.
    pub forks: u64,
}

impl Rusage {
    /// Merges a child's usage into a parent aggregate (like `RUSAGE_CHILDREN`).
    pub fn absorb(&mut self, other: &Rusage) {
        self.cpu += other.cpu;
        self.msgs_sent += other.msgs_sent;
        self.msgs_received += other.msgs_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.files_opened += other.files_opened;
        self.signals_received += other.signals_received;
        self.forks += other.forks;
    }
}

/// One entry in a host's process table.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id on this host.
    pub pid: Pid,
    /// Parent pid on this host ([`Pid::INIT`] for daemons and orphans).
    pub ppid: Pid,
    /// Owning user.
    pub uid: Uid,
    /// Command name (argv\[0\] equivalent).
    pub command: String,
    /// Scheduling state.
    pub state: ProcState,
    /// When the process was created.
    pub started_at: SimTime,
    /// When the process exited, if it has.
    pub exited_at: Option<SimTime>,
    /// Accumulated resource usage.
    pub rusage: Rusage,
    /// Tracing flags set by adoption.
    pub trace_flags: TraceFlags,
    /// The LPM (pid on this host) receiving this process's kernel events.
    pub tracer: Option<Pid>,
    /// The process is a CPU-bound workload (counts toward the run queue
    /// even when it has no pending events).
    pub cpu_bound: bool,
    /// The process is busy handling work until this instant; events
    /// arriving earlier queue behind it.
    pub busy_until: SimTime,
    /// Live child pids on this host.
    pub children: Vec<Pid>,
    /// Open file descriptors.
    pub fds: FdTable,
}

impl Process {
    /// Creates a fresh process entry in the embryonic state.
    pub fn new(pid: Pid, ppid: Pid, uid: Uid, command: impl Into<String>, now: SimTime) -> Self {
        Process {
            pid,
            ppid,
            uid,
            command: command.into(),
            state: ProcState::Embryo,
            started_at: now,
            exited_at: None,
            rusage: Rusage::default(),
            trace_flags: TraceFlags::NONE,
            tracer: None,
            cpu_bound: false,
            busy_until: SimTime::ZERO,
            children: Vec::new(),
            fds: FdTable::new(),
        }
    }

    /// True while the process has not exited.
    pub fn is_alive(&self) -> bool {
        self.state.is_alive()
    }

    /// True when the process is traced by an LPM.
    pub fn is_adopted(&self) -> bool {
        self.tracer.is_some()
    }
}

/// The externally visible summary of a process (what `ps` or a snapshot
/// would show). This is the type handed across the syscall boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcInfo {
    /// Process id.
    pub pid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// Owner.
    pub uid: Uid,
    /// Command name.
    pub command: String,
    /// Scheduling state.
    pub state: ProcState,
    /// Creation time.
    pub started_at: SimTime,
    /// Resource usage so far.
    pub rusage: Rusage,
    /// Whether an LPM has adopted it.
    pub adopted: bool,
}

impl From<&Process> for ProcInfo {
    fn from(p: &Process) -> Self {
        ProcInfo {
            pid: p.pid,
            ppid: p.ppid,
            uid: p.uid,
            command: p.command.clone(),
            state: p.state,
            started_at: p.started_at,
            rusage: p.rusage,
            adopted: p.is_adopted(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    #[test]
    fn state_liveness() {
        assert!(ProcState::Running.is_alive());
        assert!(ProcState::Stopped.is_alive());
        assert!(ProcState::Embryo.is_alive());
        assert!(!ProcState::Exited(ExitStatus::SUCCESS).is_alive());
    }

    #[test]
    fn state_display_matches_paper_vocabulary() {
        assert_eq!(ProcState::Running.to_string(), "running");
        assert_eq!(ProcState::Stopped.to_string(), "stopped");
        assert!(ProcState::Exited(ExitStatus::Signaled(Signal::Kill))
            .to_string()
            .starts_with("dead"));
    }

    #[test]
    fn rusage_absorb_sums_everything() {
        let mut a = Rusage {
            cpu: SimDuration::from_millis(5),
            msgs_sent: 1,
            ..Default::default()
        };
        let b = Rusage {
            cpu: SimDuration::from_millis(7),
            msgs_sent: 2,
            msgs_received: 3,
            bytes_sent: 10,
            bytes_received: 20,
            files_opened: 1,
            signals_received: 4,
            forks: 5,
        };
        a.absorb(&b);
        assert_eq!(a.cpu, SimDuration::from_millis(12));
        assert_eq!(a.msgs_sent, 3);
        assert_eq!(a.msgs_received, 3);
        assert_eq!(a.bytes_sent, 10);
        assert_eq!(a.bytes_received, 20);
        assert_eq!(a.files_opened, 1);
        assert_eq!(a.signals_received, 4);
        assert_eq!(a.forks, 5);
    }

    #[test]
    fn new_process_starts_embryonic_untraced() {
        let p = Process::new(Pid(5), Pid(1), Uid(100), "cc", SimTime::from_millis(3));
        assert_eq!(p.state, ProcState::Embryo);
        assert!(p.is_alive());
        assert!(!p.is_adopted());
        assert_eq!(p.started_at, SimTime::from_millis(3));
    }

    #[test]
    fn proc_info_reflects_process() {
        let mut p = Process::new(Pid(5), Pid(1), Uid(100), "cc", SimTime::ZERO);
        p.tracer = Some(Pid(9));
        p.state = ProcState::Running;
        let info = ProcInfo::from(&p);
        assert!(info.adopted);
        assert_eq!(info.command, "cc");
        assert_eq!(info.state, ProcState::Running);
    }
}
