//! Software interrupts (signals).
//!
//! The PPM's headline capability is delivering software interrupts "with
//! no interprocess constraints based on creation dependencies" — stop,
//! continue and kill across machine boundaries. This module models the
//! small signal vocabulary the paper's tools use, with 4.3BSD-style
//! default dispositions.

use std::fmt;

/// The signals understood by the simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Stop the process (SIGSTOP — cannot be caught).
    Stop,
    /// Continue a stopped process (SIGCONT).
    Cont,
    /// Terminate, catchable (SIGTERM).
    Term,
    /// Terminate, uncatchable (SIGKILL).
    Kill,
    /// Interactive interrupt (SIGINT).
    Int,
    /// Hangup (SIGHUP) — the PPM delivers this when a time-to-die interval
    /// expires and local processes must be shut down.
    Hup,
    /// User-defined signal 1 (SIGUSR1) — used by history-dependent triggers.
    Usr1,
    /// User-defined signal 2 (SIGUSR2).
    Usr2,
}

impl Signal {
    /// BSD-style signal number, for display and wire encoding.
    pub fn number(self) -> u8 {
        match self {
            Signal::Hup => 1,
            Signal::Int => 2,
            Signal::Kill => 9,
            Signal::Usr1 => 30,
            Signal::Usr2 => 31,
            Signal::Term => 15,
            Signal::Stop => 17,
            Signal::Cont => 19,
        }
    }

    /// Inverse of [`Signal::number`].
    pub fn from_number(n: u8) -> Option<Signal> {
        Some(match n {
            1 => Signal::Hup,
            2 => Signal::Int,
            9 => Signal::Kill,
            15 => Signal::Term,
            17 => Signal::Stop,
            19 => Signal::Cont,
            30 => Signal::Usr1,
            31 => Signal::Usr2,
            _ => return None,
        })
    }

    /// Whether the default disposition terminates the target.
    pub fn is_fatal_by_default(self) -> bool {
        matches!(
            self,
            Signal::Term | Signal::Kill | Signal::Int | Signal::Hup
        )
    }

    /// Whether the signal can be caught/handled by the target program.
    pub fn is_catchable(self) -> bool {
        !matches!(self, Signal::Kill | Signal::Stop)
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Signal::Stop => "SIGSTOP",
            Signal::Cont => "SIGCONT",
            Signal::Term => "SIGTERM",
            Signal::Kill => "SIGKILL",
            Signal::Int => "SIGINT",
            Signal::Hup => "SIGHUP",
            Signal::Usr1 => "SIGUSR1",
            Signal::Usr2 => "SIGUSR2",
        };
        f.write_str(s)
    }
}

/// How a process ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitStatus {
    /// Voluntary `exit(code)`.
    Code(i32),
    /// Killed by a signal.
    Signaled(Signal),
}

impl ExitStatus {
    /// The conventional "success" status.
    pub const SUCCESS: ExitStatus = ExitStatus::Code(0);

    /// True for `exit(0)`.
    pub fn is_success(self) -> bool {
        self == ExitStatus::SUCCESS
    }
}

impl fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitStatus::Code(c) => write!(f, "exit({c})"),
            ExitStatus::Signaled(s) => write!(f, "killed by {s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Signal; 8] = [
        Signal::Stop,
        Signal::Cont,
        Signal::Term,
        Signal::Kill,
        Signal::Int,
        Signal::Hup,
        Signal::Usr1,
        Signal::Usr2,
    ];

    #[test]
    fn number_roundtrips() {
        for s in ALL {
            assert_eq!(Signal::from_number(s.number()), Some(s), "{s}");
        }
        assert_eq!(Signal::from_number(200), None);
    }

    #[test]
    fn numbers_are_unique() {
        let mut nums: Vec<u8> = ALL.iter().map(|s| s.number()).collect();
        nums.sort_unstable();
        nums.dedup();
        assert_eq!(nums.len(), ALL.len());
    }

    #[test]
    fn dispositions_match_bsd() {
        assert!(Signal::Kill.is_fatal_by_default());
        assert!(Signal::Term.is_fatal_by_default());
        assert!(!Signal::Stop.is_fatal_by_default());
        assert!(!Signal::Cont.is_fatal_by_default());
        assert!(!Signal::Kill.is_catchable());
        assert!(!Signal::Stop.is_catchable());
        assert!(Signal::Term.is_catchable());
    }

    #[test]
    fn exit_status_success() {
        assert!(ExitStatus::Code(0).is_success());
        assert!(!ExitStatus::Code(1).is_success());
        assert!(!ExitStatus::Signaled(Signal::Kill).is_success());
        assert_eq!(
            ExitStatus::Signaled(Signal::Kill).to_string(),
            "killed by SIGKILL"
        );
    }
}
