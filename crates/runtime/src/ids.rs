//! Identifier newtypes shared by every runtime backend.

use std::fmt;

/// Index of a host within a world (simulated topology or real cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// CPU class of a host, after the three machine types of the paper's
/// Table 1.
///
/// In the simulation the class selects the constants of the
/// load-dependent latency model; the real backend carries it for display
/// purposes only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CpuClass {
    /// DEC VAX 11/780 — the fastest machine in the paper's testbed.
    #[default]
    Vax780,
    /// DEC VAX 11/750.
    Vax750,
    /// SUN II workstation — slowest, degrades fastest under load.
    Sun2,
}

impl CpuClass {
    /// All classes, in the column order of Table 1.
    pub const ALL: [CpuClass; 3] = [CpuClass::Vax780, CpuClass::Vax750, CpuClass::Sun2];

    /// Relative CPU speed factor (VAX 11/780 ≡ 1.0). Higher is faster.
    ///
    /// Derived from the paper's Table 1 light-load column: the SUN II takes
    /// ~1.15× the VAX time on the same message, and degrades faster.
    pub fn speed_factor(self) -> f64 {
        match self {
            CpuClass::Vax780 => 1.0,
            CpuClass::Vax750 => 0.98,
            CpuClass::Sun2 => 0.82,
        }
    }
}

impl fmt::Display for CpuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CpuClass::Vax780 => "VAX 11/780",
            CpuClass::Vax750 => "VAX 11/750",
            CpuClass::Sun2 => "SUN II",
        };
        f.write_str(s)
    }
}

/// A process id, unique within one host (like a UNIX pid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Pid {
    /// The init/system pseudo-process that owns per-host daemons.
    pub const INIT: Pid = Pid(1);
}

/// A user id. Uid 0 is the superuser, as in UNIX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// True for the superuser.
    pub fn is_root(self) -> bool {
        self == Uid::ROOT
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid{}", self.0)
    }
}

/// A TCP-style port number on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub u16);

impl Port {
    /// Well-known port of the inet daemon on every host.
    pub const INETD: Port = Port(1);
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

/// World-unique identifier of one stream connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A file descriptor within one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_compact() {
        assert_eq!(HostId(3).to_string(), "h3");
        assert_eq!(Pid(42).to_string(), "42");
        assert_eq!(Uid(7).to_string(), "uid7");
        assert_eq!(Port(3).to_string(), ":3");
        assert_eq!(ConnId(9).to_string(), "c9");
        assert_eq!(Fd(2).to_string(), "fd2");
    }

    #[test]
    fn root_detection() {
        assert!(Uid::ROOT.is_root());
        assert!(!Uid(100).is_root());
    }

    #[test]
    fn constants() {
        assert_eq!(Pid::INIT, Pid(1));
        assert_eq!(Port::INETD, Port(1));
    }
}
