//! Structured simulation trace.
//!
//! Every layer of the stack (kernel, network, daemons, LPMs, tools) can
//! append timestamped entries to a shared [`TraceLog`]. The figure
//! regenerators in `ppm-bench` replay these entries to print the message
//! sequences of Figures 2–4, and tests assert on them to check protocol
//! steps without reaching into private state.

use std::fmt;

use crate::ids::HostId;
use crate::time::SimTime;

/// Coarse category of a trace entry, used for filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceCategory {
    /// Kernel activity: fork/exec/exit/signal, trace-flag events.
    Kernel,
    /// Network activity: connections, message deliveries, partitions.
    Net,
    /// Daemon activity: inetd and pmd.
    Daemon,
    /// LPM activity: dispatch, handlers, siblings, adoption.
    Lpm,
    /// Broadcast/graph-cover activity.
    Broadcast,
    /// Crash detection and recovery (CCS).
    Recovery,
    /// Tool requests and replies.
    Tool,
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceCategory::Kernel => "kernel",
            TraceCategory::Net => "net",
            TraceCategory::Daemon => "daemon",
            TraceCategory::Lpm => "lpm",
            TraceCategory::Broadcast => "bcast",
            TraceCategory::Recovery => "recov",
            TraceCategory::Tool => "tool",
        };
        f.write_str(s)
    }
}

/// One timestamped trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// When the entry was recorded.
    pub at: SimTime,
    /// Host the activity happened on, when host-local.
    pub host: Option<HostId>,
    /// Category for filtering.
    pub category: TraceCategory,
    /// Human-readable description.
    pub text: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.host {
            Some(h) => write!(
                f,
                "[{:>12} {} {}] {}",
                self.at.to_string(),
                h,
                self.category,
                self.text
            ),
            None => write!(
                f,
                "[{:>12} -- {}] {}",
                self.at.to_string(),
                self.category,
                self.text
            ),
        }
    }
}

/// An append-only log of simulation activity.
///
/// Recording can be toggled off for long benchmark runs; entries are then
/// dropped at negligible cost.
///
/// # Examples
///
/// ```
/// use ppm_runtime::trace::{TraceCategory, TraceLog};
/// use ppm_runtime::time::SimTime;
///
/// let mut log = TraceLog::new();
/// log.record(SimTime::ZERO, None, TraceCategory::Net, "link up");
/// assert_eq!(log.entries().len(), 1);
/// assert_eq!(log.filtered(TraceCategory::Net).count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    entries: Vec<TraceEntry>,
    enabled: bool,
}

impl TraceLog {
    /// Creates an empty, enabled log.
    pub fn new() -> Self {
        TraceLog {
            entries: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled log that drops all entries.
    pub fn disabled() -> Self {
        TraceLog {
            entries: Vec::new(),
            enabled: false,
        }
    }

    /// Whether entries are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Appends an entry (no-op while disabled).
    pub fn record(
        &mut self,
        at: SimTime,
        host: Option<HostId>,
        category: TraceCategory,
        text: impl Into<String>,
    ) {
        if self.enabled {
            self.entries.push(TraceEntry {
                at,
                host,
                category,
                text: text.into(),
            });
        }
    }

    /// All recorded entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries of one category, in order.
    pub fn filtered(&self, category: TraceCategory) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.category == category)
    }

    /// Entries whose text contains `needle`, in order.
    pub fn grep<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.text.contains(needle))
    }

    /// Drops all recorded entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Renders the whole log (or one category) as display lines.
    pub fn render(&self, category: Option<TraceCategory>) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if category.is_none_or(|c| c == e.category) {
                out.push_str(&e.to_string());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;

    #[test]
    fn records_and_filters() {
        let mut log = TraceLog::new();
        log.record(
            SimTime::from_millis(1),
            Some(HostId(0)),
            TraceCategory::Kernel,
            "fork pid 2",
        );
        log.record(
            SimTime::from_millis(2),
            None,
            TraceCategory::Net,
            "deliver 112B",
        );
        log.record(
            SimTime::from_millis(3),
            Some(HostId(1)),
            TraceCategory::Kernel,
            "exit pid 2",
        );
        assert_eq!(log.entries().len(), 3);
        assert_eq!(log.filtered(TraceCategory::Kernel).count(), 2);
        assert_eq!(log.grep("pid 2").count(), 2);
    }

    #[test]
    fn disabled_log_drops_entries() {
        let mut log = TraceLog::disabled();
        assert!(!log.is_enabled());
        log.record(SimTime::ZERO, None, TraceCategory::Tool, "dropped");
        assert!(log.entries().is_empty());
        log.set_enabled(true);
        log.record(SimTime::ZERO, None, TraceCategory::Tool, "kept");
        assert_eq!(log.entries().len(), 1);
    }

    #[test]
    fn render_includes_time_host_and_category() {
        let mut log = TraceLog::new();
        log.record(
            SimTime::from_millis(7),
            Some(HostId(3)),
            TraceCategory::Daemon,
            "pmd started",
        );
        let s = log.render(None);
        assert!(s.contains("7.000ms"));
        assert!(s.contains("h3"));
        assert!(s.contains("daemon"));
        assert!(s.contains("pmd started"));
    }

    #[test]
    fn render_filters_by_category() {
        let mut log = TraceLog::new();
        log.record(SimTime::ZERO, None, TraceCategory::Net, "a");
        log.record(SimTime::ZERO, None, TraceCategory::Lpm, "b");
        let s = log.render(Some(TraceCategory::Lpm));
        assert!(!s.contains("net"));
        assert!(s.contains("b"));
    }

    #[test]
    fn clear_empties_the_log() {
        let mut log = TraceLog::new();
        log.record(SimTime::ZERO, None, TraceCategory::Net, "x");
        log.clear();
        assert!(log.entries().is_empty());
    }
}
