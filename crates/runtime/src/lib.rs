//! # ppm-runtime — the backend-agnostic runtime layer
//!
//! The vocabulary both PPM backends share, and the trait boundary that
//! keeps the protocol stack (`ppm-core`, the tools) ignorant of which
//! world it runs in:
//!
//! * [`time`] — protocol-visible time as integer microseconds
//!   ([`time::Micros`], alias `SimTime`).
//! * [`ids`], [`process`], [`signal`], [`fd`], [`events`] — the process
//!   model: pids, uids, hosts, states, rusage, signals, descriptors, and
//!   the kernel-event vocabulary of the paper's extended `ptrace`.
//! * [`kernel`] — the pure per-host process table (fork genealogy, tracer
//!   bookkeeping, load average), reused verbatim by both backends.
//! * [`program`] — the [`program::Program`] actor trait every LPM, pmd,
//!   inetd, tool and workload implements.
//! * [`sys`] — the [`sys::Sys`] syscall facade handed to programs, split
//!   into [`sys::Clock`] / [`sys::TimerDriver`] / [`sys::Transport`] /
//!   [`sys::Spawner`] capabilities.
//! * [`rt`] — the [`rt::Runtime`] harness facade the backend-conformance
//!   suite drives.
//! * [`trace`], [`obs`], [`hashx`] — structured tracing, metrics/spans,
//!   and deterministic hashing, shared so both backends record
//!   comparable artifacts.
//! * [`inetd`], [`workload`] — backend-agnostic stock programs: the inet
//!   daemon and the synthetic workloads.
//!
//! The simulated backend lives in `ppm-simos` (on `ppm-simnet`'s
//! discrete-event engine); the real one in `ppm-realos` (loopback TCP,
//! monotonic clock, thread-per-node event loops).

pub mod events;
pub mod fd;
pub mod hashx;
pub mod ids;
pub mod inetd;
pub mod kernel;
pub mod obs;
pub mod process;
pub mod program;
pub mod rt;
pub mod signal;
pub mod sys;
pub mod time;
pub mod trace;
pub mod workload;

pub use ids::{ConnId, CpuClass, Fd, HostId, Pid, Port, Uid};
pub use program::{ConnEvent, Inert, KernelMsg, ProcKey, Program, SigAction, SpawnSpec, SysError};
pub use rt::Runtime;
pub use sys::{Clock, Spawner, Sys, TimerDriver, TimerHandle, Transport, CRASHED_AT_KEY};
pub use time::{Micros, SimDuration, SimTime};
