//! The historical-data display tool (Section 7: "a historical data
//! gathering tool"). Formats LPM history streams and computes simple
//! per-kind and per-process activity profiles.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ppm_proto::types::HistoryRecord;

/// Renders a history stream chronologically.
pub fn render(events: &[HistoryRecord], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for e in events {
        let _ = writeln!(
            out,
            "[{:>12.3}ms] {:<20} {:<10} {}",
            e.at_us as f64 / 1000.0,
            e.gpid.to_string(),
            e.kind,
            e.detail
        );
    }
    let _ = writeln!(out, "{} event(s)", events.len());
    out
}

/// Event counts per kind, sorted by kind.
pub fn kind_profile(events: &[HistoryRecord]) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for e in events {
        *map.entry(e.kind.clone()).or_insert(0) += 1;
    }
    map
}

/// Events per process, sorted by identity.
pub fn process_profile(events: &[HistoryRecord]) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for e in events {
        *map.entry(e.gpid.to_string()).or_insert(0) += 1;
    }
    map
}

/// Renders the per-kind profile.
pub fn render_profile(events: &[HistoryRecord], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (kind, n) in kind_profile(events) {
        let _ = writeln!(out, "{kind:<12} {n:>6}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_proto::types::Gpid;

    fn ev(t: u64, pid: u32, kind: &str) -> HistoryRecord {
        HistoryRecord {
            at_us: t,
            gpid: Gpid::new("h", pid),
            kind: kind.into(),
            detail: String::new(),
        }
    }

    #[test]
    fn render_is_chronological_text() {
        let out = render(&[ev(1000, 1, "fork"), ev(2000, 1, "exit")], "log");
        assert!(out.contains("log"));
        assert!(out.contains("fork"));
        assert!(out.contains("2 event(s)"));
        let fork = out.find("fork").unwrap();
        let exit = out.find("exit").unwrap();
        assert!(fork < exit);
    }

    #[test]
    fn profiles_count_correctly() {
        let events = vec![ev(1, 1, "fork"), ev(2, 1, "exit"), ev(3, 2, "fork")];
        let kinds = kind_profile(&events);
        assert_eq!(kinds["fork"], 2);
        assert_eq!(kinds["exit"], 1);
        let procs = process_profile(&events);
        assert_eq!(procs["<h, 1>"], 2);
        assert_eq!(procs["<h, 2>"], 1);
        let out = render_profile(&events, "profile");
        assert!(out.contains("fork"));
    }
}
