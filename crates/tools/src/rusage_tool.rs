//! The exited-process resource-consumption statistics tool — the second
//! of the paper's two implemented tools.

use std::fmt::Write as _;

use ppm_proto::types::RusageRecord;

/// Aggregate over a set of exit records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RusageSummary {
    /// Processes accounted.
    pub count: usize,
    /// Total CPU (µs).
    pub total_cpu_us: u64,
    /// Total messages.
    pub total_msgs: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Processes that ended by signal.
    pub signalled: usize,
}

/// Computes the aggregate.
pub fn summarize(records: &[RusageRecord]) -> RusageSummary {
    RusageSummary {
        count: records.len(),
        total_cpu_us: records.iter().map(|r| r.cpu_us).sum(),
        total_msgs: records.iter().map(|r| r.msgs).sum(),
        total_bytes: records.iter().map(|r| r.bytes).sum(),
        signalled: records.iter().filter(|r| r.status < 0).count(),
    }
}

/// Renders the records as the tool's report table.
pub fn render(records: &[RusageRecord], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<22} {:<12} {:>10} {:>8} {:>8} {:>6} {:>6}  status",
        "process", "command", "cpu(ms)", "msgs", "bytes", "files", "forks"
    );
    for r in records {
        let status = if r.status <= -1000 {
            format!("signal {}", -r.status - 1000)
        } else {
            format!("exit {}", r.status)
        };
        let _ = writeln!(
            out,
            "{:<22} {:<12} {:>10.1} {:>8} {:>8} {:>6} {:>6}  {status}",
            r.gpid.to_string(),
            r.command,
            r.cpu_us as f64 / 1000.0,
            r.msgs,
            r.bytes,
            r.files,
            r.forks,
        );
    }
    let s = summarize(records);
    let _ = writeln!(
        out,
        "total: {} process(es), {:.1} ms cpu, {} msgs, {} bytes, {} killed by signal",
        s.count,
        s.total_cpu_us as f64 / 1000.0,
        s.total_msgs,
        s.total_bytes,
        s.signalled
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_proto::types::Gpid;

    fn rec(pid: u32, cpu: u64, status: i32) -> RusageRecord {
        RusageRecord {
            gpid: Gpid::new("h", pid),
            command: "c".into(),
            exited_us: 0,
            status,
            cpu_us: cpu,
            msgs: 2,
            bytes: 100,
            files: 1,
            forks: 0,
        }
    }

    #[test]
    fn summary_totals() {
        let s = summarize(&[rec(1, 1000, 0), rec(2, 2000, -1009)]);
        assert_eq!(s.count, 2);
        assert_eq!(s.total_cpu_us, 3000);
        assert_eq!(s.total_msgs, 4);
        assert_eq!(s.total_bytes, 200);
        assert_eq!(s.signalled, 1);
    }

    #[test]
    fn render_formats_signals_and_exits() {
        let out = render(&[rec(1, 1500, 0), rec(2, 0, -1009)], "stats");
        assert!(out.contains("stats"));
        assert!(out.contains("exit 0"));
        assert!(out.contains("signal 9"));
        assert!(out.contains("<h, 1>"));
        assert!(out.contains("2 process(es)"));
        assert!(out.contains("1 killed by signal"));
    }

    #[test]
    fn empty_render() {
        let out = render(&[], "none");
        assert!(out.contains("0 process(es)"));
    }
}
