//! The snapshot display tool.
//!
//! "Our present tools include snapshots, with basic process control
//! functionalities (stop a process, execute it in the foreground, execute
//! it in the background, kill it)." This module renders the assembled
//! forest the way Figure 1 draws it, and provides the control verbs.

use std::fmt::Write as _;

use ppm_harness::harness::{HarnessError, PpmHarness};
use ppm_proto::msg::ControlAction;
use ppm_proto::types::{Gpid, ProcRecord, WireProcState};
use ppm_simos::ids::Uid;

use crate::forest::Forest;

/// Renders a snapshot as an ASCII forest grouped per tree, with states
/// and host boundaries visible — the Figure 1 display.
///
/// # Examples
///
/// ```
/// use ppm_proto::types::{Gpid, ProcRecord, WireProcState};
///
/// let art = ppm_tools::snapshot::render(
///     vec![ProcRecord {
///         gpid: Gpid::new("calder", 4),
///         ppid: 1,
///         logical_parent: None,
///         command: "simulate".into(),
///         state: WireProcState::Stopped,
///         started_us: 0,
///         cpu_us: 0,
///         adopted: true,
///     }],
///     "my snapshot",
/// );
/// assert!(art.contains("<calder, 4> simulate [stopped]"));
/// ```
pub fn render(records: Vec<ProcRecord>, title: &str) -> String {
    let forest = Forest::build(records);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{} process(es) in {} tree(s) across hosts: {}",
        forest.len(),
        forest.tree_count(),
        forest.hosts().join(", ")
    );
    for root in forest.roots() {
        for (depth, node) in forest.walk(root) {
            let indent = "   ".repeat(depth);
            let marker = if depth == 0 { "*" } else { "└─" };
            let state = match node.record.state {
                WireProcState::Dead => " [exited]",
                WireProcState::Stopped => " [stopped]",
                WireProcState::Embryo => " [embryo]",
                WireProcState::Running => "",
            };
            let cross = match (&node.record.logical_parent, depth) {
                (Some(lp), d) if d > 0 && lp.host != node.record.gpid.host => "  <- remote child",
                _ => "",
            };
            let _ = writeln!(
                out,
                "{indent}{marker} {} {}{state}{cross}",
                node.record.gpid, node.record.command
            );
        }
    }
    out
}

/// The interactive snapshot tool: display plus the four control verbs.
#[derive(Debug)]
pub struct SnapshotTool<'a> {
    ppm: &'a mut PpmHarness,
    from_host: String,
    uid: Uid,
}

impl<'a> SnapshotTool<'a> {
    /// Creates a tool session for a user at a host.
    pub fn new(ppm: &'a mut PpmHarness, from_host: impl Into<String>, uid: Uid) -> Self {
        SnapshotTool {
            ppm,
            from_host: from_host.into(),
            uid,
        }
    }

    /// Takes and renders a snapshot of `dest` (host name or `"*"`). A
    /// partial sweep (some hosts unreachable) renders a warning footer
    /// naming the hosts whose slices are absent.
    ///
    /// # Errors
    ///
    /// Propagates harness/tool errors.
    pub fn show(&mut self, dest: &str) -> Result<String, HarnessError> {
        let (records, missing) = self.ppm.snapshot_partial(&self.from_host, self.uid, dest)?;
        let title = format!("PPM snapshot of {dest} for {}", self.uid);
        let mut out = render(records, &title);
        if !missing.is_empty() {
            let _ = writeln!(
                out,
                "! partial result: no answer from {}",
                missing.join(", ")
            );
        }
        Ok(out)
    }

    /// Stops a process.
    ///
    /// # Errors
    ///
    /// Propagates harness/tool errors.
    pub fn stop(&mut self, target: &Gpid) -> Result<(), HarnessError> {
        self.ppm
            .control(&self.from_host, self.uid, target, ControlAction::Stop)
    }

    /// Continues a process in the foreground.
    ///
    /// # Errors
    ///
    /// Propagates harness/tool errors.
    pub fn foreground(&mut self, target: &Gpid) -> Result<(), HarnessError> {
        self.ppm
            .control(&self.from_host, self.uid, target, ControlAction::Foreground)
    }

    /// Continues a process in the background.
    ///
    /// # Errors
    ///
    /// Propagates harness/tool errors.
    pub fn background(&mut self, target: &Gpid) -> Result<(), HarnessError> {
        self.ppm
            .control(&self.from_host, self.uid, target, ControlAction::Background)
    }

    /// Kills a process.
    ///
    /// # Errors
    ///
    /// Propagates harness/tool errors.
    pub fn kill(&mut self, target: &Gpid) -> Result<(), HarnessError> {
        self.ppm
            .control(&self.from_host, self.uid, target, ControlAction::Kill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(host: &str, pid: u32, logical: Option<(&str, u32)>, state: WireProcState) -> ProcRecord {
        ProcRecord {
            gpid: Gpid::new(host, pid),
            ppid: 1,
            logical_parent: logical.map(|(h, p)| Gpid::new(h, p)),
            command: format!("cmd{pid}"),
            state,
            started_us: 0,
            cpu_us: 0,
            adopted: true,
        }
    }

    #[test]
    fn render_shows_tree_structure_and_states() {
        let out = render(
            vec![
                rec("a", 10, None, WireProcState::Dead),
                rec("b", 20, Some(("a", 10)), WireProcState::Running),
                rec("c", 30, Some(("a", 10)), WireProcState::Stopped),
            ],
            "test snapshot",
        );
        assert!(out.contains("test snapshot"));
        assert!(out.contains("3 process(es) in 1 tree(s)"));
        assert!(out.contains("<a, 10> cmd10 [exited]"));
        assert!(out.contains("<b, 20> cmd20"));
        assert!(out.contains("<c, 30> cmd30 [stopped]"));
        assert!(out.contains("remote child"));
        // Children indented under the root.
        let root_line = out.lines().position(|l| l.contains("<a, 10>")).unwrap();
        let child_line = out.lines().position(|l| l.contains("<b, 20>")).unwrap();
        assert!(child_line > root_line);
        assert!(out.lines().nth(child_line).unwrap().starts_with("   "));
    }

    #[test]
    fn render_empty_snapshot() {
        let out = render(vec![], "empty");
        assert!(out.contains("0 process(es) in 0 tree(s)"));
    }
}
