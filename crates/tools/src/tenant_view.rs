//! Per-tenant views of the multi-tenant scale world.
//!
//! The paper's display tools are *personal*: a user's snapshot shows that
//! user's computation tree and nobody else's. At multi-tenant scale the
//! same rule holds structurally — every renderer here takes one
//! [`UserShard`] (or names one user of a [`TenantWorld`]), so a view of
//! user A is built exclusively from A's arenas and can never observe
//! user B's processes. The world-level summary aggregates only per-shard
//! totals, never individual records.

use std::fmt::Write as _;

use ppm_harness::tenant::{TenantWorld, UserShard};

use crate::forest::Forest;

/// Assembles one user's whole distributed forest — every host's arena
/// slice of that shard, linked by local and cross-host logical edges.
pub fn user_forest(shard: &UserShard) -> Forest {
    Forest::build(shard.snapshot())
}

/// Renders one user's display: identity, per-host manager slots, and the
/// shard's forest shape. Deterministic text, sorted by host.
pub fn render_user(world: &TenantWorld, user: u32) -> String {
    let shard = world.shard(user);
    let forest = user_forest(shard);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} forked {} exited {} live {} tracked {}",
        shard.uid(),
        shard.forked,
        shard.exited,
        shard.live_total(),
        shard.tracked_total()
    );
    for host in shard.lpm_hosts() {
        let slot = shard.lpm(host).expect("listed host has a slot");
        let tracked = shard.genealogy(host).map_or(0, |g| g.len());
        let _ = writeln!(
            out,
            "  {} lpm pid {} port {} forks {} tracked {}",
            world.host_name(host),
            slot.pid,
            slot.port,
            slot.forks,
            tracked
        );
    }
    let _ = writeln!(
        out,
        "  forest {} processes in {} trees on {} hosts",
        forest.len(),
        forest.tree_count(),
        forest.hosts().len()
    );
    out
}

/// Renders the world's top-`n` users by fork count: the operator's view
/// of where the storm's Zipf mass went. Aggregates per-shard totals only.
pub fn render_top(world: &TenantWorld, n: usize) -> String {
    let mut ranked: Vec<(u64, u32)> = world
        .shards()
        .iter()
        .enumerate()
        .map(|(rank, s)| (s.forked, rank as u32))
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut out = String::from("rank uid forked exited live lpm_hosts\n");
    for &(forked, rank) in ranked.iter().take(n) {
        let shard = world.shard(rank);
        let _ = writeln!(
            out,
            "{rank} {} {forked} {} {} {}",
            shard.uid(),
            shard.exited,
            shard.live_total(),
            shard.lpm_hosts().len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_simos::workload::StormSpec;
    use std::collections::BTreeSet;

    fn small_world() -> TenantWorld {
        let mut world = TenantWorld::new(StormSpec::new(8, 3, 21), 1_500);
        world.run();
        world
    }

    #[test]
    fn a_users_view_never_shows_another_tenant() {
        let world = small_world();
        // Collect each shard's (host, pid) identities; any forest built
        // for user A must draw only from A's set.
        let owned: Vec<BTreeSet<(String, u32)>> = world
            .shards()
            .iter()
            .map(|s| {
                s.snapshot()
                    .into_iter()
                    .map(|r| (r.gpid.host.clone(), r.gpid.pid))
                    .collect()
            })
            .collect();
        for (user, mine) in owned.iter().enumerate() {
            let forest = user_forest(world.shard(user as u32));
            for root in forest.roots() {
                for (_, node) in forest.walk(root) {
                    let key = (node.record.gpid.host.clone(), node.record.gpid.pid);
                    assert!(
                        mine.contains(&key),
                        "user {user}'s forest shows {} it does not own",
                        node.record.gpid
                    );
                    for (other, theirs) in owned.iter().enumerate() {
                        if other != user {
                            assert!(
                                !theirs.contains(&key),
                                "{} visible to user {user} belongs to {other}",
                                node.record.gpid
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn renders_are_deterministic() {
        let a = small_world();
        let b = small_world();
        assert_eq!(render_top(&a, 5), render_top(&b, 5));
        for u in 0..8 {
            assert_eq!(render_user(&a, u), render_user(&b, u));
        }
    }

    #[test]
    fn top_table_is_rank_ordered_by_forks() {
        let world = small_world();
        let table = render_top(&world, 8);
        let forked: Vec<u64> = table
            .lines()
            .skip(1)
            .map(|l| l.split_whitespace().nth(2).unwrap().parse().unwrap())
            .collect();
        assert!(forked.windows(2).all(|w| w[0] >= w[1]), "sorted: {table}");
        assert_eq!(forked.iter().sum::<u64>(), 1_500, "every fork attributed");
    }
}
