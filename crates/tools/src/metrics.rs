//! The metrics tool — pulls a live LPM's metrics registry over the wire.
//!
//! Where `ppm-sim --metrics` samples every registry out-of-band at end of
//! run, this tool asks a *running* LPM for its counters through the same
//! authenticated request path as every other operation
//! ([`ppm_proto::msg::Op::Metrics`]). The LPM answers with a dedicated
//! [`ppm_proto::msg::Msg::MetricsSnapshot`] frame, so the registry
//! arrives timestamped on the answering host's sim clock.

use ppm_core::client::ToolStep;
use ppm_harness::harness::{HarnessError, PpmHarness};
use ppm_proto::msg::{Op, Reply};
use ppm_proto::types::MetricRow;
use ppm_simnet::time::SimDuration;
use ppm_simos::ids::Uid;

/// One LPM's pulled registry.
#[derive(Debug, Clone, PartialEq)]
pub struct HostMetrics {
    /// The answering host.
    pub host: String,
    /// The answering host's sim clock when it sampled the registry (µs).
    pub at_us: u64,
    /// Name-sorted metric rows.
    pub rows: Vec<MetricRow>,
}

/// Pulls the metrics registry of the LPM on `dest`.
///
/// # Errors
///
/// Tool/LPM/timeout errors as [`HarnessError`].
pub fn pull(
    ppm: &mut PpmHarness,
    from_host: &str,
    uid: Uid,
    dest: &str,
) -> Result<HostMetrics, HarnessError> {
    let (host, at_us, rows) = ppm.metrics_pull(from_host, uid, dest)?;
    Ok(HostMetrics { host, at_us, rows })
}

/// Wait budget for the all-hosts sweep.
const WAIT: SimDuration = SimDuration::from_secs(60);

/// Pulls every host's registry through one pipelined tool, tolerating
/// unreachable hosts (they are simply absent from the result).
///
/// # Errors
///
/// Only infrastructure failures (the tool could not run at all)
/// propagate.
pub fn pull_all(
    ppm: &mut PpmHarness,
    from_host: &str,
    uid: Uid,
) -> Result<Vec<HostMetrics>, HarnessError> {
    let hosts = ppm.host_names();
    let script: Vec<ToolStep> = hosts
        .iter()
        .map(|h| ToolStep::new(h.clone(), Op::Metrics))
        .collect();
    let window = script.len().max(1);
    let outcome = match ppm.run_tool_pipelined(from_host, uid, script, window, WAIT) {
        Ok(outcome) => outcome,
        Err(HarnessError::Timeout) => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for i in 0..hosts.len() {
        if let Some(Reply::Metrics { host, at_us, rows }) = outcome.reply(i) {
            out.push(HostMetrics {
                host: host.clone(),
                at_us: *at_us,
                rows: rows.clone(),
            });
        }
    }
    Ok(out)
}

/// Renders pulled registries in the same stable text format as
/// `ppm-sim --metrics`, one section per host.
pub fn report(pulls: &[HostMetrics]) -> String {
    let sections: Vec<(String, Vec<MetricRow>)> = pulls
        .iter()
        .map(|p| (p.host.clone(), p.rows.clone()))
        .collect();
    ppm_core::obs::render_metrics(&sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::config::PpmConfig;
    use ppm_simnet::topology::CpuClass;

    const USER: Uid = Uid(100);

    fn harness() -> PpmHarness {
        PpmHarness::builder()
            .host("a", CpuClass::Vax780)
            .host("b", CpuClass::Vax750)
            .link("a", "b")
            .user(USER, 7, &["a"], PpmConfig::default())
            .build()
    }

    #[test]
    fn remote_pull_reflects_lpm_activity() {
        let mut ppm = harness();
        // Generate request traffic through b's LPM.
        ppm.spawn_remote("a", USER, "b", "w", None, None).unwrap();

        let m = pull(&mut ppm, "a", USER, "b").unwrap();
        assert_eq!(m.host, "b");
        assert!(m.at_us > 0);
        let req = m.rows.iter().find(|r| r.name == "rpc.requests").unwrap();
        assert_eq!(req.kind, 0);
        assert!(req.value >= 1, "spawn must count as a request: {m:?}");
    }

    #[test]
    fn pull_all_covers_every_host_and_renders() {
        let mut ppm = harness();
        ppm.spawn_remote("a", USER, "b", "w", None, None).unwrap();

        let pulls = pull_all(&mut ppm, "a", USER).unwrap();
        let mut hosts: Vec<&str> = pulls.iter().map(|p| p.host.as_str()).collect();
        hosts.sort_unstable();
        assert_eq!(hosts, vec!["a", "b"]);

        let text = report(&pulls);
        assert!(text.contains("rpc.requests"), "{text}");
        assert!(text
            .lines()
            .all(|l| l.starts_with("a ") || l.starts_with("b ")));
    }
}
