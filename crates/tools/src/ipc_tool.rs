//! IPC activity tracing and analysis — one of the tools Section 7 plans
//! ("one for IPC activity tracing and analysis").
//!
//! Two data sources: per-connection statistics from the substrate (what a
//! kernel instrumentation system à la METRIC would export) and the LPM's
//! `msg-sent`/`msg-recv` history events for traced processes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ppm_proto::types::HistoryRecord;
use ppm_simos::world::World;

/// One row of the connection report.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnReport {
    /// `host:pid` of the initiator.
    pub client: String,
    /// `host:pid` of the acceptor.
    pub server: String,
    /// Server port.
    pub port: u16,
    /// Messages each way (to server, to client).
    pub msgs: (u64, u64),
    /// Bytes each way.
    pub bytes: (u64, u64),
    /// Whether the connection is still open.
    pub open: bool,
}

/// Extracts the connection table from the world.
pub fn connection_report(world: &World) -> Vec<ConnReport> {
    world
        .core()
        .connections()
        .map(|c| {
            let name = |(h, p): ppm_simos::program::ProcKey| {
                format!("{}:{}", world.core().host_name(h), p)
            };
            ConnReport {
                client: name(c.client),
                server: name(c.server),
                port: c.port.0,
                msgs: (c.stats.msgs_to_server, c.stats.msgs_to_client),
                bytes: (c.stats.bytes_to_server, c.stats.bytes_to_client),
                open: c.stats.closed_at.is_none(),
            }
        })
        .collect()
}

/// Per-process message activity derived from LPM history events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcIpcActivity {
    /// Messages sent.
    pub sent: u64,
    /// Messages received.
    pub received: u64,
}

/// Aggregates `msg-sent`/`msg-recv` history events per process.
pub fn activity_from_history(events: &[HistoryRecord]) -> BTreeMap<String, ProcIpcActivity> {
    let mut map: BTreeMap<String, ProcIpcActivity> = BTreeMap::new();
    for e in events {
        let entry = map.entry(e.gpid.to_string()).or_default();
        match e.kind.as_str() {
            "msg-sent" => entry.sent += 1,
            "msg-recv" => entry.received += 1,
            _ => {}
        }
    }
    map.retain(|_, a| a.sent + a.received > 0);
    map
}

/// Renders the connection report.
pub fn render_connections(rows: &[ConnReport], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<18} {:<18} {:>6} {:>12} {:>14} {:>6}",
        "client", "server", "port", "msgs(>/<)", "bytes(>/<)", "state"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<18} {:<18} {:>6} {:>5}/{:<6} {:>6}/{:<7} {:>6}",
            r.client,
            r.server,
            r.port,
            r.msgs.0,
            r.msgs.1,
            r.bytes.0,
            r.bytes.1,
            if r.open { "open" } else { "closed" }
        );
    }
    let total_msgs: u64 = rows.iter().map(|r| r.msgs.0 + r.msgs.1).sum();
    let total_bytes: u64 = rows.iter().map(|r| r.bytes.0 + r.bytes.1).sum();
    let _ = writeln!(
        out,
        "{} connection(s), {total_msgs} messages, {total_bytes} bytes",
        rows.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_proto::types::Gpid;

    fn hist(pid: u32, kind: &str) -> HistoryRecord {
        HistoryRecord {
            at_us: 0,
            gpid: Gpid::new("h", pid),
            kind: kind.into(),
            detail: String::new(),
        }
    }

    #[test]
    fn activity_counts_per_process() {
        let events = vec![
            hist(1, "msg-sent"),
            hist(1, "msg-sent"),
            hist(1, "msg-recv"),
            hist(2, "msg-recv"),
            hist(3, "exit"),
        ];
        let act = activity_from_history(&events);
        assert_eq!(act.len(), 2, "processes without IPC excluded");
        assert_eq!(
            act["<h, 1>"],
            ProcIpcActivity {
                sent: 2,
                received: 1
            }
        );
        assert_eq!(
            act["<h, 2>"],
            ProcIpcActivity {
                sent: 0,
                received: 1
            }
        );
    }

    #[test]
    fn render_includes_totals() {
        let rows = vec![ConnReport {
            client: "a:1".into(),
            server: "b:2".into(),
            port: 40,
            msgs: (3, 2),
            bytes: (300, 200),
            open: true,
        }];
        let out = render_connections(&rows, "ipc report");
        assert!(out.contains("ipc report"));
        assert!(out.contains("a:1"));
        assert!(out.contains("open"));
        assert!(out.contains("1 connection(s), 5 messages, 500 bytes"));
    }
}
