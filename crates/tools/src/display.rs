//! The display tool — first on Section 7's wish list ("In particular a
//! display tool"). One call produces a dashboard of the user's entire
//! PPM: per-host LPM status (load, managed processes, sibling channels,
//! CCS view) plus the genealogical forest of the computations.

use std::fmt::Write as _;

use ppm_core::client::ToolStep;
use ppm_core::harness::{HarnessError, PpmHarness};
use ppm_proto::msg::{Op, Reply};
use ppm_simnet::time::SimDuration;
use ppm_simos::ids::Uid;

use crate::forest::Forest;

/// One host's row of the dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct HostStatus {
    /// Host name.
    pub host: String,
    /// Load average × 1000.
    pub load_milli: u32,
    /// Managed live processes.
    pub managed: u32,
    /// Sibling channel peers.
    pub siblings: Vec<String>,
    /// CCS as this LPM sees it.
    pub ccs: String,
    /// CCS epoch.
    pub epoch: u64,
    /// Whether the host answered at all.
    pub reachable: bool,
}

/// Collects per-host status for every host in the network, tolerating
/// unreachable ones (they appear with `reachable = false`).
///
/// All the status requests go out through one tool with a pipeline
/// window covering the whole host list, so slow hosts are probed
/// concurrently instead of serializing the dashboard.
///
/// # Errors
///
/// Only infrastructure failures (tool could not run at all) propagate.
pub fn gather_status(
    ppm: &mut PpmHarness,
    from_host: &str,
    uid: Uid,
) -> Result<Vec<HostStatus>, HarnessError> {
    let hosts: Vec<String> = ppm
        .world()
        .core()
        .topology()
        .host_ids()
        .map(|h| ppm.world().core().host_name(h).to_string())
        .collect();
    let script: Vec<ToolStep> = hosts
        .iter()
        .map(|h| ToolStep::new(h.clone(), Op::Status))
        .collect();
    let window = script.len().max(1);
    // Tolerate a partial outcome (e.g. the tool hit its own deadline):
    // hosts without a reply simply show as unreachable.
    let outcome = match ppm.run_tool_pipelined(from_host, uid, script, window, WAIT) {
        Ok(outcome) => outcome,
        Err(HarnessError::Timeout) => return Ok(hosts.iter().map(|h| dark_row(h)).collect()),
        Err(e) => return Err(e),
    };
    let mut rows = Vec::new();
    for (i, queried) in hosts.iter().enumerate() {
        match outcome.reply(i) {
            Some(Reply::Status {
                host,
                load_milli,
                managed,
                siblings,
                ccs,
                epoch,
            }) => {
                rows.push(HostStatus {
                    host: host.clone(),
                    load_milli: *load_milli,
                    managed: *managed,
                    siblings: siblings.clone(),
                    ccs: ccs.clone(),
                    epoch: *epoch,
                    reachable: true,
                });
            }
            _ => rows.push(dark_row(queried)),
        }
    }
    Ok(rows)
}

/// Wait budget for the dashboard sweep.
const WAIT: SimDuration = SimDuration::from_secs(60);

fn dark_row(host: &str) -> HostStatus {
    HostStatus {
        host: host.to_string(),
        load_milli: 0,
        managed: 0,
        siblings: Vec::new(),
        ccs: String::new(),
        epoch: 0,
        reachable: false,
    }
}

/// Renders the full dashboard: status table plus computation forest.
///
/// # Errors
///
/// Propagates snapshot/tool failures.
pub fn dashboard(ppm: &mut PpmHarness, from_host: &str, uid: Uid) -> Result<String, HarnessError> {
    let rows = gather_status(ppm, from_host, uid)?;
    let (records, missing) = ppm.snapshot_partial(from_host, uid, "*")?;
    let forest = Forest::build(records);
    Ok(render_dashboard(from_host, uid, &rows, &forest, &missing))
}

/// Renders the dashboard from already-gathered pieces. `missing` lists
/// hosts the snapshot sweep never heard from; a non-empty list is
/// surfaced as a warning so a partial result is never mistaken for the
/// whole picture.
pub fn render_dashboard(
    from_host: &str,
    uid: Uid,
    rows: &[HostStatus],
    forest: &Forest,
    missing: &[String],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PPM display for {uid} (from {from_host})");
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>8}  {:<10} {:>5}  siblings",
        "host", "load", "managed", "ccs", "epoch"
    );
    for r in rows {
        if r.reachable {
            let _ = writeln!(
                out,
                "{:<12} {:>6.2} {:>8}  {:<10} {:>5}  {}",
                r.host,
                r.load_milli as f64 / 1000.0,
                r.managed,
                r.ccs,
                r.epoch,
                r.siblings.join(", ")
            );
        } else {
            let _ = writeln!(out, "{:<12} {:>6}  (unreachable)", r.host, "-");
        }
    }
    let _ = writeln!(
        out,
        "\ncomputations: {} tree(s), {} process(es) across {}",
        forest.tree_count(),
        forest.len(),
        forest.hosts().join(", ")
    );
    if !missing.is_empty() {
        let _ = writeln!(
            out,
            "  warning: snapshot incomplete, no answer from {}",
            missing.join(", ")
        );
    }
    for root in forest.roots() {
        for (depth, node) in forest.walk(root) {
            let _ = writeln!(
                out,
                "{}{} {} {} ({})",
                "  ".repeat(depth + 1),
                if depth == 0 { "*" } else { "-" },
                node.record.gpid,
                node.record.command,
                node.record.state
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::config::PpmConfig;
    use ppm_simnet::time::SimDuration;
    use ppm_simnet::topology::CpuClass;

    const USER: Uid = Uid(100);

    #[test]
    fn dashboard_covers_all_hosts_and_trees() {
        let mut ppm = PpmHarness::builder()
            .host("x", CpuClass::Vax780)
            .host("y", CpuClass::Vax750)
            .link("x", "y")
            .user(USER, 7, &["x"], PpmConfig::default())
            .build();
        let root = ppm
            .spawn_remote("x", USER, "x", "master", None, None)
            .unwrap();
        ppm.spawn_remote("x", USER, "y", "worker", Some(root), None)
            .unwrap();

        let out = dashboard(&mut ppm, "x", USER).unwrap();
        assert!(out.contains("PPM display"));
        assert!(out.contains("x "));
        assert!(out.contains("y "));
        assert!(out.contains("master"));
        assert!(out.contains("1 tree(s)"));
        assert!(out.contains("2 process(es)"));
    }

    #[test]
    fn render_warns_on_partial_snapshot() {
        let rows = vec![dark_row("y")];
        let forest = Forest::build(Vec::new());
        let missing = vec!["y".to_string()];
        let out = render_dashboard("x", USER, &rows, &forest, &missing);
        assert!(out.contains("snapshot incomplete"), "{out}");
        assert!(out.contains("no answer from y"), "{out}");
        // A complete sweep renders no warning.
        let out = render_dashboard("x", USER, &rows, &forest, &[]);
        assert!(!out.contains("snapshot incomplete"), "{out}");
    }

    #[test]
    fn unreachable_hosts_are_marked() {
        let mut ppm = PpmHarness::builder()
            .host("x", CpuClass::Vax780)
            .host("y", CpuClass::Vax750)
            .link("x", "y")
            .user(USER, 7, &["x"], PpmConfig::fast_recovery())
            .build();
        ppm.spawn_remote("x", USER, "y", "w", None, None).unwrap();
        let y = ppm.host("y").unwrap();
        ppm.world_mut()
            .schedule_crash(y, SimDuration::from_millis(10));
        ppm.run_for(SimDuration::from_secs(2));
        let rows = gather_status(&mut ppm, "x", USER).unwrap();
        let yrow = rows.iter().find(|r| r.host == "y").unwrap();
        assert!(!yrow.reachable);
        let xrow = rows.iter().find(|r| r.host == "x").unwrap();
        assert!(xrow.reachable);
    }
}
