//! The display tool — first on Section 7's wish list ("In particular a
//! display tool"). One call produces a dashboard of the user's entire
//! PPM: per-host LPM status (load, managed processes, sibling channels,
//! CCS view) plus the genealogical forest of the computations.

use std::fmt::Write as _;

use ppm_core::client::ToolStep;
use ppm_harness::harness::{HarnessError, PpmHarness};
use ppm_proto::msg::{Op, Reply};
use ppm_simnet::time::SimDuration;
use ppm_simos::ids::Uid;

use crate::forest::Forest;

/// Host liveness as the simulation sees it: whether the host is powered
/// and whether it has ever been power-cycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Liveness {
    /// Powered, never crashed.
    Up,
    /// Powered off (crashed, not yet restarted).
    Down,
    /// Powered, but rebooted at least once since the world started.
    Restarted,
}

impl std::fmt::Display for Liveness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // pad, not write_str: honour width flags in table columns.
        f.pad(match self {
            Liveness::Up => "up",
            Liveness::Down => "down",
            Liveness::Restarted => "restarted",
        })
    }
}

/// One host's row of the dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct HostStatus {
    /// Host name.
    pub host: String,
    /// Power state.
    pub liveness: Liveness,
    /// Load average × 1000.
    pub load_milli: u32,
    /// Managed live processes.
    pub managed: u32,
    /// Sibling channel peers.
    pub siblings: Vec<String>,
    /// CCS as this LPM sees it.
    pub ccs: String,
    /// CCS epoch.
    pub epoch: u64,
    /// Whether the host answered at all.
    pub reachable: bool,
}

/// Collects per-host status for every host in the network, tolerating
/// unreachable ones (they appear with `reachable = false`).
///
/// All the status requests go out through one tool with a pipeline
/// window covering the whole host list, so slow hosts are probed
/// concurrently instead of serializing the dashboard.
///
/// # Errors
///
/// Only infrastructure failures (tool could not run at all) propagate.
pub fn gather_status(
    ppm: &mut PpmHarness,
    from_host: &str,
    uid: Uid,
) -> Result<Vec<HostStatus>, HarnessError> {
    let core = ppm.world().core();
    let hosts: Vec<(String, Liveness)> = core
        .topology()
        .host_ids()
        .map(|h| {
            let name = core.host_name(h).to_string();
            let live = if !core.topology().is_up(h) {
                Liveness::Down
            } else if core.kernel(h).boot_count() > 1 {
                Liveness::Restarted
            } else {
                Liveness::Up
            };
            (name, live)
        })
        .collect();
    let script: Vec<ToolStep> = hosts
        .iter()
        .map(|(h, _)| ToolStep::new(h.clone(), Op::Status))
        .collect();
    let window = script.len().max(1);
    // Tolerate a partial outcome (e.g. the tool hit its own deadline):
    // hosts without a reply simply show as unreachable.
    let outcome = match ppm.run_tool_pipelined(from_host, uid, script, window, WAIT) {
        Ok(outcome) => outcome,
        Err(HarnessError::Timeout) => {
            return Ok(hosts.iter().map(|(h, l)| dark_row(h, *l)).collect())
        }
        Err(e) => return Err(e),
    };
    let mut rows = Vec::new();
    for (i, (queried, live)) in hosts.iter().enumerate() {
        match outcome.reply(i) {
            Some(Reply::Status {
                host,
                load_milli,
                managed,
                siblings,
                ccs,
                epoch,
            }) => {
                rows.push(HostStatus {
                    host: host.clone(),
                    liveness: *live,
                    load_milli: *load_milli,
                    managed: *managed,
                    siblings: siblings.clone(),
                    ccs: ccs.clone(),
                    epoch: *epoch,
                    reachable: true,
                });
            }
            _ => rows.push(dark_row(queried, *live)),
        }
    }
    Ok(rows)
}

/// Wait budget for the dashboard sweep.
const WAIT: SimDuration = SimDuration::from_secs(60);

fn dark_row(host: &str, liveness: Liveness) -> HostStatus {
    HostStatus {
        host: host.to_string(),
        liveness,
        load_milli: 0,
        managed: 0,
        siblings: Vec::new(),
        ccs: String::new(),
        epoch: 0,
        reachable: false,
    }
}

/// Renders the full dashboard: status table plus computation forest,
/// plus the per-link network section when a topology model is installed
/// (flat-wire worlds render exactly the pre-netmodel bytes).
///
/// # Errors
///
/// Propagates snapshot/tool failures.
pub fn dashboard(ppm: &mut PpmHarness, from_host: &str, uid: Uid) -> Result<String, HarnessError> {
    let rows = gather_status(ppm, from_host, uid)?;
    let (records, missing) = ppm.snapshot_partial(from_host, uid, "*")?;
    let forest = Forest::build(records);
    let mut out = render_dashboard(from_host, uid, &rows, &forest, &missing);
    if let Some((name, links)) = net_rows(ppm) {
        out.push_str(&render_net(&name, &links, NET_TOP_LINKS));
    }
    Ok(out)
}

/// How many of the busiest links the dashboard's network section shows.
pub const NET_TOP_LINKS: usize = 8;

/// One link's row of the dashboard's network section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetLinkRow {
    /// Link name as declared in the topology spec.
    pub name: String,
    /// Total bytes admitted.
    pub bytes: u64,
    /// Transfers admitted.
    pub sends: u64,
    /// Transfers that saw at least one in-flight competitor.
    pub congested: u64,
    /// Total queueing penalty accrued, µs.
    pub queue_us: u64,
    /// Counts toward bisection bandwidth (`core` flag in the spec).
    pub core: bool,
    /// Administratively up (not cut by a fault plan).
    pub up: bool,
}

/// Per-link traffic rows, busiest first (ties keep declaration order),
/// or `None` when the world runs the flat wire law (no net model).
#[must_use]
pub fn net_rows(ppm: &PpmHarness) -> Option<(String, Vec<NetLinkRow>)> {
    let net = ppm.world().core().net()?;
    let mut rows: Vec<NetLinkRow> = net
        .graph
        .links
        .iter()
        .zip(net.link_stats())
        .map(|(l, (name, s))| NetLinkRow {
            name: name.to_string(),
            bytes: s.bytes,
            sends: s.sends,
            congested: s.congested,
            queue_us: s.queue_us,
            core: l.core,
            up: l.up,
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.bytes));
    Some((net.name.clone(), rows))
}

/// Renders the network section: totals plus the `max` busiest links.
#[must_use]
pub fn render_net(name: &str, rows: &[NetLinkRow], max: usize) -> String {
    let mut out = String::new();
    let sends: u64 = rows.iter().map(|r| r.sends).sum();
    let congested: u64 = rows.iter().map(|r| r.congested).sum();
    let bisection: u64 = rows.iter().filter(|r| r.core).map(|r| r.bytes).sum();
    let _ = writeln!(
        out,
        "\nnetwork {name}: {} link(s), {sends} traversal(s), {congested} congested, \
         {bisection} bisection byte(s)",
        rows.len(),
    );
    let _ = writeln!(
        out,
        "{:<24} {:>9} {:>7} {:>9} {:>9}",
        "link", "bytes", "sends", "congested", "queue_ms"
    );
    for r in rows.iter().take(max) {
        let _ = writeln!(
            out,
            "{:<24} {:>9} {:>7} {:>9} {:>9.2}{}{}",
            r.name,
            r.bytes,
            r.sends,
            r.congested,
            r.queue_us as f64 / 1000.0,
            if r.core { "  core" } else { "" },
            if r.up { "" } else { "  DOWN" },
        );
    }
    if rows.len() > max {
        let _ = writeln!(out, "  ... and {} more link(s)", rows.len() - max);
    }
    out
}

/// Renders the dashboard from already-gathered pieces. `missing` lists
/// hosts the snapshot sweep never heard from; a non-empty list is
/// surfaced as a warning so a partial result is never mistaken for the
/// whole picture.
pub fn render_dashboard(
    from_host: &str,
    uid: Uid,
    rows: &[HostStatus],
    forest: &Forest,
    missing: &[String],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "PPM display for {uid} (from {from_host})");
    let _ = writeln!(
        out,
        "{:<12} {:<10} {:>6} {:>8}  {:<10} {:>5}  siblings",
        "host", "state", "load", "managed", "ccs", "epoch"
    );
    for r in rows {
        if r.reachable {
            let _ = writeln!(
                out,
                "{:<12} {:<10} {:>6.2} {:>8}  {:<10} {:>5}  {}",
                r.host,
                r.liveness,
                r.load_milli as f64 / 1000.0,
                r.managed,
                r.ccs,
                r.epoch,
                r.siblings.join(", ")
            );
        } else {
            let _ = writeln!(
                out,
                "{:<12} {:<10} {:>6}  (unreachable)",
                r.host, r.liveness, "-"
            );
        }
    }
    let _ = writeln!(
        out,
        "\ncomputations: {} tree(s), {} process(es) across {}",
        forest.tree_count(),
        forest.len(),
        forest.hosts().join(", ")
    );
    if !missing.is_empty() {
        let _ = writeln!(
            out,
            "  warning: snapshot incomplete, no answer from {}",
            missing.join(", ")
        );
    }
    let mut failure_roots = 0;
    for root in forest.roots() {
        let failure = forest.is_failure_root(root);
        failure_roots += usize::from(failure);
        for (depth, node) in forest.walk(root) {
            let _ = writeln!(
                out,
                "{}{} {} {} ({})",
                "  ".repeat(depth + 1),
                match (depth, failure) {
                    (0, true) => "!",
                    (0, false) => "*",
                    _ => "-",
                },
                node.record.gpid,
                node.record.command,
                node.record.state
            );
        }
    }
    if failure_roots > 0 {
        let _ = writeln!(
            out,
            "  !: {failure_roots} root(s) created by a failure (re-adopted, \
             logical parent unknown)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::config::PpmConfig;
    use ppm_simnet::time::SimDuration;
    use ppm_simnet::topology::CpuClass;

    const USER: Uid = Uid(100);

    #[test]
    fn dashboard_covers_all_hosts_and_trees() {
        let mut ppm = PpmHarness::builder()
            .host("x", CpuClass::Vax780)
            .host("y", CpuClass::Vax750)
            .link("x", "y")
            .user(USER, 7, &["x"], PpmConfig::default())
            .build();
        let root = ppm
            .spawn_remote("x", USER, "x", "master", None, None)
            .unwrap();
        ppm.spawn_remote("x", USER, "y", "worker", Some(root), None)
            .unwrap();

        let out = dashboard(&mut ppm, "x", USER).unwrap();
        assert!(out.contains("PPM display"));
        assert!(out.contains("x "));
        assert!(out.contains("y "));
        assert!(out.contains("master"));
        assert!(out.contains("1 tree(s)"));
        assert!(out.contains("2 process(es)"));
    }

    #[test]
    fn render_warns_on_partial_snapshot() {
        let rows = vec![dark_row("y", Liveness::Down)];
        let forest = Forest::build(Vec::new());
        let missing = vec!["y".to_string()];
        let out = render_dashboard("x", USER, &rows, &forest, &missing);
        assert!(out.contains("snapshot incomplete"), "{out}");
        assert!(out.contains("no answer from y"), "{out}");
        // A complete sweep renders no warning.
        let out = render_dashboard("x", USER, &rows, &forest, &[]);
        assert!(!out.contains("snapshot incomplete"), "{out}");
    }

    #[test]
    fn liveness_column_tracks_crash_and_restart() {
        let mut ppm = PpmHarness::builder()
            .host("x", CpuClass::Vax780)
            .host("y", CpuClass::Vax750)
            .link("x", "y")
            .user(USER, 7, &["x"], PpmConfig::fast_recovery())
            .build();
        let y = ppm.host("y").unwrap();
        ppm.world_mut()
            .schedule_crash(y, SimDuration::from_millis(10));
        ppm.run_for(SimDuration::from_secs(1));
        let rows = gather_status(&mut ppm, "x", USER).unwrap();
        let yrow = rows.iter().find(|r| r.host == "y").unwrap();
        assert_eq!(yrow.liveness, Liveness::Down);

        ppm.world_mut()
            .schedule_restart(y, SimDuration::from_millis(10));
        ppm.run_for(SimDuration::from_secs(2));
        let rows = gather_status(&mut ppm, "x", USER).unwrap();
        let yrow = rows.iter().find(|r| r.host == "y").unwrap();
        assert_eq!(yrow.liveness, Liveness::Restarted);
        let xrow = rows.iter().find(|r| r.host == "x").unwrap();
        assert_eq!(xrow.liveness, Liveness::Up);
    }

    #[test]
    fn failure_created_roots_are_marked() {
        use ppm_proto::types::{Gpid, ProcRecord, WireProcState};
        let rec = |pid: u32, ppid: u32| ProcRecord {
            gpid: Gpid::new("x", pid),
            ppid,
            logical_parent: None,
            command: "job".into(),
            state: WireProcState::Running,
            started_us: 0,
            cpu_us: 0,
            adopted: true,
        };
        // pid 9: re-adopted survivor, real parent lost (ppid 0 marker);
        // pid 10: normal root created by its LPM (pid 4).
        let forest = Forest::build(vec![rec(9, 0), rec(10, 4)]);
        let out = render_dashboard("x", USER, &[], &forest, &[]);
        assert!(out.contains("! <x, 9>"), "{out}");
        assert!(out.contains("* <x, 10>"), "{out}");
        assert!(out.contains("1 root(s) created by a failure"), "{out}");
    }

    #[test]
    fn network_section_appears_only_with_a_topology_model() {
        use ppm_simnet::topology::NetSpec;
        let build = |topo: Option<NetSpec>| {
            let mut b = PpmHarness::builder()
                .host("x", CpuClass::Vax780)
                .host("y", CpuClass::Vax750)
                .link("x", "y")
                .user(USER, 7, &["x"], PpmConfig::default());
            if let Some(t) = topo {
                b = b.topology(t);
            }
            b.build()
        };
        let mut flat = build(None);
        flat.spawn_remote("x", USER, "y", "w", None, None).unwrap();
        let out = dashboard(&mut flat, "x", USER).unwrap();
        assert!(!out.contains("network "), "{out}");
        assert!(net_rows(&flat).is_none());

        let spec = NetSpec::preset("full-mesh", &["x".into(), "y".into()]).unwrap();
        let mut routed = build(Some(spec));
        routed
            .spawn_remote("x", USER, "y", "w", None, None)
            .unwrap();
        let out = dashboard(&mut routed, "x", USER).unwrap();
        assert!(out.contains("network full-mesh: 1 link(s)"), "{out}");
        assert!(out.contains("queue_ms"), "{out}");
        let (_, rows) = net_rows(&routed).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].bytes > 0, "spawn traffic crossed the link");
        assert!(rows[0].up);
    }

    #[test]
    fn net_section_sorts_busiest_first_and_truncates() {
        let row = |name: &str, bytes: u64, core: bool| NetLinkRow {
            name: name.into(),
            bytes,
            sends: 1,
            congested: 0,
            queue_us: 1500,
            core,
            up: bytes != 7,
        };
        let rows = vec![row("b", 99, true), row("a", 10, false), row("c", 7, false)];
        let out = render_net("t", &rows, 2);
        assert!(out.contains("3 link(s), 3 traversal(s)"), "{out}");
        assert!(out.contains("99 bisection byte(s)"), "{out}");
        assert!(out.contains("core"), "{out}");
        assert!(out.contains("... and 1 more link(s)"), "{out}");
        assert!(!out.contains("c "), "truncated row rendered: {out}");
    }

    #[test]
    fn unreachable_hosts_are_marked() {
        let mut ppm = PpmHarness::builder()
            .host("x", CpuClass::Vax780)
            .host("y", CpuClass::Vax750)
            .link("x", "y")
            .user(USER, 7, &["x"], PpmConfig::fast_recovery())
            .build();
        ppm.spawn_remote("x", USER, "y", "w", None, None).unwrap();
        let y = ppm.host("y").unwrap();
        ppm.world_mut()
            .schedule_crash(y, SimDuration::from_millis(10));
        ppm.run_for(SimDuration::from_secs(2));
        let rows = gather_status(&mut ppm, "x", USER).unwrap();
        let yrow = rows.iter().find(|r| r.host == "y").unwrap();
        assert!(!yrow.reachable);
        let xrow = rows.iter().find(|r| r.host == "x").unwrap();
        assert!(xrow.reachable);
    }
}
