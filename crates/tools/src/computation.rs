//! Whole-computation operations.
//!
//! The paper's introduction motivates "user facilities for locating the
//! execution sites of a distributed computation and broadcasting, say, a
//! software interrupt to stop execution". This tool implements exactly
//! that: locate every member of the computation rooted at a process
//! (via a distributed snapshot and the assembled forest), then deliver a
//! control action to each member through the PPM.

use ppm_core::client::ToolStep;
use ppm_harness::harness::{HarnessError, PpmHarness};
use ppm_proto::msg::{ControlAction, ErrCode, Op, Reply};
use ppm_proto::types::{Gpid, WireProcState};
use ppm_simnet::time::SimDuration;
use ppm_simos::ids::Uid;

use crate::forest::Forest;

/// Where the members of a computation execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComputationSites {
    /// The root.
    pub root: Gpid,
    /// Every live member (root included, when alive), sorted.
    pub members: Vec<Gpid>,
    /// The distinct hosts involved, sorted.
    pub hosts: Vec<String>,
    /// Hosts the locating snapshot never heard from — members executing
    /// there, if any, are unknown. Empty for a complete sweep.
    pub unreachable: Vec<String>,
}

/// Locates the live members of the computation rooted at `root`.
///
/// A partial sweep (some hosts down or cut off) still succeeds: the
/// members found are returned and the silent hosts are listed in
/// [`ComputationSites::unreachable`] so the caller knows the answer may
/// be incomplete.
///
/// # Errors
///
/// Snapshot errors as [`HarnessError`]; an unknown root yields an empty
/// member list rather than an error (the computation may have ended).
pub fn locate(
    ppm: &mut PpmHarness,
    from_host: &str,
    uid: Uid,
    root: &Gpid,
) -> Result<ComputationSites, HarnessError> {
    let (records, unreachable) = ppm.snapshot_partial(from_host, uid, "*")?;
    let forest = Forest::build(records);
    let mut members = Vec::new();
    if forest.get(root).is_some() {
        for (_, node) in forest.walk(root) {
            if node.record.state != WireProcState::Dead {
                members.push(node.record.gpid.clone());
            }
        }
    }
    members.sort();
    let mut hosts: Vec<String> = members.iter().map(|g| g.host.clone()).collect();
    hosts.sort();
    hosts.dedup();
    Ok(ComputationSites {
        root: root.clone(),
        members,
        hosts,
        unreachable,
    })
}

/// Delivers `action` to every live member of the computation rooted at
/// `root` — the "broadcast a software interrupt" facility. Returns how
/// many members were signalled.
///
/// Members that disappear between the locating snapshot and the delivery
/// are skipped (their error is tolerated); other errors propagate. When
/// the locating snapshot was partial, members on the unreachable hosts
/// are unknown and therefore not signalled — use [`locate`] first if you
/// need to know the sweep was complete.
///
/// # Errors
///
/// Snapshot/tool failures as [`HarnessError`].
pub fn signal_computation(
    ppm: &mut PpmHarness,
    from_host: &str,
    uid: Uid,
    root: &Gpid,
    action: ControlAction,
) -> Result<usize, HarnessError> {
    let sites = locate(ppm, from_host, uid, root)?;
    if sites.members.is_empty() {
        return Ok(0);
    }
    // One tool delivers the whole interrupt wave: all control requests go
    // out pipelined on a single LPM connection instead of one tool run
    // per member.
    let script: Vec<ToolStep> = sites
        .members
        .iter()
        .map(|m| ToolStep::new(m.host.clone(), Op::Control { pid: m.pid, action }))
        .collect();
    let window = script.len();
    let wait = SimDuration::from_secs(60);
    let outcome = ppm.run_tool_pipelined(from_host, uid, script, window, wait)?;
    if let Some(err) = outcome.error {
        return Err(HarnessError::Tool(err));
    }
    let mut delivered = 0;
    for (i, member) in sites.members.iter().enumerate() {
        match outcome.reply(i) {
            Some(Reply::Ok) => delivered += 1,
            Some(Reply::Err {
                code: ErrCode::NoSuchProcess,
                ..
            }) => {
                // Raced with the process's own exit; consistent with the
                // paper's on-demand, best-effort administration.
            }
            Some(Reply::Err { code, detail }) => {
                return Err(HarnessError::Lpm(format!("{code:?}: {detail} ({member})")));
            }
            _ => return Err(HarnessError::UnexpectedReply),
        }
    }
    Ok(delivered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_core::config::PpmConfig;
    use ppm_simnet::time::SimDuration;
    use ppm_simnet::topology::CpuClass;
    use ppm_simos::process::ProcState;

    const USER: Uid = Uid(100);

    fn harness() -> PpmHarness {
        PpmHarness::builder()
            .host("a", CpuClass::Vax780)
            .host("b", CpuClass::Vax750)
            .host("c", CpuClass::Sun2)
            .link("a", "b")
            .link("b", "c")
            .user(USER, 7, &["a"], PpmConfig::default())
            .build()
    }

    fn build_computation(ppm: &mut PpmHarness) -> (Gpid, Vec<Gpid>) {
        let root = ppm
            .spawn_remote("a", USER, "a", "root", None, None)
            .unwrap();
        let w1 = ppm
            .spawn_remote("a", USER, "b", "w1", Some(root.clone()), None)
            .unwrap();
        let w2 = ppm
            .spawn_remote("a", USER, "c", "w2", Some(root.clone()), None)
            .unwrap();
        let w3 = ppm
            .spawn_remote("a", USER, "c", "w3", Some(w2.clone()), None)
            .unwrap();
        (root.clone(), vec![root, w1, w2, w3])
    }

    #[test]
    fn locate_finds_all_execution_sites() {
        let mut ppm = harness();
        let (root, members) = build_computation(&mut ppm);
        // An unrelated process must not be included.
        ppm.spawn_remote("a", USER, "b", "unrelated", None, None)
            .unwrap();

        let sites = locate(&mut ppm, "a", USER, &root).unwrap();
        assert_eq!(sites.hosts, vec!["a", "b", "c"]);
        let mut expect = members.clone();
        expect.sort();
        assert_eq!(sites.members, expect);
    }

    #[test]
    fn stop_interrupt_reaches_every_member() {
        let mut ppm = harness();
        let (root, members) = build_computation(&mut ppm);
        let n = signal_computation(&mut ppm, "a", USER, &root, ControlAction::Stop).unwrap();
        assert_eq!(n, members.len());
        ppm.run_for(SimDuration::from_millis(500));
        for m in &members {
            let host = ppm.host(&m.host).unwrap();
            let state = ppm
                .world()
                .core()
                .kernel(host)
                .get(ppm_simos::ids::Pid(m.pid))
                .unwrap()
                .state;
            assert_eq!(state, ProcState::Stopped, "{m}");
        }
        // And resume it.
        let n = signal_computation(&mut ppm, "a", USER, &root, ControlAction::Background).unwrap();
        assert_eq!(n, members.len());
        ppm.run_for(SimDuration::from_millis(500));
        let host = ppm.host(&members[1].host).unwrap();
        assert_eq!(
            ppm.world()
                .core()
                .kernel(host)
                .get(ppm_simos::ids::Pid(members[1].pid))
                .unwrap()
                .state,
            ProcState::Running
        );
    }

    #[test]
    fn kill_terminates_the_whole_computation() {
        let mut ppm = harness();
        let (root, members) = build_computation(&mut ppm);
        let n = signal_computation(&mut ppm, "a", USER, &root, ControlAction::Kill).unwrap();
        assert_eq!(n, members.len());
        ppm.run_for(SimDuration::from_secs(1));
        for m in &members {
            let host = ppm.host(&m.host).unwrap();
            assert!(
                !ppm.world()
                    .core()
                    .kernel(host)
                    .get(ppm_simos::ids::Pid(m.pid))
                    .unwrap()
                    .is_alive(),
                "{m}"
            );
        }
        // A later locate returns no live members.
        let sites = locate(&mut ppm, "a", USER, &root).unwrap();
        assert!(sites.members.is_empty());
    }

    #[test]
    fn locate_reports_unreachable_hosts() {
        // Short request timers, default (slow) recovery: the severed host
        // stays in the sibling membership, so the sweep runs partial.
        let cfg = PpmConfig {
            req_timeout: SimDuration::from_secs(1),
            req_deadline: SimDuration::from_secs(3),
            bcast_timeout: SimDuration::from_secs(2),
            ..PpmConfig::default()
        };
        let mut ppm = PpmHarness::builder()
            .host("a", CpuClass::Vax780)
            .host("b", CpuClass::Vax750)
            .link("a", "b")
            .user(USER, 7, &["a"], cfg)
            .build();
        let root = ppm
            .spawn_remote("a", USER, "a", "root", None, None)
            .unwrap();
        ppm.spawn_remote("a", USER, "b", "w1", Some(root.clone()), None)
            .unwrap();
        ppm.run_for(SimDuration::from_millis(100));
        let a = ppm.host("a").unwrap();
        let b = ppm.host("b").unwrap();
        ppm.world_mut()
            .schedule_link(a, b, false, SimDuration::from_millis(1));
        ppm.run_for(SimDuration::from_millis(50));

        let sites = locate(&mut ppm, "a", USER, &root).unwrap();
        assert_eq!(sites.unreachable, vec!["b".to_string()]);
        // The members that did answer are still reported.
        assert!(sites.members.iter().any(|g| g.host == "a"));
        assert!(sites.members.iter().all(|g| g.host != "b"));
    }

    #[test]
    fn locate_of_unknown_root_is_empty() {
        let mut ppm = harness();
        build_computation(&mut ppm);
        let sites = locate(&mut ppm, "a", USER, &Gpid::new("b", 4242)).unwrap();
        assert!(sites.members.is_empty());
        assert!(sites.hosts.is_empty());
    }
}
