//! Open-files and file-descriptor display — two more of Section 7's
//! planned tools ("a tool for displaying the open and closed files of
//! processes, a tool for displaying file descriptors").

use std::fmt::Write as _;

use ppm_proto::types::{FileRecord, HistoryRecord};

/// Renders a descriptor table.
pub fn render_fds(entries: &[FileRecord], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:>4}  {:<10} detail", "fd", "kind");
    for e in entries {
        let _ = writeln!(out, "{:>4}  {:<10} {}", e.fd, e.kind, e.detail);
    }
    let _ = writeln!(out, "{} descriptor(s)", entries.len());
    out
}

/// One line of the opened/closed files report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEvent {
    /// When (µs).
    pub at_us: u64,
    /// Which process.
    pub gpid: String,
    /// "open" or "close".
    pub action: &'static str,
    /// Path.
    pub path: String,
}

/// Extracts file open/close activity from LPM history (requires the FILES
/// tracing flag on the watched processes).
pub fn file_events(history: &[HistoryRecord]) -> Vec<FileEvent> {
    history
        .iter()
        .filter_map(|e| {
            let action = match e.kind.as_str() {
                "file-open" => "open",
                "file-close" => "close",
                _ => return None,
            };
            Some(FileEvent {
                at_us: e.at_us,
                gpid: e.gpid.to_string(),
                action,
                path: e.detail.clone(),
            })
        })
        .collect()
}

/// Renders the opened/closed files report.
pub fn render_file_events(events: &[FileEvent], title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for e in events {
        let _ = writeln!(
            out,
            "[{:>10.3}ms] {} {:<5} {}",
            e.at_us as f64 / 1000.0,
            e.gpid,
            e.action,
            e.path
        );
    }
    let opens = events.iter().filter(|e| e.action == "open").count();
    let closes = events.len() - opens;
    let _ = writeln!(out, "{opens} open(s), {closes} close(s)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_proto::types::Gpid;

    #[test]
    fn render_fd_table() {
        let entries = vec![
            FileRecord {
                fd: 3,
                kind: "kernel".into(),
                detail: "kernel event socket".into(),
            },
            FileRecord {
                fd: 4,
                kind: "file".into(),
                detail: "/etc/passwd (r)".into(),
            },
        ];
        let out = render_fds(&entries, "fds of <a, 9>");
        assert!(out.contains("fds of <a, 9>"));
        assert!(out.contains("/etc/passwd"));
        assert!(out.contains("2 descriptor(s)"));
    }

    #[test]
    fn file_events_filter_history() {
        let hist = vec![
            HistoryRecord {
                at_us: 1000,
                gpid: Gpid::new("a", 5),
                kind: "file-open".into(),
                detail: "/tmp/x".into(),
            },
            HistoryRecord {
                at_us: 2000,
                gpid: Gpid::new("a", 5),
                kind: "exit".into(),
                detail: String::new(),
            },
            HistoryRecord {
                at_us: 3000,
                gpid: Gpid::new("a", 5),
                kind: "file-close".into(),
                detail: "/tmp/x".into(),
            },
        ];
        let events = file_events(&hist);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].action, "open");
        assert_eq!(events[1].action, "close");
        let out = render_file_events(&events, "files");
        assert!(out.contains("1 open(s), 1 close(s)"));
        assert!(out.contains("/tmp/x"));
    }
}
