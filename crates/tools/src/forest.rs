//! Assembling snapshot slices into the genealogical forest of Figure 1.
//!
//! Snapshot replies carry flat [`ProcRecord`]s from each host; this module
//! links them into trees using local parent pids and cross-host logical
//! parent edges, exactly the structure "a PPM may present the user when
//! computations exist in three hosts".

use std::collections::{BTreeMap, BTreeSet};

use ppm_proto::types::{Gpid, ProcRecord};

/// A node of the assembled forest.
#[derive(Debug, Clone)]
pub struct ForestNode {
    /// The process.
    pub record: ProcRecord,
    /// Children, sorted by (host, pid).
    pub children: Vec<Gpid>,
}

/// The assembled distributed genealogy.
#[derive(Debug, Clone, Default)]
pub struct Forest {
    nodes: BTreeMap<Gpid, ForestNode>,
    roots: Vec<Gpid>,
}

impl Forest {
    /// Builds the forest from snapshot records.
    ///
    /// # Examples
    ///
    /// ```
    /// use ppm_proto::types::{Gpid, ProcRecord, WireProcState};
    /// use ppm_tools::forest::Forest;
    ///
    /// let records = vec![
    ///     ProcRecord {
    ///         gpid: Gpid::new("calder", 10),
    ///         ppid: 1,
    ///         logical_parent: None,
    ///         command: "master".into(),
    ///         state: WireProcState::Running,
    ///         started_us: 0,
    ///         cpu_us: 0,
    ///         adopted: true,
    ///     },
    ///     ProcRecord {
    ///         gpid: Gpid::new("kim", 5),
    ///         ppid: 1,
    ///         logical_parent: Some(Gpid::new("calder", 10)),
    ///         command: "worker".into(),
    ///         state: WireProcState::Running,
    ///         started_us: 0,
    ///         cpu_us: 0,
    ///         adopted: true,
    ///     },
    /// ];
    /// let forest = Forest::build(records);
    /// assert_eq!(forest.tree_count(), 1, "cross-host edge joins the trees");
    /// assert_eq!(forest.hosts(), vec!["calder", "kim"]);
    /// ```
    pub fn build(records: Vec<ProcRecord>) -> Self {
        let mut nodes: BTreeMap<Gpid, ForestNode> = records
            .into_iter()
            .map(|record| {
                (
                    record.gpid.clone(),
                    ForestNode {
                        record,
                        children: Vec::new(),
                    },
                )
            })
            .collect();
        let keys: Vec<Gpid> = nodes.keys().cloned().collect();
        let mut non_roots: BTreeSet<Gpid> = BTreeSet::new();
        for gpid in &keys {
            let parent = {
                let n = &nodes[gpid];
                // Prefer the local parent when it is itself tracked, else
                // the cross-host logical parent.
                let local = Gpid::new(gpid.host.clone(), n.record.ppid);
                if n.record.ppid > 1 && nodes.contains_key(&local) && &local != gpid {
                    Some(local)
                } else {
                    n.record
                        .logical_parent
                        .clone()
                        .filter(|lp| nodes.contains_key(lp) && lp != gpid)
                }
            };
            if let Some(parent) = parent {
                nodes
                    .get_mut(&parent)
                    .expect("checked")
                    .children
                    .push(gpid.clone());
                non_roots.insert(gpid.clone());
            }
        }
        for node in nodes.values_mut() {
            node.children.sort();
        }
        let roots: Vec<Gpid> = keys
            .into_iter()
            .filter(|k| !non_roots.contains(k))
            .collect();
        Forest { nodes, roots }
    }

    /// Root processes, sorted.
    /// Whether `root` is a root a crash manufactured: a live process a
    /// respawned LPM re-adopted with its real parent lost (recorded as
    /// `ppid == 0`, while ordinary root spawns carry ppid 1) and no
    /// cross-host logical edge. Its place in the forest is unexplained
    /// until sibling gossip restores the logical parent.
    pub fn is_failure_root(&self, root: &Gpid) -> bool {
        self.get(root).is_some_and(|n| {
            n.record.adopted
                && n.record.ppid == 0
                && n.record.logical_parent.is_none()
                && n.record.state != ppm_proto::types::WireProcState::Dead
        })
    }

    pub fn roots(&self) -> &[Gpid] {
        &self.roots
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of trees (the paper's tree "may become a forest").
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// A node by identity.
    pub fn get(&self, gpid: &Gpid) -> Option<&ForestNode> {
        self.nodes.get(gpid)
    }

    /// The hosts represented, sorted.
    pub fn hosts(&self) -> Vec<String> {
        let set: BTreeSet<String> = self.nodes.keys().map(|g| g.host.clone()).collect();
        set.into_iter().collect()
    }

    /// Depth-first walk of one tree, yielding `(depth, gpid)`.
    pub fn walk<'a>(&'a self, root: &Gpid) -> Vec<(usize, &'a ForestNode)> {
        let mut out = Vec::new();
        let mut stack: Vec<(usize, Gpid)> = vec![(0, root.clone())];
        while let Some((depth, gpid)) = stack.pop() {
            if let Some(node) = self.nodes.get(&gpid) {
                out.push((depth, node));
                for child in node.children.iter().rev() {
                    stack.push((depth + 1, child.clone()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_proto::types::WireProcState;

    fn rec(host: &str, pid: u32, ppid: u32, logical: Option<(&str, u32)>) -> ProcRecord {
        ProcRecord {
            gpid: Gpid::new(host, pid),
            ppid,
            logical_parent: logical.map(|(h, p)| Gpid::new(h, p)),
            command: format!("cmd-{pid}"),
            state: WireProcState::Running,
            started_us: 0,
            cpu_us: 0,
            adopted: true,
        }
    }

    #[test]
    fn local_parent_links_win() {
        let f = Forest::build(vec![rec("a", 10, 1, None), rec("a", 11, 10, None)]);
        assert_eq!(f.tree_count(), 1);
        assert_eq!(f.roots()[0], Gpid::new("a", 10));
        assert_eq!(
            f.get(&Gpid::new("a", 10)).unwrap().children,
            vec![Gpid::new("a", 11)]
        );
    }

    #[test]
    fn cross_host_logical_edges_join_trees() {
        let f = Forest::build(vec![
            rec("a", 10, 1, None),
            rec("b", 20, 1, Some(("a", 10))),
            rec("c", 30, 1, Some(("b", 20))),
        ]);
        assert_eq!(f.tree_count(), 1, "one logical tree across three hosts");
        let walk = f.walk(&Gpid::new("a", 10));
        assert_eq!(walk.len(), 3);
        assert_eq!(walk[0].0, 0);
        assert_eq!(walk[1].0, 1);
        assert_eq!(walk[2].0, 2);
        assert_eq!(f.hosts(), vec!["a", "b", "c"]);
    }

    #[test]
    fn missing_parent_makes_a_forest() {
        // The parent's host crashed: its record is absent.
        let f = Forest::build(vec![
            rec("b", 20, 1, Some(("gone", 10))),
            rec("c", 30, 1, Some(("gone", 10))),
        ]);
        assert_eq!(f.tree_count(), 2, "orphans become separate trees");
    }

    #[test]
    fn self_and_dangling_references_are_ignored() {
        let mut r = rec("a", 10, 10, None);
        r.logical_parent = Some(Gpid::new("a", 10));
        let f = Forest::build(vec![r]);
        assert_eq!(f.tree_count(), 1);
        assert!(!f.is_empty());
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn children_are_sorted() {
        let f = Forest::build(vec![
            rec("a", 10, 1, None),
            rec("b", 5, 1, Some(("a", 10))),
            rec("a", 12, 10, None),
        ]);
        let children = &f.get(&Gpid::new("a", 10)).unwrap().children;
        assert_eq!(children, &vec![Gpid::new("a", 12), Gpid::new("b", 5)]);
    }
}
