//! # ppm-tools — user tools over the PPM
//!
//! The paper implemented two tools ("snapshots with process control, and
//! exited process resource consumption statistics") and planned several
//! more ("a display tool, a historical data gathering tool, a tool for
//! displaying the open and closed files of processes, a tool for
//! displaying file descriptors, and one for IPC activity tracing and
//! analysis"). This crate provides all of them, built on the `ppm-core`
//! client library:
//!
//! * [`forest`] / [`snapshot`] — the genealogical snapshot display of
//!   Figure 1, with the stop / foreground / background / kill verbs;
//! * [`rusage_tool`] — exited-process statistics reports;
//! * [`history_tool`] — historical event display and profiles;
//! * [`files_tool`] — open files and descriptor listings;
//! * [`ipc_tool`] — IPC activity tracing and analysis;
//! * [`display`] — the one-call dashboard of the user's whole PPM;
//! * [`computation`] — locate a distributed computation's execution sites
//!   and broadcast software interrupts to every member;
//! * [`metrics`] — pull a live LPM's metrics registry over the wire;
//! * [`tenant_view`] — per-user displays of the multi-tenant scale world.

pub mod computation;
pub mod display;
pub mod files_tool;
pub mod forest;
pub mod history_tool;
pub mod ipc_tool;
pub mod metrics;
pub mod rusage_tool;
pub mod snapshot;
pub mod tenant_view;

pub use forest::{Forest, ForestNode};
pub use snapshot::SnapshotTool;
