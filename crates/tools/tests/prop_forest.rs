//! Property tests for the snapshot forest assembly: every record appears
//! exactly once across the walks of all roots (no loss, no duplication,
//! no infinite walks), for arbitrary — even inconsistent — inputs.

use proptest::prelude::*;

use ppm_proto::types::{Gpid, ProcRecord, WireProcState};
use ppm_tools::forest::Forest;

fn arb_records() -> impl Strategy<Value = Vec<ProcRecord>> {
    // Hosts and pids from tiny ranges to force collisions, self-references
    // and dangling parents.
    prop::collection::vec(
        (
            0u8..3,                               // host
            1u32..12,                             // pid
            0u32..12,                             // ppid
            prop::option::of((0u8..3, 1u32..12)), // logical parent
            prop::bool::ANY,                      // dead?
        ),
        0..25,
    )
    .prop_map(|rows| {
        let mut seen = std::collections::BTreeSet::new();
        rows.into_iter()
            .filter_map(|(h, pid, ppid, lp, dead)| {
                let gpid = Gpid::new(format!("h{h}"), pid);
                // Snapshot slices never repeat a gpid.
                if !seen.insert(gpid.clone()) {
                    return None;
                }
                Some(ProcRecord {
                    gpid,
                    ppid,
                    logical_parent: lp.map(|(lh, lpid)| Gpid::new(format!("h{lh}"), lpid)),
                    command: format!("c{pid}"),
                    state: if dead {
                        WireProcState::Dead
                    } else {
                        WireProcState::Running
                    },
                    started_us: 0,
                    cpu_us: 0,
                    adopted: true,
                })
            })
            .collect()
    })
}

proptest! {
    /// Walking all roots visits every node at most once in total, and
    /// (for acyclic inputs) exactly once.
    #[test]
    fn forest_partitions_records(records in arb_records()) {
        let n = records.len();
        let forest = Forest::build(records);
        prop_assert_eq!(forest.len(), n);

        let mut visited = std::collections::BTreeSet::new();
        for root in forest.roots() {
            for (_, node) in forest.walk(root) {
                // No duplicates across trees.
                prop_assert!(
                    visited.insert(node.record.gpid.clone()),
                    "node {} visited twice",
                    node.record.gpid
                );
            }
        }
        // Every visited node exists; visited ⊆ records. (Cycles formed by
        // mutually-referencing logical parents are unreachable from roots
        // and are legitimately not displayed.)
        prop_assert!(visited.len() <= n);
        // Roots themselves are always visited.
        for root in forest.roots() {
            prop_assert!(visited.contains(root));
        }
    }

    /// Every node is either a root or the child of exactly one parent.
    #[test]
    fn forest_in_degree_is_at_most_one(records in arb_records()) {
        let forest = Forest::build(records);
        let mut in_degree: std::collections::BTreeMap<Gpid, usize> = Default::default();
        let all: Vec<Gpid> = forest.roots().to_vec();
        let mut stack = all;
        let mut seen = std::collections::BTreeSet::new();
        while let Some(g) = stack.pop() {
            if !seen.insert(g.clone()) {
                continue;
            }
            if let Some(node) = forest.get(&g) {
                for c in &node.children {
                    *in_degree.entry(c.clone()).or_insert(0) += 1;
                    stack.push(c.clone());
                }
            }
        }
        for (g, d) in in_degree {
            prop_assert!(d <= 1, "{g} has in-degree {d}");
            prop_assert!(!forest.roots().contains(&g), "{g} is both root and child");
        }
    }
}
