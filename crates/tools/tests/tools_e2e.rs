//! End-to-end exercises of the tool layer against a live simulated PPM:
//! the SnapshotTool's four control verbs, the computation locator under
//! churn, and dashboard/IPC reports on real data.

use ppm_core::config::PpmConfig;
use ppm_harness::harness::PpmHarness;
use ppm_proto::msg::ControlAction;
use ppm_proto::types::WireProcState;
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::{Pid, Uid};
use ppm_tools::{computation, display, SnapshotTool};

const USER: Uid = Uid(100);
const OTHER: Uid = Uid(200);

fn harness() -> PpmHarness {
    PpmHarness::builder()
        .host("a", CpuClass::Vax780)
        .host("b", CpuClass::Vax750)
        .link("a", "b")
        .user(USER, 0x70015, &["a"], PpmConfig::default())
        .build()
}

fn two_user_harness() -> PpmHarness {
    PpmHarness::builder()
        .host("a", CpuClass::Vax780)
        .host("b", CpuClass::Vax750)
        .link("a", "b")
        .user(USER, 0x70015, &["a"], PpmConfig::default())
        .user(OTHER, 0x70200, &["a"], PpmConfig::default())
        .build()
}

#[test]
fn snapshot_tool_verbs_drive_remote_processes() {
    let mut ppm = harness();
    let g = ppm
        .spawn_remote("a", USER, "b", "victim", None, None)
        .unwrap();
    let b = ppm.host("b").unwrap();
    let pid = Pid(g.pid);
    let state = |ppm: &PpmHarness| ppm.world().core().kernel(b).get(pid).unwrap().state;

    let mut tool = SnapshotTool::new(&mut ppm, "a", USER);
    // show/stop/fg/bg/kill — the paper's built-in verbs, end to end.
    let art = tool.show("*").unwrap();
    assert!(art.contains("victim"));

    tool.stop(&g).unwrap();
    let art = tool.show("b").unwrap();
    assert!(art.contains("[stopped]"), "{art}");

    tool.foreground(&g).unwrap();
    let art = tool.show("b").unwrap();
    assert!(!art.contains("[stopped]"), "{art}");

    tool.background(&g).unwrap();
    tool.kill(&g).unwrap();
    let art = tool.show("b").unwrap();
    assert!(art.contains("[exited]"), "{art}");

    drop(tool);
    ppm.run_for(SimDuration::from_millis(200));
    assert!(!state(&ppm).is_alive());
}

#[test]
fn computation_locate_tracks_membership_changes() {
    let mut ppm = harness();
    let root = ppm
        .spawn_remote("a", USER, "a", "root", None, None)
        .unwrap();
    let w1 = ppm
        .spawn_remote("a", USER, "b", "w1", Some(root.clone()), None)
        .unwrap();
    let w2 = ppm
        .spawn_remote("a", USER, "b", "w2", Some(root.clone()), None)
        .unwrap();

    let sites = computation::locate(&mut ppm, "a", USER, &root).unwrap();
    assert_eq!(sites.members.len(), 3);

    // Kill one member: the located set shrinks accordingly.
    ppm.control("a", USER, &w1, ControlAction::Kill).unwrap();
    ppm.run_for(SimDuration::from_secs(1));
    let sites = computation::locate(&mut ppm, "a", USER, &root).unwrap();
    assert_eq!(sites.members.len(), 2);
    assert!(sites.members.contains(&w2));
    assert!(!sites.members.contains(&w1));

    // The dead member is still *displayed* in the raw snapshot, marked
    // exited — locate() only returns live members.
    let procs = ppm.snapshot("a", USER, "*").unwrap();
    let dead = procs.iter().find(|p| p.gpid == w1).expect("retained");
    assert_eq!(dead.state, WireProcState::Dead);
}

/// Every tool speaks for exactly one tenant: with two users running
/// distinctly named computations on the same hosts, one user's
/// dashboard, locator and snapshot display never surface the other's
/// processes.
#[test]
fn display_and_locate_are_tenant_scoped() {
    let mut ppm = two_user_harness();

    // USER: a rooted computation spanning both hosts. OTHER: two
    // stand-alone jobs on b.
    let root = ppm
        .spawn_remote("a", USER, "a", "alpha-root", None, None)
        .unwrap();
    for i in 0..2 {
        ppm.spawn_remote(
            "a",
            USER,
            "b",
            &format!("alpha-{i}"),
            Some(root.clone()),
            None,
        )
        .unwrap();
    }
    for i in 0..2 {
        ppm.spawn_remote("a", OTHER, "b", &format!("beta-{i}"), None, None)
            .unwrap();
    }

    // The dashboard counts only the calling user's managed processes.
    let rows = display::gather_status(&mut ppm, "a", USER).unwrap();
    assert_eq!(rows.iter().find(|r| r.host == "b").unwrap().managed, 2);
    let rows = display::gather_status(&mut ppm, "a", OTHER).unwrap();
    assert_eq!(rows.iter().find(|r| r.host == "b").unwrap().managed, 2);

    // Locating USER's computation finds USER's members only; the same
    // root is invisible to OTHER's sweep.
    let sites = computation::locate(&mut ppm, "a", USER, &root).unwrap();
    assert_eq!(sites.members.len(), 3);
    let sites = computation::locate(&mut ppm, "a", OTHER, &root).unwrap();
    assert!(sites.members.is_empty(), "OTHER cannot locate USER's root");

    // The snapshot display renders only the calling user's commands.
    let art = SnapshotTool::new(&mut ppm, "a", USER).show("*").unwrap();
    assert!(art.contains("alpha-root") && !art.contains("beta"), "{art}");
    let art = SnapshotTool::new(&mut ppm, "a", OTHER).show("*").unwrap();
    assert!(art.contains("beta-0") && !art.contains("alpha"), "{art}");
}

#[test]
fn dashboard_reflects_load_and_management_counts() {
    let mut ppm = harness();
    for i in 0..3 {
        ppm.spawn_remote("a", USER, "b", &format!("job{i}"), None, None)
            .unwrap();
    }
    let rows = display::gather_status(&mut ppm, "a", USER).unwrap();
    let b_row = rows.iter().find(|r| r.host == "b").unwrap();
    assert_eq!(b_row.managed, 3, "all three jobs managed on b");
    assert!(b_row.reachable);
    let a_row = rows.iter().find(|r| r.host == "a").unwrap();
    assert!(a_row.siblings.contains(&"b".to_string()));
}

#[test]
fn dashboard_network_section_tracks_link_traffic_and_cuts() {
    use ppm_simnet::fault::FaultPlan;
    use ppm_simnet::topology::NetSpec;
    let hosts: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
    let spec = NetSpec::preset("wan-hub", &hosts).unwrap();
    let mut ppm = PpmHarness::builder()
        .host("a", CpuClass::Vax780)
        .host("b", CpuClass::Vax750)
        .host("c", CpuClass::Vax750)
        .link("a", "b")
        .link("a", "c")
        .link("b", "c")
        .user(USER, 0x70015, &["a"], PpmConfig::default())
        .topology(spec)
        .build();
    ppm.spawn_remote("a", USER, "b", "job", None, None).unwrap();
    ppm.spawn_remote("a", USER, "c", "job", None, None).unwrap();

    let out = display::dashboard(&mut ppm, "a", USER).unwrap();
    assert!(out.contains("network wan-hub"), "{out}");
    let (name, links) = display::net_rows(&ppm).unwrap();
    assert_eq!(name, "wan-hub");
    // Every host hangs off the hub, and both spawns moved real bytes.
    assert_eq!(links.len(), 3);
    assert!(links.iter().all(|l| l.up));
    assert!(links[0].bytes > 0, "busiest link saw traffic: {links:?}");

    // Cut a spoke mid-run; the dashboard marks it DOWN.
    let plan = FaultPlan::parse("at 10ms cut link wan:c\n").unwrap();
    ppm.world_mut().apply_fault_plan(&plan).unwrap();
    ppm.run_for(SimDuration::from_millis(50));
    let (_, links) = display::net_rows(&ppm).unwrap();
    let cut = links.iter().find(|l| l.name == "wan:c").unwrap();
    assert!(!cut.up, "cut link reported down: {links:?}");
    let out = display::render_net("wan-hub", &links, display::NET_TOP_LINKS);
    assert!(out.contains("DOWN"), "{out}");
}
